//! ADI-style multi-phase program: a row sweep then a column sweep over
//! the same array — the classic case where consecutive phases prefer
//! conflicting partitions and the compiler must choose between a common
//! compromise grid and per-phase optima plus redistribution.
//!
//! ```sh
//! cargo run --example adi
//! ```

use alp::prelude::*;

fn main() {
    let src = "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+1] + A[i,j+2]; } }
               doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+1,j] + A[i+2,j]; } }";
    let nests = parse_program(src).expect("parses");
    let p = 16i128;

    println!("== per-phase analysis ==");
    for (k, nest) in nests.iter().enumerate() {
        let solo = partition_rect(nest, p);
        let model = CostModel::from_nest(nest);
        let ratio = optimal_aspect_ratio(&model);
        println!(
            "  phase {}: solo optimum grid {:?} (cost {}), aspect ratio {:?}",
            k + 1,
            solo.proc_grid,
            solo.cost,
            ratio.map(|r| r.iter().map(ToString::to_string).collect::<Vec<_>>())
        );
    }

    let prog = partition_program(&nests, p);
    println!("\n== program decision ==");
    println!("  strategy          : {:?}", prog.strategy);
    println!(
        "  grids             : {:?}",
        prog.phases
            .iter()
            .map(|ph| ph.proc_grid.clone())
            .collect::<Vec<_>>()
    );
    println!("  total cost        : {}", prog.total_cost);
    println!("  alternative cost  : {}", prog.alternative_cost);
    println!(
        "  redistribution    : {} elements (if per-phase)",
        prog.redistribution
    );

    // Validate on the machine: simulate both strategies phase by phase
    // with warm caches carried across phases.
    //
    // Common grid: both phases use prog grid.  Per-phase: each phase its
    // solo optimum (the redistribution shows up as coherence misses when
    // the second phase's processors pull A from the first phase's
    // owners' caches).
    let simulate = |grids: [&[i128]; 2]| -> u64 {
        // Concatenate the two phases into one trace per processor by
        // running them against one shared machine: emulate by running a
        // doseq-style combined nest is not possible (different bodies),
        // so run phase 1, then REPLAY phase 2 with the same machine
        // state... the public API runs one nest at a time, so
        // approximate: phase 1 misses + phase 2 misses where phase 2's
        // cold misses against data phase 1 loaded are what
        // redistribution models.
        let r1 = run_nest(
            &nests[0],
            &assign_rect(&nests[0], grids[0]),
            MachineConfig::uniform(p as usize),
            &UniformHome,
        );
        let r2 = run_nest(
            &nests[1],
            &assign_rect(&nests[1], grids[1]),
            MachineConfig::uniform(p as usize),
            &UniformHome,
        );
        r1.total_misses() + r2.total_misses()
    };
    let common = prog.phases[0].proc_grid.clone();
    let solo1 = partition_rect(&nests[0], p).proc_grid;
    let solo2 = partition_rect(&nests[1], p).proc_grid;
    println!("\n== simulated (cold-start per phase) ==");
    println!(
        "  common grid {:?}         : {} misses",
        common,
        simulate([&common, &common])
    );
    println!(
        "  per-phase {:?} then {:?} : {} misses + {} redistributed",
        solo1,
        solo2,
        simulate([&solo1, &solo2]),
        prog.redistribution
    );
    println!("\nwith a shared array, the common grid avoids moving A between\nphases — the compiler-level choice §4's pipeline has to make.");
}
