//! Stencils: Example 2 (communication-free strips) and Example 3
//! (parallelogram tiles beat every rectangle).
//!
//! ```sh
//! cargo run --example stencil
//! ```

use alp::prelude::*;

fn main() {
    example2();
    println!();
    example3();
}

/// Example 2: the partition choice the paper opens with.
fn example2() {
    let src = "doall (i, 101, 200) { doall (j, 1, 100) {
                 A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
               } }";
    let nest = parse(src).expect("parses");
    println!("== Example 2: 100x100 iterations, 100 processors ==");

    // Partition a: strips (full i extent, one j each).
    // Partition b: 10x10 blocks.
    for (name, grid) in [
        ("a: strips (1x100)", vec![1i128, 100]),
        ("b: blocks (10x10)", vec![10, 10]),
    ] {
        let assignment = assign_rect(&nest, &grid);
        let report = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(100),
            &UniformHome,
        );
        // Per-tile misses: paper counts the B-class footprint (A adds a
        // constant 100 per tile).
        let per_tile = report.total_cold_misses() / 100;
        println!(
            "  partition {name:<18} misses/tile = {per_tile} (B-class: {}), invalidations = {}",
            per_tile - 100,
            report.total_invalidations()
        );
    }

    // The framework discovers partition a via the communication-free
    // normals (Ramanujam & Sadayappan's case).
    let normals = communication_free_normals(&nest);
    println!(
        "  communication-free normals: {:?}",
        normals.iter().map(|h| h.to_string()).collect::<Vec<_>>()
    );
    let part = partition_rect(&nest, 100);
    println!(
        "  partition_rect picks grid {:?} (tile λ = {:?})",
        part.proc_grid, part.tile_extents
    );
}

/// Example 3: parallelogram tiles internalize the (1,3) translation.
fn example3() {
    let src = "doall (i, 1, 64) { doall (j, 1, 64) {
                 A[i,j] = B[i,j] + B[i+1,j+3];
               } }";
    let nest = parse(src).expect("parses");
    println!("== Example 3: B[i,j] + B[i+1,j+3], 16 processors ==");

    let p = 16i128;
    // Best rectangle.
    let rect = partition_rect(&nest, p);
    println!(
        "  best rectangle   : grid {:?}, modeled cost {}",
        rect.proc_grid, rect.cost
    );

    // Parallelepiped search.
    let para = optimize_parallelepiped(
        &nest,
        p,
        &ParaSearchConfig {
            max_entry: 3,
            threads: 4,
        },
    );
    println!(
        "  best parallelogram: basis rows {:?}, modeled cost {}",
        (0..2)
            .map(|r| para.basis.row(r).0.clone())
            .collect::<Vec<_>>(),
        para.cost
    );

    // Simulate both: slab assignment along the comm-free normal vs the
    // rectangle.
    let rect_assign = assign_rect(&nest, &rect.proc_grid);
    let rect_report = run_nest(
        &nest,
        &rect_assign,
        MachineConfig::uniform(p as usize),
        &UniformHome,
    );

    let normals = communication_free_normals(&nest);
    let slab_assign = assign_slabs(&nest, &normals[0], p);
    let slab_report = run_nest(
        &nest,
        &slab_assign,
        MachineConfig::uniform(p as usize),
        &UniformHome,
    );

    println!(
        "  simulated misses : rectangle {} vs parallelogram-slabs {}",
        rect_report.total_cold_misses(),
        slab_report.total_cold_misses()
    );
    println!(
        "  generated bounds for the skewed tile:\n{}",
        emit_para_code(&nest, para.tile.l_matrix())
    );
}
