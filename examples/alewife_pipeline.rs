//! The full Alewife-style compiler pipeline (§4, Fig. 10): loop
//! partitioning, data partitioning & alignment, and placement on a 2-D
//! mesh — showing how alignment turns remote misses into local ones.
//!
//! ```sh
//! cargo run --example alewife_pipeline
//! ```

use alp::machine::FnHome;
use alp::prelude::*;

fn main() {
    // A 2-D relaxation step run repeatedly (Fig. 9 pattern).
    let src = "doseq (t, 1, 4) {
                 doall (i, 1, 64) { doall (j, 1, 64) {
                   A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1];
                 } }
               }";
    let nest = parse(src).expect("parses");
    let p = 16i128;

    // The in-place relaxation races across doall iterations; the paper
    // partitions it anyway (convergence tolerates stale reads), so skip
    // the legality gate.
    let compiler = Compiler::new(p).with_mesh(4, 4).unchecked();
    let result = compiler.compile(nest).expect("compiles");

    println!("== loop partitioning ==");
    println!("  classes          : {}", result.class_count);
    println!("  processor grid   : {:?}", result.partition.proc_grid);
    println!("  tile extents λ   : {:?}", result.partition.tile_extents);

    println!("\n== data partitioning & alignment ==");
    for ap in &result.data_partitions {
        println!(
            "  array {:<2} tile extents {:?} over dims {:?}, offset {}",
            ap.array, ap.tile_extents, ap.dims, ap.offset
        );
    }

    println!("\n== placement ==");
    if let Some(pl) = &result.placement {
        println!("  mesh {:?}, grid {:?}", pl.mesh, pl.grid);
        println!(
            "  avg neighbour hops (uniform weights): {:.2}",
            pl.weighted_neighbor_hops(&vec![1.0; result.partition.proc_grid.len()])
        );
    }

    // --- Simulate three memory configurations. -------------------------
    let assignment = assign_rect(&result.nest, &result.partition.proc_grid);
    let layout = ArrayLayout::from_nest(&result.nest);
    let cfg = || MachineConfig {
        processors: p as usize,
        cache: CacheConfig::Infinite,
        mesh: Some((4, 4)),
        line_size: 1,
        directory: DirectoryKind::FullMap,
    };

    // (1) Naive block distribution of memory.
    let block = BlockRowMajorHome::new(p as usize, layout.total_lines());
    let r_block = run_nest(&result.nest, &assignment, cfg(), &block);

    // (2) Aligned distribution: element goes to the processor whose loop
    //     tile references it (same aspect ratio + offset, §4).
    let grid = result.partition.proc_grid.clone();
    let ext = layout.extents(0).to_vec(); // array A extents
    let chunks: Vec<i128> = grid
        .iter()
        .zip(&ext)
        .map(|(&g, &(lo, hi))| (hi - lo + 1 + g - 1) / g)
        .collect();
    let a_id = layout.array_id("A").expect("A exists");
    let total_a: u64 = ext.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).product();
    let aligned = FnHome(move |line: u64| {
        if line >= total_a {
            return 0; // other arrays (none here)
        }
        // Recover (x, y) from the row-major line id.
        let w = (ext[1].1 - ext[1].0 + 1) as u64;
        let x = (line / w) as i128 + ext[0].0;
        let y = (line % w) as i128 + ext[1].0;
        let cx = ((x - ext[0].0) / chunks[0]).min(grid[0] - 1);
        let cy = ((y - ext[1].0) / chunks[1]).min(grid[1] - 1);
        (cx * grid[1] + cy) as usize
    });
    let _ = a_id;
    let r_aligned = run_nest(&result.nest, &assignment, cfg(), &aligned);

    println!("\n== simulated remote traffic (4 repetitions, 4x4 mesh) ==");
    println!(
        "  {:<22} {:>10} {:>10} {:>12} {:>10}",
        "memory layout", "misses", "remote", "remote frac", "hops"
    );
    for (name, r) in [
        ("block row-major", &r_block),
        ("aligned to tiles", &r_aligned),
    ] {
        println!(
            "  {:<22} {:>10} {:>10} {:>11.1}% {:>10}",
            name,
            r.total_misses(),
            r.total_remote_misses(),
            100.0 * r.remote_fraction(),
            r.total_hop_traffic()
        );
    }
    assert!(
        r_aligned.total_remote_misses() < r_block.total_remote_misses(),
        "alignment must reduce remote misses"
    );
    println!("\nalignment keeps each tile's interior in its own memory module;\nonly the stencil halo goes remote.");
}
