//! Matrix multiply (Fig. 11 / Appendix A): fine-grain synchronized
//! accumulates, and why square blocks beat row or column partitions.
//!
//! ```sh
//! cargo run --example matmul
//! ```

use alp::prelude::*;

fn main() {
    // Fig. 11: C accumulated with atomic `l$` accumulates; all three
    // loops parallel.  N = 32 to keep the simulation quick.
    let src = "doall (i, 1, 32) { doall (j, 1, 32) { doall (k, 1, 32) {
                 l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
               } } }";
    let nest = parse(src).expect("parses");
    println!("matmul, N = 32, P = 16 processors\n");

    // The classes: C (accumulate), A, B — all rank-2 G matrices in a
    // depth-3 nest; their footprints depend on tile shape even though
    // each array has a single uniformly-intersecting class.
    let classes = classify(&nest);
    for c in &classes {
        println!(
            "  class {:<2} refs {}  G =\n{}",
            c.array,
            c.len(),
            indent(&format!("{}", c.g), 4)
        );
    }

    let p = 16usize;
    let shapes: Vec<(&str, Vec<i128>)> = vec![
        ("rows (i split)", vec![16, 1, 1]),
        ("cols (j split)", vec![1, 16, 1]),
        ("k split", vec![1, 1, 16]),
        ("blocks (4x4 in i,j)", vec![4, 4, 1]),
        ("blocks (4x1x4)", vec![4, 1, 4]),
    ];

    println!(
        "\n{:<22} {:>12} {:>12} {:>14} {:>12}",
        "partition", "cold", "coherence", "invalidations", "total"
    );
    let mut rows = Vec::new();
    for (name, grid) in shapes {
        let assignment = assign_rect(&nest, &grid);
        let report = run_nest(&nest, &assignment, MachineConfig::uniform(p), &UniformHome);
        assert!(report.check_conservation());
        println!(
            "{:<22} {:>12} {:>12} {:>14} {:>12}",
            name,
            report.total_cold_misses(),
            report.total_coherence_misses(),
            report.total_invalidations(),
            report.total_misses()
        );
        rows.push((name, report.total_misses()));
    }

    // The framework's own choice.
    let part = partition_rect(&nest, p as i128);
    let assignment = assign_rect(&nest, &part.proc_grid);
    let report = run_nest(&nest, &assignment, MachineConfig::uniform(p), &UniformHome);
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}   <- partition_rect {:?}",
        "framework optimum",
        report.total_cold_misses(),
        report.total_coherence_misses(),
        report.total_invalidations(),
        report.total_misses(),
        part.proc_grid
    );
    // The footprint model minimizes *cold* misses (the paper's
    // objective): the framework's tile must touch the fewest distinct
    // elements.
    let _ = rows;
    println!(
        "\nblocks win on footprint: matmul reuse is 2-D (A along j, B along i),\n\
         so (i,j)-blocked tiles maximize it — the motivating example of §1.\n\
         Note the k-split rows: splitting k makes several processors\n\
         accumulate into the same C elements; the footprint shrinks but the\n\
         fine-grain-synchronized writes ping-pong (Appendix A's caveat that\n\
         synchronizing references cost extra communication).  A production\n\
         compiler would keep k sequential or weight accumulate classes\n\
         higher; `partition_rect` faithfully optimizes the paper's\n\
         footprint objective."
    );
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}
