//! Quickstart: partition the paper's Example 8 stencil end-to-end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use alp::prelude::*;

fn main() {
    // Example 8 of the paper: a 3-D stencil over B, written to A.
    let src = "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
                 A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
               } } }";

    println!("== source ==\n{src}\n");

    // 1. Analyze: classify references into uniformly intersecting classes.
    let nest = parse(src).expect("parses");
    let classes = classify(&nest);
    println!("== uniformly intersecting classes ==");
    for c in &classes {
        println!(
            "  array {:<2} refs {}  G rank {}  spread â = {}",
            c.array,
            c.len(),
            c.g.rank(),
            c.spread()
        );
    }

    // 2. The closed-form optimal aspect ratio (Lagrange, §3.6).
    let model = CostModel::from_nest(&nest);
    if let Some(ratio) = optimal_aspect_ratio(&model) {
        let parts: Vec<String> = ratio.iter().map(|r| r.to_string()).collect();
        println!(
            "\noptimal tile aspect ratio  L_i : L_j : L_k  ::  {}",
            parts.join(" : ")
        );
    }

    // 3. Full pipeline for 64 processors.
    let compiler = Compiler::new(64).with_mesh(8, 8);
    let result = compiler.compile(nest).expect("compiles");
    println!("\n== chosen partition ==");
    println!("  processor grid : {:?}", result.partition.proc_grid);
    println!("  tile extents λ : {:?}", result.partition.tile_extents);
    println!(
        "  modeled cost   : {} data elements per tile",
        result.partition.cost
    );

    // 4. Generated SPMD code.
    println!("\n== generated code ==\n{}", result.code);

    // 5. Simulate on the cache-coherent machine and compare with a naive
    //    partition.
    let report = compiler.simulate_uniform(&result);
    println!("== simulated (optimal partition) ==");
    println!("  accesses      : {}", report.total_accesses());
    println!("  cold misses   : {}", report.total_cold_misses());
    println!("  miss rate     : {:.4}", report.miss_rate());

    let naive = naive_partition(&result.nest, 64, NaiveShape::ByRows).expect("feasible");
    let naive_assign = assign_rect(&result.nest, &naive.proc_grid);
    let naive_report = run_nest(
        &result.nest,
        &naive_assign,
        MachineConfig::uniform(64),
        &UniformHome,
    );
    println!("\n== simulated (naive by-rows partition) ==");
    println!("  cold misses   : {}", naive_report.total_cold_misses());
    println!(
        "\noptimal partition saves {:.1}% of misses over by-rows",
        100.0 * (naive_report.total_cold_misses() as f64 - report.total_cold_misses() as f64)
            / naive_report.total_cold_misses() as f64
    );
}
