//! `alp-cli` — analyze, partition, and natively execute a `doall`
//! program from the command line.
//!
//! ```sh
//! alp-cli [OPTIONS] <FILE|->          # '-' reads the DSL from stdin
//! alp-cli plan [OPTIONS] <FILE|->     # emit the partition plan as JSON
//! alp-cli run [OPTIONS] <FILE|->      # partition AND execute on threads
//! alp-cli certify [OPTIONS] <PLAN|->  # prove/re-check a plan's certificate
//! alp-cli calibrate [OPTIONS] [FILE|-]  # fit a latency model from probe runs
//!
//! OPTIONS:
//!   -p, --processors <N>    processors to partition for   [default: 16]
//!   -m, --mesh <WxH>        2-D mesh for placement/hops   [default: none]
//!       --param <NAME=VAL>  bind a loop-bound parameter (repeatable)
//!       --simulate          run the machine simulator and report traffic
//!       --para              also search parallelepiped tiles (2-D nests)
//!       --line-size <N>     cache line size in elements   [default: 1]
//!       --code              print the generated SPMD code
//!       --check             run the doall legality analysis only
//!       --no-check          skip the legality analysis
//!       --from-plan <FILE>  load a saved plan instead of planning a DSL
//!                           nest (no positional input needed)
//!
//! PLAN OPTIONS (in addition to -p, -m, --param, --no-check):
//!       --emit <FILE|->     where to write the plan JSON  [default: -]
//!       --calibrated <FILE> rank candidate tilings with a fitted latency
//!                           model (from `alp-cli calibrate --emit`)
//!                           instead of the pure footprint objective;
//!                           the plan records `chosen_by: calibrated`
//!                           and the coefficients
//!       --certify           prove the four certificate facts (coverage,
//!                           write disjointness, bounds, idempotence) and
//!                           embed them in the emitted plan (schema v3)
//!       --skewed            partition with skewed parallelepiped tiles:
//!                           the plan records the unimodular transform
//!                           (schema v4) and downstream layers execute
//!                           rectangular tiles in j = i·U space
//!       --via-server <SOCK> delegate planning to a running `serve`
//!                           daemon through the resilient retrying
//!                           client (hot nests return as cache hits)
//!
//! CERTIFY OPTIONS:
//!       --emit <FILE|->     write the certified plan JSON (plans that
//!                           already carry a certificate are re-checked
//!                           instead; a stale/tampered one exits 9)
//!
//! CALIBRATE OPTIONS (in addition to -p, --param, --line-size, --seed):
//!       --threads <N>       OS threads per probe run      [default: 4]
//!       --trials <N>        timed trials per tiling       [default: 3]
//!       --warmup <N>        untimed warmup runs           [default: 1]
//!       --emit <FILE|->     where to write the artifact   [default: -]
//!   With no input file, a built-in corpus of probe nests (stencil,
//!   skewed, streaming) exercises diverse tile shapes; with a FILE or
//!   '-', the nests of that program are probed instead.
//!
//! RUN OPTIONS (in addition to -p, --param, --line-size, --no-check):
//!       --threads <N>       OS threads (0 = one per tile)  [default: 0]
//!       --steal             dynamic self-scheduling instead of static
//!       --seed <N>          array-content seed            [default: 42]
//!       --from-plan <FILE>  execute a saved plan (no DSL input needed)
//!       --timeout-ms <N>    wall-clock deadline for the run
//!       --retry <N>         retries for a panicked tile   [default: 0]
//!                           (first-repetition tiles of retry-safe
//!                           nests only; accumulate nests fail fast)
//!       --max-store-bytes <N>  refuse runs whose arrays + metrics
//!                           would exceed N bytes
//!       --fallback-seq      degrade an over-budget run to a sequential
//!                           interpreted run instead of failing
//!       --require-cert      refuse to run without a certificate: a DSL
//!                           nest is certified in-process, a saved plan
//!                           must already carry one; re-check failures
//!                           exit 9 (`ALP0011`)
//!       --skewed            partition the DSL nest with skewed
//!                           parallelepiped tiles and execute them
//!                           natively (saved skewed plans need no flag)
//! ```
//!
//! The legality analysis (races, lints) runs by default before
//! partitioning; racy nests are refused.  `plan` runs the analysis and
//! partitioning phases only and writes the decision as a versioned JSON
//! [`PartitionPlan`] artifact; `run --from-plan` / `--from-plan`
//! re-execute or re-simulate such an artifact without repeating the
//! analysis (the embedded nest is fingerprint-verified on load).  `run`
//! compiles the nest's partition to a native kernel, executes it on OS
//! threads over real `f64` arrays, prints per-thread metrics plus the
//! measured-vs-modeled footprint ratio, and checks the parallel result
//! bitwise against a sequential reference run.
//!
//! Exit codes: `0` success / clean, `1` I/O, parse, or plan/calibration
//! decode failure (`ALP0006`/`ALP0010`, including structurally invalid
//! plan transforms — `ALP0013`), `2` usage, `3` (`--check` only) warnings but no errors, `4`
//! legality errors, `5` (`run` only) parallel result differs from the
//! sequential reference, `6` (`run` only) deadline exceeded or run
//! cancelled (`ALP0007`), `7` (`run` only) a tile faulted and retries —
//! if any — were exhausted (`ALP0008`), `8` (`run` only) over the
//! `--max-store-bytes` budget without `--fallback-seq` (`ALP0009`),
//! `9` a plan certificate is missing (under `--require-cert`), stale,
//! or disagrees with fresh recomputation (`ALP0011`), `10` (`serve
//! --connect` only) the plan service shed the request under load
//! (`ALP0012`), `11` (`store verify` only) the plan store has corrupt
//! frames (`ALP0014`), `12` the service was draining — a `--connect`
//! request refused with `ALP0015`, or the daemon was forced down by a
//! second termination signal before the drain finished.
//!
//! The `serve` daemon drains gracefully: the first `SIGTERM`/`SIGINT`
//! (or a protocol `shutdown`) stops admitting work (`ALP0015`),
//! finishes what is queued within `--drain-deadline-ms`, flushes the
//! `--store` journal, and exits 0; a second signal aborts the drain
//! and exits 12.  With `--store DIR` every computed plan is journaled
//! crash-safely and replayed into the cache on restart.
//!
//! Examples:
//!
//! ```sh
//! echo 'doall (i, 1, N) { doall (j, 1, N) {
//!         A[i,j] = B[i,j] + B[i+1,j+3]; } }' \
//!   | alp-cli --param N=64 -p 16 --simulate --para -
//!
//! alp-cli plan -p 24 --emit plan.json examples/ex8.alp
//! alp-cli run --from-plan plan.json --threads 8 --steal
//! alp-cli --from-plan plan.json --simulate
//! ```

use alp::prelude::*;
use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    processors: i128,
    mesh: Option<(usize, usize)>,
    params: HashMap<String, i128>,
    simulate: bool,
    para: bool,
    line_size: u64,
    show_code: bool,
    check_only: bool,
    no_check: bool,
    from_plan: Option<String>,
    input: String,
}

/// Exit code for `--check` runs with warnings but no errors.
const EXIT_WARNINGS: u8 = 3;
/// Exit code when the legality analysis finds errors (races).
const EXIT_ILLEGAL: u8 = 4;
/// Exit code when `run` finds the parallel result differs from the
/// sequential reference.
const EXIT_MISMATCH: u8 = 5;
/// Exit code when `run` misses its `--timeout-ms` deadline (or the run
/// is cancelled) — `ALP0007`.
const EXIT_TIMEOUT: u8 = 6;
/// Exit code when a tile faults and retries are exhausted — `ALP0008`.
const EXIT_FAULT: u8 = 7;
/// Exit code when the run is over its `--max-store-bytes` budget and
/// `--fallback-seq` was not given — `ALP0009`.
const EXIT_BUDGET: u8 = 8;
/// Exit code when a plan certificate is missing (under
/// `--require-cert`), stale, or disagrees with recomputation — `ALP0011`.
const EXIT_CERT: u8 = 9;
/// Exit code when the plan service sheds the request under load —
/// `ALP0012` (`serve --connect` only).
const EXIT_OVERLOAD: u8 = 10;
/// Exit code when the durable plan store holds corrupt frames —
/// `ALP0014` (`store verify` only; the daemon itself quarantines and
/// keeps going).
const EXIT_STORE: u8 = 11;
/// Exit code when the service is draining: a `--connect` request was
/// refused with `ALP0015`, or a second termination signal aborted the
/// daemon's graceful drain.
const EXIT_DRAINING: u8 = 12;

fn usage() -> ! {
    eprintln!(
        "usage: alp-cli [-p N] [-m WxH] [--param NAME=VAL]... [--simulate] [--para] \
         [--line-size N] [--code] [--check|--no-check] [--from-plan FILE] <FILE|->\n       \
         alp-cli plan [-p N] [-m WxH] [--param NAME=VAL]... [--no-check] [--certify] \
         [--skewed] [--via-server SOCK] [--emit FILE|-] <FILE|->\n       \
         alp-cli run [-p N] [--param NAME=VAL]... [--threads N] [--steal] \
         [--line-size N] [--seed N] [--no-check] [--from-plan FILE] [--timeout-ms N] \
         [--retry N] [--max-store-bytes N] [--fallback-seq] [--require-cert] [--skewed] \
         <FILE|->\n       \
         alp-cli certify [--emit FILE|-] <PLAN|->\n       \
         alp-cli calibrate [-p N] [--param NAME=VAL]... [--threads N] [--trials N] \
         [--warmup N] [--line-size N] [--seed N] [--emit FILE|-] [FILE|-]\n       \
         alp-cli serve --socket PATH [--shards N] [--cache-capacity N] [--queue N] \
         [--run-high-water N] [--workers N] [--store DIR] [--drain-deadline-ms N]\n       \
         alp-cli serve --socket PATH --connect [--op plan|run|stats|ping|shutdown] \
         [-p N] [--no-check] [--want-plan] [--certify] [--threads N] [--seed N] \
         [--timeout-ms N] [--max-store-bytes N] [--retries N] [--deadline-ms N] \
         [FILE|-]\n       \
         alp-cli store verify|stats|compact DIR\n       \
         alp-cli bench-serve [--smoke] [--json FILE|-] [--clients N] [--window N] \
         [--requests N] [--corpus N] [--hot N] [--run-percent N] [--seed N] [-p N] \
         [--shards N] [--cache-capacity N] [--queue N] [--workers N] [--store DIR]"
    );
    std::process::exit(2)
}

struct RunOptions {
    processors: i128,
    params: HashMap<String, i128>,
    threads: usize,
    steal: bool,
    line_size: u64,
    seed: u64,
    no_check: bool,
    from_plan: Option<String>,
    timeout_ms: Option<u64>,
    retry: u32,
    max_store_bytes: Option<u64>,
    fallback_seq: bool,
    require_cert: bool,
    skewed: bool,
    input: String,
}

fn parse_run_args(mut args: impl Iterator<Item = String>) -> RunOptions {
    let mut opts = RunOptions {
        processors: 16,
        params: HashMap::new(),
        threads: 0,
        steal: false,
        line_size: 1,
        seed: 42,
        no_check: false,
        from_plan: None,
        timeout_ms: None,
        retry: 0,
        max_store_bytes: None,
        fallback_seq: false,
        require_cert: false,
        skewed: false,
        input: String::new(),
    };
    let mut input: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-p" | "--processors" => {
                opts.processors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--param" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (name, val) = v.split_once('=').unwrap_or_else(|| usage());
                opts.params
                    .insert(name.to_string(), val.parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--steal" => opts.steal = true,
            "--line-size" => {
                opts.line_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-check" => opts.no_check = true,
            "--from-plan" => {
                opts.from_plan = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--retry" => {
                opts.retry = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-store-bytes" => {
                opts.max_store_bytes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fallback-seq" => opts.fallback_seq = true,
            "--require-cert" => opts.require_cert = true,
            "--skewed" => opts.skewed = true,
            "-h" | "--help" => usage(),
            other if input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    match input {
        Some(i) => opts.input = i,
        None if opts.from_plan.is_some() => {}
        None => usage(),
    }
    opts
}

fn read_source(input: &str) -> Result<String, ExitCode> {
    if input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("alp-cli: failed to read stdin");
            return Err(ExitCode::FAILURE);
        }
        Ok(buf)
    } else {
        std::fs::read_to_string(input).map_err(|e| {
            eprintln!("alp-cli: {input}: {e}");
            ExitCode::FAILURE
        })
    }
}

/// Load and decode a saved plan file ('-' reads stdin).  Structurally
/// damaged certificates (truncated block, stale fingerprint) are caught
/// here by the decoder and exit 9.
fn load_plan(path: &str) -> Result<PartitionPlan, ExitCode> {
    let text = read_source(path)?;
    PartitionPlan::from_json_str(&text).map_err(|e| {
        let e = AlpError::from(e);
        eprintln!("alp-cli: error[{}]: {e}", e.code());
        if e.code() == "ALP0011" {
            ExitCode::from(EXIT_CERT)
        } else {
            ExitCode::FAILURE
        }
    })
}

/// The `run` subcommand: partition (or load a saved plan), then actually
/// execute on OS threads and validate against a sequential reference.
fn run_main(opts: RunOptions) -> ExitCode {
    let (compiler, result) = if let Some(plan_path) = &opts.from_plan {
        let plan = match load_plan(plan_path) {
            Ok(p) => p,
            Err(code) => return code,
        };
        if opts.require_cert && plan.certificate.is_none() {
            let e = AlpError::from(CertifyError::Missing);
            eprintln!("alp-cli: error[{}]: {e}", e.code());
            return ExitCode::from(EXIT_CERT);
        }
        let compiler = Compiler::new(plan.processors).unchecked();
        match compiler.compile_from_plan(&plan) {
            Ok(r) => (compiler, r),
            Err(e) => {
                eprintln!("alp-cli: error[{}]: {e}", e.code());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let src = match read_source(&opts.input) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let nests = match alp::loopir::parse_program_with_params(&src, &opts.params) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("alp-cli: {e}");
                return ExitCode::FAILURE;
            }
        };
        if nests.len() != 1 {
            eprintln!(
                "alp-cli: run expects a single-nest program ({} nests found)",
                nests.len()
            );
            return ExitCode::FAILURE;
        }
        let nest = nests.into_iter().next().expect("nonempty");
        if !opts.no_check {
            let report = analyze(&nest);
            eprint!("{}", report.render(&src));
            if report.has_errors() {
                eprintln!("alp-cli: refusing illegal doall (use --no-check to override)");
                return ExitCode::from(EXIT_ILLEGAL);
            }
        }

        let mut compiler = Compiler::new(opts.processors).unchecked();
        if opts.skewed {
            compiler = compiler.with_skewed_tiles();
        }
        let result = match compiler.compile(nest) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("alp-cli: {e}");
                return ExitCode::FAILURE;
            }
        };
        // A DSL nest has no saved certificate to demand — certify it in
        // process and attach the proof, so execute() re-checks the same
        // path a saved certified plan takes.
        let result = if opts.require_cert {
            let report = match alp::certify::certify(&result.plan) {
                Ok(r) => r,
                Err(e) => {
                    let e = AlpError::from(e);
                    eprintln!("alp-cli: error[{}]: {e}", e.code());
                    return ExitCode::FAILURE;
                }
            };
            let certified = (*result.plan).clone().with_certificate(report.certificate);
            match compiler.compile_from_plan(&certified) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("alp-cli: error[{}]: {e}", e.code());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            result
        };
        (compiler, result)
    };
    println!(
        "partition: grid {:?}, tile λ {:?}, modeled cost {}",
        result.partition.proc_grid, result.partition.tile_extents, result.partition.cost
    );
    if let Some(t) = &result.plan.transform {
        println!(
            "transform: skewed tiles, U rows {:?} (grid and λ are j-space)",
            (0..t.depth())
                .map(|r| (0..t.depth()).map(|c| t.u()[(r, c)]).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }
    if let Some(cert) = &result.plan.certificate {
        println!(
            "certificate: coverage {}, write-disjoint {}, in-bounds {}, idempotent {}",
            cert.coverage, cert.write_disjoint, cert.in_bounds, cert.idempotent
        );
    }

    let exec_opts = ExecOptions {
        threads: opts.threads,
        schedule: if opts.steal {
            Schedule::Dynamic
        } else {
            Schedule::Static
        },
        line_size: opts.line_size,
        deadline: opts.timeout_ms.map(std::time::Duration::from_millis),
        max_retries: opts.retry,
        memory_budget: opts.max_store_bytes,
        ..ExecOptions::default()
    };
    let summary = match compiler.execute(&result, &exec_opts, opts.seed) {
        Ok(s) => s,
        Err(e @ AlpError::Runtime(RuntimeError::ResourceExceeded { .. })) if opts.fallback_seq => {
            // Degraded mode: run the interpreted sequential reference
            // directly (no threads, no touch bitsets, no snapshots).
            eprintln!("alp-cli: warning[{}]: {e}", e.code());
            eprintln!("alp-cli: falling back to a sequential interpreted run");
            let exec = match Executor::from_plan(&result.plan) {
                Ok(x) => x,
                Err(e) => {
                    let e = AlpError::from(e);
                    eprintln!("alp-cli: error[{}]: {e}", e.code());
                    return ExitCode::FAILURE;
                }
            };
            let data = exec.run_sequential(opts.seed);
            println!("\n== run (sequential fallback) ==");
            println!(
                "threads 1  tiles {}  elements {}",
                exec.tile_count(),
                data.len()
            );
            println!("result: sequential fallback completed");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("alp-cli: error[{}]: {e}", e.code());
            return ExitCode::from(match e.code() {
                "ALP0007" => EXIT_TIMEOUT,
                "ALP0008" => EXIT_FAULT,
                "ALP0009" => EXIT_BUDGET,
                "ALP0011" => EXIT_CERT,
                _ => 1,
            });
        }
    };

    println!("\n== run ==");
    if summary.certified_fastpath {
        println!("certified fast path: relaxed (non-atomic) accumulate stores");
    }
    print!("{}", summary.outcome.report.render());
    if let Some(mc) = &summary.model_comparison {
        println!(
            "model footprint: predicted {:.1} lines/tile, measured max {}{}, ratio {:.2}",
            mc.predicted_per_tile,
            if mc.exact { "" } else { "~" },
            mc.measured_max_tile,
            mc.ratio
        );
    }
    if summary.outcome.matches_reference {
        println!("result: parallel output matches the sequential reference bitwise");
        ExitCode::SUCCESS
    } else {
        eprintln!("alp-cli: parallel result DIFFERS from the sequential reference");
        ExitCode::from(EXIT_MISMATCH)
    }
}

struct PlanOptions {
    processors: i128,
    mesh: Option<(usize, usize)>,
    params: HashMap<String, i128>,
    no_check: bool,
    emit: String,
    calibrated: Option<String>,
    certify: bool,
    skewed: bool,
    via_server: Option<String>,
    input: String,
}

/// Load and decode a calibration artifact ('-' reads stdin).
fn load_calibration(path: &str) -> Result<Calibration, ExitCode> {
    let text = read_source(path)?;
    Calibration::from_json_str(&text).map_err(|e| {
        let e = AlpError::from(e);
        eprintln!("alp-cli: error[{}]: {e}", e.code());
        ExitCode::FAILURE
    })
}

fn parse_plan_args(mut args: impl Iterator<Item = String>) -> PlanOptions {
    let mut opts = PlanOptions {
        processors: 16,
        mesh: None,
        params: HashMap::new(),
        no_check: false,
        emit: "-".to_string(),
        calibrated: None,
        certify: false,
        skewed: false,
        via_server: None,
        input: String::new(),
    };
    let mut input: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-p" | "--processors" => {
                opts.processors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-m" | "--mesh" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (w, h) = v.split_once('x').unwrap_or_else(|| usage());
                opts.mesh = Some((
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--param" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (name, val) = v.split_once('=').unwrap_or_else(|| usage());
                opts.params
                    .insert(name.to_string(), val.parse().unwrap_or_else(|_| usage()));
            }
            "--no-check" => opts.no_check = true,
            "--emit" => opts.emit = args.next().unwrap_or_else(|| usage()),
            "--calibrated" => {
                opts.calibrated = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--certify" => opts.certify = true,
            "--skewed" => opts.skewed = true,
            "--via-server" => {
                opts.via_server = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            other if input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    opts.input = input.unwrap_or_else(|| usage());
    opts
}

/// `plan --via-server SOCK`: delegate planning to a running `alp-cli
/// serve` daemon through the resilient client instead of compiling in
/// process — hot nests come back as cache hits without paying the
/// optimizer.  Local-only features (`--mesh`, `--calibrated`,
/// `--skewed`, `--param`) are not in the wire protocol and are refused.
fn plan_via_server(opts: &PlanOptions, sock: &str) -> ExitCode {
    use alp::serve::client::RetryPolicy;
    use alp::serve::{Client, ClientConfig, Request};
    if opts.mesh.is_some() || opts.calibrated.is_some() || opts.skewed || !opts.params.is_empty() {
        eprintln!(
            "alp-cli: plan --via-server supports -p/--no-check/--certify/--emit only \
             (--mesh, --calibrated, --skewed, --param plan locally)"
        );
        return ExitCode::from(2);
    }
    let src = match read_source(&opts.input) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut req = Request::plan(1, &src);
    req.plan.processors = opts.processors;
    req.plan.check = !opts.no_check;
    req.plan.certify = opts.certify;
    req.want_plan = true;
    let mut client = Client::new(std::path::Path::new(sock), ClientConfig::default());
    let resp = match client.call(&req, RetryPolicy::Idempotent) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alp-cli: plan: {sock}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !resp.ok {
        let code = resp.code.as_deref().unwrap_or("ALP0006");
        eprintln!(
            "alp-cli: error[{code}]: {}",
            resp.error.as_deref().unwrap_or("request failed")
        );
        return serve_exit(code);
    }
    let Some(json) = &resp.plan else {
        eprintln!("alp-cli: plan: server answered without a plan artifact");
        return ExitCode::FAILURE;
    };
    if opts.emit == "-" {
        print!("{json}");
    } else {
        if let Err(e) = std::fs::write(&opts.emit, json) {
            eprintln!("alp-cli: {}: {e}", opts.emit);
            return ExitCode::FAILURE;
        }
        eprintln!(
            "alp-cli: wrote plan (fingerprint {}, tiles {}, cache {}) to {}",
            resp.fingerprint.as_deref().unwrap_or("?"),
            resp.tiles.unwrap_or(0),
            resp.cache.as_deref().unwrap_or("?"),
            opts.emit
        );
    }
    ExitCode::SUCCESS
}

/// The `plan` subcommand: run analysis + partitioning only and write the
/// decision as the versioned JSON plan artifact.
fn plan_main(opts: PlanOptions) -> ExitCode {
    if let Some(sock) = opts.via_server.clone() {
        return plan_via_server(&opts, &sock);
    }
    let src = match read_source(&opts.input) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let nests = match alp::loopir::parse_program_with_params(&src, &opts.params) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("alp-cli: {e}");
            return ExitCode::FAILURE;
        }
    };
    if nests.len() != 1 {
        eprintln!(
            "alp-cli: plan expects a single-nest program ({} nests found)",
            nests.len()
        );
        return ExitCode::FAILURE;
    }
    let nest = nests.into_iter().next().expect("nonempty");
    let mut compiler = Compiler::new(opts.processors);
    if let Some((w, h)) = opts.mesh {
        compiler = compiler.with_mesh(w, h);
    }
    if opts.no_check {
        compiler = compiler.unchecked();
    }
    if let Some(calib_path) = &opts.calibrated {
        let calib = match load_calibration(calib_path) {
            Ok(c) => c,
            Err(code) => return code,
        };
        compiler = compiler.with_calibration(calib.model);
    }
    if opts.skewed {
        compiler = compiler.with_skewed_tiles();
    }
    let plan = match compiler.plan(&nest) {
        Ok(p) => p,
        Err(AlpError::Illegal(report)) => {
            eprint!("{}", report.render(&src));
            eprintln!("alp-cli: refusing illegal doall (use --no-check to override)");
            return ExitCode::from(EXIT_ILLEGAL);
        }
        Err(e) => {
            eprintln!("alp-cli: error[{}]: {e}", e.code());
            return ExitCode::FAILURE;
        }
    };
    let plan = if opts.certify {
        let report = match alp::certify::certify(&plan) {
            Ok(r) => r,
            Err(e) => {
                let e = AlpError::from(e);
                eprintln!("alp-cli: error[{}]: {e}", e.code());
                return ExitCode::FAILURE;
            }
        };
        for note in &report.notes {
            eprintln!("alp-cli: certify: {note}");
        }
        plan.with_certificate(report.certificate)
    } else {
        plan
    };
    let json = plan.to_json_string();
    if opts.emit == "-" {
        print!("{json}");
    } else {
        if let Err(e) = std::fs::write(&opts.emit, &json) {
            eprintln!("alp-cli: {}: {e}", opts.emit);
            return ExitCode::FAILURE;
        }
        eprintln!(
            "alp-cli: wrote plan (fingerprint {}, grid {:?}, {} tiles{}) to {}",
            plan.fingerprint,
            plan.proc_grid,
            plan.tiles(),
            if plan.transform.is_some() {
                ", skewed"
            } else {
                ""
            },
            opts.emit
        );
    }
    ExitCode::SUCCESS
}

struct CertifyOptions {
    emit: Option<String>,
    input: String,
}

fn parse_certify_args(mut args: impl Iterator<Item = String>) -> CertifyOptions {
    let mut opts = CertifyOptions {
        emit: None,
        input: String::new(),
    };
    let mut input: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => opts.emit = Some(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            other if input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    opts.input = input.unwrap_or_else(|| usage());
    opts
}

/// The `certify` subcommand: prove the four certificate facts for a
/// saved plan (or re-check an embedded certificate) and optionally write
/// the certified plan back out.
fn certify_main(opts: CertifyOptions) -> ExitCode {
    let plan = match load_plan(&opts.input) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let certificate = if plan.certificate.is_some() {
        // An embedded certificate is *re-checked*: every verdict must
        // agree with fresh recomputation.
        match alp::certify::recheck(&plan) {
            Ok(c) => {
                println!("certificate: verified against recomputation");
                c
            }
            Err(e) => {
                let e = AlpError::from(e);
                eprintln!("alp-cli: error[{}]: {e}", e.code());
                return ExitCode::from(if e.code() == "ALP0011" { EXIT_CERT } else { 1 });
            }
        }
    } else {
        match alp::certify::certify(&plan) {
            Ok(report) => {
                for note in &report.notes {
                    eprintln!("alp-cli: certify: {note}");
                }
                report.certificate
            }
            Err(e) => {
                let e = AlpError::from(e);
                eprintln!("alp-cli: error[{}]: {e}", e.code());
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "plan {} (grid {:?}):\n  coverage       {}\n  write-disjoint {}\n  in-bounds      \
         {}\n  idempotent     {}",
        plan.fingerprint,
        plan.proc_grid,
        certificate.coverage,
        certificate.write_disjoint,
        certificate.in_bounds,
        certificate.idempotent
    );
    if let Some(emit) = &opts.emit {
        let certified = plan.with_certificate(certificate);
        let json = certified.to_json_string();
        if emit == "-" {
            print!("{json}");
        } else {
            if let Err(e) = std::fs::write(emit, &json) {
                eprintln!("alp-cli: {emit}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("alp-cli: wrote certified plan to {emit}");
        }
    }
    ExitCode::SUCCESS
}

struct CalibrateOptions {
    processors: i128,
    params: HashMap<String, i128>,
    threads: usize,
    trials: usize,
    warmup: usize,
    line_size: u64,
    seed: u64,
    emit: String,
    input: Option<String>,
}

fn parse_calibrate_args(mut args: impl Iterator<Item = String>) -> CalibrateOptions {
    let mut opts = CalibrateOptions {
        processors: 16,
        params: HashMap::new(),
        threads: 4,
        trials: 3,
        warmup: 1,
        line_size: 1,
        seed: 42,
        emit: "-".to_string(),
        input: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-p" | "--processors" => {
                opts.processors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--param" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (name, val) = v.split_once('=').unwrap_or_else(|| usage());
                opts.params
                    .insert(name.to_string(), val.parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--warmup" => {
                opts.warmup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--line-size" => {
                opts.line_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--emit" => opts.emit = args.next().unwrap_or_else(|| usage()),
            "-h" | "--help" => usage(),
            other if opts.input.is_none() => opts.input = Some(other.to_string()),
            _ => usage(),
        }
    }
    opts
}

/// The built-in probe corpus: small nests with deliberately different
/// footprint/span/iteration profiles, so the fit sees diverse feature
/// regimes even without a user program.
const PROBE_CORPUS: &[&str] = &[
    // 2-D stencil: footprint dominated, modest span.
    "doall (i, 1, 96) { doall (j, 1, 96) {
       A[i,j] = B[i-1,j] + B[i,j+1] + B[i+1,j-1];
     } }",
    // Skewed references: span and footprint pull candidate shapes in
    // opposite directions (the Example-2 profile).
    "doall (i, 101, 292) { doall (j, 1, 192) {
       A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
     } }",
    // Streaming row sweep: iteration dominated, minimal reuse.
    "doall (i, 0, 63) { doall (j, 0, 511) {
       A[i,j] = B[i,j] + B[i,j+1];
     } }",
];

/// The `calibrate` subcommand: probe candidate tilings on this machine,
/// fit the latency model, and write it as a reusable artifact for
/// `plan --calibrated`.
fn calibrate_main(opts: CalibrateOptions) -> ExitCode {
    let nests: Vec<LoopNest> = if let Some(input) = &opts.input {
        let src = match read_source(input) {
            Ok(s) => s,
            Err(code) => return code,
        };
        match alp::loopir::parse_program_with_params(&src, &opts.params) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("alp-cli: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        PROBE_CORPUS
            .iter()
            .map(|src| alp::loopir::parse(src).expect("built-in probe nest parses"))
            .collect()
    };
    let cfg = ProbeConfig {
        threads: opts.threads,
        trials: opts.trials,
        warmup: opts.warmup,
        line_size: opts.line_size,
        seed: opts.seed,
        max_grids: 8,
    };
    let pairs: Vec<(&LoopNest, i128)> = nests.iter().map(|n| (n, opts.processors)).collect();
    eprintln!(
        "alp-cli: probing {} nest{} x {} processors ({} threads, {} trial{} + {} warmup)",
        pairs.len(),
        if pairs.len() == 1 { "" } else { "s" },
        opts.processors,
        opts.threads,
        opts.trials,
        if opts.trials == 1 { "" } else { "s" },
        opts.warmup
    );
    let model = match fit_nest(&pairs, &cfg) {
        Ok(m) => m,
        Err(e) => {
            let e = AlpError::from(e);
            eprintln!("alp-cli: error[{}]: {e}", e.code());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "alp-cli: fitted over {} samples: per-tile {} ns, per-line {} ns, per-span-line {} ns, \
         per-iter {} ns, per-rep {} ns",
        model.samples,
        model.per_tile_ns.to_f64(),
        model.per_line_ns.to_f64(),
        model.per_span_line_ns.to_f64(),
        model.per_iter_ns.to_f64(),
        model.per_rep_ns.to_f64()
    );
    let calib = Calibration {
        model,
        threads: opts.threads,
        trials: opts.trials,
    };
    let json = calib.to_json_string();
    if opts.emit == "-" {
        print!("{json}");
    } else {
        if let Err(e) = std::fs::write(&opts.emit, &json) {
            eprintln!("alp-cli: {}: {e}", opts.emit);
            return ExitCode::FAILURE;
        }
        eprintln!("alp-cli: wrote calibration to {}", opts.emit);
    }
    ExitCode::SUCCESS
}

/// Default mode with `--from-plan`: report (and optionally simulate) a
/// saved plan without re-running analysis or the optimizer.
fn from_plan_main(opts: &Options, plan_path: &str) -> ExitCode {
    let plan = match load_plan(plan_path) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let mut compiler = Compiler::new(plan.processors).unchecked();
    if let Some((w, h)) = opts.mesh.or(plan.mesh) {
        compiler = compiler.with_mesh(w, h);
    }
    let result = match compiler.compile_from_plan(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alp-cli: error[{}]: {e}", e.code());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== plan {} (P = {}) ==",
        result.plan.fingerprint, result.plan.processors
    );
    println!(
        "  grid {:?}, tile λ {:?}, modeled cost {}",
        result.partition.proc_grid, result.partition.tile_extents, result.partition.cost
    );
    for ap in &result.data_partitions {
        println!(
            "  data {:<3} tile {:?} over dims {:?}, offset {}",
            ap.array, ap.tile_extents, ap.dims, ap.offset
        );
    }
    if opts.show_code {
        println!("\n== code ==\n{}", result.code);
    }
    if opts.simulate {
        println!("\n== simulation ==");
        let report = match alp::machine::run_plan(
            &result.plan,
            MachineConfig {
                // Overridden to the plan's tile count by run_plan.
                processors: 0,
                cache: CacheConfig::Infinite,
                mesh: opts.mesh.or(plan.mesh),
                line_size: opts.line_size,
                directory: DirectoryKind::FullMap,
            },
            &UniformHome,
        ) {
            Ok(r) => r,
            Err(e) => {
                let e = AlpError::from(e);
                eprintln!("alp-cli: error[{}]: {e}", e.code());
                return ExitCode::FAILURE;
            }
        };
        println!("  accesses        : {}", report.total_accesses());
        println!(
            "  misses          : {} (rate {:.4})",
            report.total_misses(),
            report.miss_rate()
        );
        println!("    cold          : {}", report.total_cold_misses());
        println!("    coherence     : {}", report.total_coherence_misses());
        println!("  invalidations   : {}", report.total_invalidations());
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Options {
    let mut opts = Options {
        processors: 16,
        mesh: None,
        params: HashMap::new(),
        simulate: false,
        para: false,
        line_size: 1,
        show_code: false,
        check_only: false,
        no_check: false,
        from_plan: None,
        input: String::new(),
    };
    let mut args = std::env::args().skip(1);
    let mut input: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-p" | "--processors" => {
                opts.processors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-m" | "--mesh" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (w, h) = v.split_once('x').unwrap_or_else(|| usage());
                opts.mesh = Some((
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--param" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (name, val) = v.split_once('=').unwrap_or_else(|| usage());
                opts.params
                    .insert(name.to_string(), val.parse().unwrap_or_else(|_| usage()));
            }
            "--simulate" => opts.simulate = true,
            "--para" => opts.para = true,
            "--line-size" => {
                opts.line_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--code" => opts.show_code = true,
            "--check" => opts.check_only = true,
            "--no-check" => opts.no_check = true,
            "--from-plan" => {
                opts.from_plan = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            other if input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    match input {
        Some(i) => opts.input = i,
        None if opts.from_plan.is_some() => {}
        None => usage(),
    }
    opts
}

// ---------------------------------------------------------------- serve

/// Map a serve-protocol error code to the CLI exit-code contract.
fn serve_exit(code: &str) -> ExitCode {
    ExitCode::from(match code {
        "ALP0003" => EXIT_ILLEGAL,
        "ALP0007" => EXIT_TIMEOUT,
        "ALP0008" => EXIT_FAULT,
        "ALP0009" => EXIT_BUDGET,
        "ALP0011" => EXIT_CERT,
        "ALP0012" => EXIT_OVERLOAD,
        "ALP0014" => EXIT_STORE,
        "ALP0015" => EXIT_DRAINING,
        _ => 1,
    })
}

// ------------------------------------------------------------- signals
//
// The daemon and the benchmark want graceful-drain semantics for
// SIGTERM/SIGINT without a libc crate: the handler (async-signal-safe —
// it only touches an atomic) counts deliveries, and the main thread
// polls.  First signal: begin the drain.  Second: abort it (exit 12).

static SIGNALS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

extern "C" fn note_signal(_sig: i32) {
    SIGNALS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn install_drain_signals() {
    unsafe {
        signal(SIGINT, note_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, note_signal as extern "C" fn(i32) as usize);
    }
}

fn signals_seen() -> usize {
    SIGNALS.load(std::sync::atomic::Ordering::SeqCst)
}

struct ServeOptions {
    socket: String,
    connect: bool,
    op: String,
    processors: i128,
    no_check: bool,
    want_plan: bool,
    certify: bool,
    threads: usize,
    seed: u64,
    timeout_ms: Option<u64>,
    max_store_bytes: Option<u64>,
    retries: Option<u32>,
    deadline_ms: Option<u64>,
    shards: usize,
    capacity: usize,
    queue: usize,
    run_high_water: Option<usize>,
    workers: usize,
    store: Option<String>,
    drain_deadline_ms: u64,
    input: Option<String>,
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> ServeOptions {
    let defaults = alp::serve::ServeConfig::default();
    let mut opts = ServeOptions {
        socket: String::new(),
        connect: false,
        op: "plan".to_string(),
        processors: 16,
        no_check: false,
        want_plan: false,
        certify: false,
        threads: 0,
        seed: 42,
        timeout_ms: None,
        max_store_bytes: None,
        retries: None,
        deadline_ms: None,
        shards: defaults.shards,
        capacity: defaults.cache_capacity,
        queue: defaults.queue_cap,
        run_high_water: None,
        workers: defaults.workers,
        store: None,
        drain_deadline_ms: defaults.drain_deadline_ms,
        input: None,
    };
    let next = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => opts.socket = next(&mut args),
            "--connect" => opts.connect = true,
            "--op" => opts.op = next(&mut args),
            "-p" => opts.processors = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--no-check" => opts.no_check = true,
            "--want-plan" => opts.want_plan = true,
            "--certify" => opts.certify = true,
            "--threads" => opts.threads = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => {
                opts.timeout_ms = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--max-store-bytes" => {
                opts.max_store_bytes = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--retries" => opts.retries = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "--deadline-ms" => {
                opts.deadline_ms = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => opts.shards = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--capacity" | "--cache-capacity" => {
                opts.capacity = next(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--queue" => opts.queue = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--run-high-water" => {
                opts.run_high_water = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--workers" => opts.workers = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--store" => opts.store = Some(next(&mut args)),
            "--drain-deadline-ms" => {
                opts.drain_deadline_ms = next(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "-h" | "--help" => usage(),
            other if opts.input.is_none() && (other == "-" || !other.starts_with('-')) => {
                opts.input = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    if opts.socket.is_empty() {
        usage();
    }
    opts
}

/// Print a recovery report's quarantine warnings (`ALP0014` — never
/// fatal) and the replay summary the way the daemon announces them.
fn report_recovery(report: &alp::plan::RecoveryReport) {
    for q in &report.quarantined {
        eprintln!(
            "alp-cli: serve: warning[ALP0014]: segment {:06} offset {}: {} \
             ({} bytes quarantined)",
            q.segment, q.offset, q.reason, q.bytes
        );
    }
    eprintln!(
        "alp-cli: serve: store replayed {} plan{} from {} frame{} in {} segment{}",
        report.live.len(),
        if report.live.len() == 1 { "" } else { "s" },
        report.frames,
        if report.frames == 1 { "" } else { "s" },
        report.segments,
        if report.segments == 1 { "" } else { "s" }
    );
}

/// `alp-cli serve`: daemon mode binds the socket and runs until a
/// protocol `shutdown` or a termination signal starts the graceful
/// drain (second signal aborts it, exit 12); `--connect` sends one
/// request through the resilient retrying client and maps the outcome
/// onto the exit-code contract (`ALP0012` sheds exit 10, `ALP0015`
/// drain refusals exit 12).
fn serve_main(opts: ServeOptions) -> ExitCode {
    use alp::serve::client::RetryPolicy;
    use alp::serve::{Client, ClientConfig, Request, RequestOp, ServeConfig, Server};
    if !opts.connect {
        install_drain_signals();
        let (server, recovery) = match Server::try_new(ServeConfig {
            shards: opts.shards,
            cache_capacity: opts.capacity,
            queue_cap: opts.queue,
            run_high_water: opts.run_high_water,
            workers: opts.workers,
            prewarm: Vec::new(),
            store_dir: opts.store.as_ref().map(std::path::PathBuf::from),
            drain_deadline_ms: opts.drain_deadline_ms,
        }) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!(
                    "alp-cli: serve: {}: {e}",
                    opts.store.as_deref().unwrap_or("store")
                );
                return ExitCode::FAILURE;
            }
        };
        if let Some(report) = &recovery {
            report_recovery(report);
        }
        let handle = match server.serve(std::path::Path::new(&opts.socket)) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("alp-cli: serve: {}: {e}", opts.socket);
                return ExitCode::FAILURE;
            }
        };
        eprintln!("alp-cli: serving on {}", opts.socket);
        // A second signal must cut the drain short even while `finish`
        // blocks below, so the escalation watcher is its own thread.
        std::thread::spawn(|| loop {
            if signals_seen() >= 2 {
                eprintln!("alp-cli: serve: second signal — aborting drain (exit 12)");
                std::process::exit(EXIT_DRAINING as i32);
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
        while signals_seen() == 0 && !handle.is_shutting_down() {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        if signals_seen() > 0 {
            eprintln!(
                "alp-cli: serve: signal received — draining (deadline {} ms)",
                opts.drain_deadline_ms
            );
        }
        let out = handle.finish(std::time::Duration::from_millis(opts.drain_deadline_ms));
        let stats = out.stats;
        eprintln!(
            "alp-cli: serve: {} after {} hits, {} compiles, {} coalesced, {} shed, \
             {} refused{}",
            if out.drained {
                "drained cleanly".to_string()
            } else {
                format!(
                    "drain deadline hit ({} job(s) answered ALP0015)",
                    out.abandoned
                )
            },
            stats.hits,
            stats.misses,
            stats.coalesced,
            stats.shed(),
            stats.refused,
            if stats.replayed > 0 {
                format!(", {} replayed", stats.replayed)
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }

    // Client mode: one request through the resilient client — per-
    // attempt timeouts, jittered backoff, retry budget gated on
    // idempotence — then one exit code.
    let op = match opts.op.as_str() {
        "plan" => RequestOp::Plan,
        "run" => RequestOp::Run,
        "stats" => RequestOp::Stats,
        "ping" => RequestOp::Ping,
        "shutdown" => RequestOp::Shutdown,
        _ => usage(),
    };
    let req = if matches!(op, RequestOp::Plan | RequestOp::Run) {
        let source = match read_source(opts.input.as_deref().unwrap_or_else(|| usage())) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let mut req = Request::plan(1, &source);
        req.op = op;
        req.plan.processors = opts.processors;
        req.plan.check = !opts.no_check;
        req.plan.certify = opts.certify;
        req.want_plan = opts.want_plan;
        req.run.threads = opts.threads;
        req.run.seed = opts.seed;
        req.run.timeout_ms = opts.timeout_ms;
        req.run.max_store_bytes = opts.max_store_bytes;
        req
    } else {
        Request::control(1, op)
    };
    // A certified run is provably idempotent, so its retry budget
    // survives ambiguous transport failures; an uncertified run stops
    // at the first failure that may have executed.
    let policy = if opts.certify && req.op == RequestOp::Run {
        RetryPolicy::Certified
    } else {
        Client::default_policy(&req)
    };
    let cfg = ClientConfig {
        max_attempts: opts
            .retries
            .map_or(ClientConfig::default().max_attempts, |r| r + 1),
        deadline_ms: opts.deadline_ms,
        ..ClientConfig::default()
    };
    let mut client = Client::new(std::path::Path::new(&opts.socket), cfg);
    match client.call(&req, policy) {
        Err(e) => {
            // A budget exhausted on shed (ALP0012) or drain (ALP0015)
            // refusals is, in the end, the server's answer: keep the
            // `error[CODE]` rendering and that code's exit mapping.
            let rendered = e.to_string();
            for code in ["ALP0012", "ALP0015"] {
                if rendered.contains(code) {
                    eprintln!("alp-cli: error[{code}]: {rendered}");
                    return serve_exit(code);
                }
            }
            eprintln!("alp-cli: serve: {}: {e}", opts.socket);
            ExitCode::FAILURE
        }
        Ok(resp) if !resp.ok => {
            let code = resp.code.as_deref().unwrap_or("ALP0006");
            eprintln!(
                "alp-cli: error[{code}]: {}",
                resp.error.as_deref().unwrap_or("request failed")
            );
            serve_exit(code)
        }
        Ok(resp) => {
            if let Some(stats) = &resp.stats {
                println!("{}", stats.encode());
                if let Some(shards) = &resp.shards {
                    for (i, s) in shards.iter().enumerate() {
                        let lookups = s.hits + s.misses + s.coalesced;
                        println!(
                            "shard {i:>3}: {}/{} plans, {} hits / {} misses / {} coalesced \
                             (hit rate {:.3})",
                            s.len,
                            s.capacity,
                            s.hits,
                            s.misses,
                            s.coalesced,
                            if lookups == 0 {
                                0.0
                            } else {
                                s.hits as f64 / lookups as f64
                            }
                        );
                    }
                }
            } else if let Some(plan) = &resp.plan {
                println!("{plan}");
            } else if let Some(fp) = &resp.fingerprint {
                let extra = match resp.matches_reference {
                    Some(m) => format!(", matches_reference: {m}"),
                    None => String::new(),
                };
                println!(
                    "fingerprint {fp}, tiles {}, cache {}{extra}",
                    resp.tiles.unwrap_or(0),
                    resp.cache.as_deref().unwrap_or("?")
                );
            } else {
                println!("ok");
            }
            ExitCode::SUCCESS
        }
    }
}

// ---------------------------------------------------------------- store

struct StoreOptions {
    action: String,
    dir: String,
}

fn parse_store_args(mut args: impl Iterator<Item = String>) -> StoreOptions {
    let action = args.next().unwrap_or_else(|| usage());
    if !matches!(action.as_str(), "verify" | "stats" | "compact") {
        usage();
    }
    let dir = args.next().unwrap_or_else(|| usage());
    if args.next().is_some() {
        usage();
    }
    StoreOptions { action, dir }
}

/// `alp-cli store`: offline plan-store maintenance.  `verify` scans the
/// journal read-only and exits 11 (`ALP0014`) when any frame is
/// corrupt; `stats` prints the same summary but always exits 0;
/// `compact` rewrites the live set into one fresh segment.
fn store_main(opts: StoreOptions) -> ExitCode {
    use alp::plan::PlanStore;
    let dir = std::path::Path::new(&opts.dir);
    match opts.action.as_str() {
        "verify" | "stats" => {
            let report = match PlanStore::scan(dir) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("alp-cli: store: {}: {e}", opts.dir);
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "store {}: {} segment(s), {} frame(s), {} bytes, {} live plan(s), \
                 {} quarantined",
                opts.dir,
                report.segments,
                report.frames,
                report.bytes,
                report.live.len(),
                report.quarantined.len()
            );
            for q in &report.quarantined {
                eprintln!(
                    "alp-cli: store: warning[ALP0014]: segment {:06} offset {}: {} \
                     ({} bytes)",
                    q.segment, q.offset, q.reason, q.bytes
                );
            }
            if opts.action == "verify" && report.corrupt() {
                eprintln!("alp-cli: error[ALP0014]: store has corrupt frames");
                return ExitCode::from(EXIT_STORE);
            }
            ExitCode::SUCCESS
        }
        "compact" => {
            let (mut store, report) = match PlanStore::open(dir) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("alp-cli: store: {}: {e}", opts.dir);
                    return ExitCode::FAILURE;
                }
            };
            let live: Vec<_> = report
                .live
                .iter()
                .map(|e| (e.key, std::sync::Arc::clone(&e.plan)))
                .collect();
            match store.compact(&live) {
                Ok(c) => {
                    println!(
                        "compacted {}: {} -> {} bytes, {} frame(s) kept, {} segment(s) removed",
                        opts.dir, c.bytes_before, c.bytes_after, c.frames, c.segments_removed
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("alp-cli: store: compact {}: {e}", opts.dir);
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

struct BenchServeOptions {
    smoke: bool,
    json: Option<String>,
    store: Option<String>,
    load: alp::serve::LoadGenConfig,
    serve: alp::serve::ServeConfig,
}

fn parse_bench_serve_args(mut args: impl Iterator<Item = String>) -> BenchServeOptions {
    let mut opts = BenchServeOptions {
        smoke: false,
        json: None,
        store: None,
        load: alp::serve::LoadGenConfig::default(),
        serve: alp::serve::ServeConfig::default(),
    };
    let next = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => opts.json = Some(next(&mut args)),
            "--clients" => opts.load.clients = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--window" => opts.load.window = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                opts.load.requests = next(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--corpus" => opts.load.corpus = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--hot" => opts.load.hot = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--run-percent" => {
                opts.load.run_percent = next(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => opts.load.seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-p" => opts.load.processors = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--shards" => opts.serve.shards = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--capacity" | "--cache-capacity" => {
                opts.serve.cache_capacity = next(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--queue" => opts.serve.queue_cap = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--workers" => opts.serve.workers = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--store" => opts.store = Some(next(&mut args)),
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }
    if opts.smoke {
        // Seconds, not minutes: a bounded CI-sized traffic burst.
        opts.load.clients = opts.load.clients.min(8);
        opts.load.window = opts.load.window.min(16);
        opts.load.requests = opts.load.requests.min(400);
        opts.load.corpus = opts.load.corpus.min(48);
    }
    opts
}

/// What the post-crash warm-start probe measured: the benchmark's
/// journal is reopened by a fresh server and the hot set is replayed —
/// `warm_hits` of `hot_set` come back as cache hits without a compile.
struct RecoveryProbe {
    replayed: usize,
    hot_set: usize,
    warm_hits: usize,
}

/// Render the load-generator report as the `BENCH_serve.json` schema.
fn bench_serve_json(
    cfg: &alp::serve::LoadGenConfig,
    serve: &alp::serve::ServeConfig,
    r: &alp::serve::LoadGenReport,
    recovery: Option<&RecoveryProbe>,
) -> String {
    let s = &r.server;
    let recovery = match recovery {
        Some(p) => format!(
            "{{\"replayed\": {}, \"hot_set\": {}, \"warm_hits\": {}, \"warm_rate\": {:.4}}}",
            p.replayed,
            p.hot_set,
            p.warm_hits,
            if p.hot_set == 0 {
                0.0
            } else {
                p.warm_hits as f64 / p.hot_set as f64
            }
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\n    \"clients\": {}, \"window\": {}, \
         \"requests\": {}, \"corpus\": {}, \"hot\": {},\n    \"run_percent\": {}, \
         \"processors\": {}, \"seed\": {},\n    \"shards\": {}, \"cache_capacity\": {}, \
         \"queue_cap\": {}, \"workers\": {}\n  }},\n  \"cores\": {},\n  \"oversubscribed\": {},\n  \
         \"interrupted\": {},\n  \
         \"max_concurrent\": {},\n  \"elapsed_ms\": {},\n  \"latency_us\": {{\"p50\": {}, \
         \"p99\": {}, \"max\": {}}},\n  \"plans_per_sec\": {},\n  \"requests\": {{\"sent\": {}, \
         \"ok\": {}, \"errors\": {}, \"shed\": {}}},\n  \"cache\": {{\"hit\": {}, \
         \"coalesced\": {}, \"computed\": {}}},\n  \"recovery\": {},\n  \"server\": {}\n}}\n",
        cfg.clients,
        cfg.window,
        cfg.requests,
        cfg.corpus,
        cfg.hot,
        cfg.run_percent,
        cfg.processors,
        cfg.seed,
        serve.shards,
        serve.cache_capacity,
        serve.queue_cap,
        serve.workers,
        r.cores,
        r.oversubscribed,
        r.interrupted,
        r.max_concurrent,
        r.elapsed_ms,
        r.p50_us,
        r.p99_us,
        r.max_us,
        r.plans_per_sec,
        r.sent,
        r.ok,
        r.errors,
        r.shed,
        r.hits,
        r.coalesced,
        r.computed,
        recovery,
        s.encode()
    )
}

/// Reopen the benchmark's plan-store journal with a fresh server (the
/// "post-crash restart") and replay the hot corpus prefix against it,
/// counting how many come back as warm cache hits.
fn bench_recovery_probe(
    load: &alp::serve::LoadGenConfig,
    serve: &alp::serve::ServeConfig,
    store_dir: &std::path::Path,
) -> std::io::Result<RecoveryProbe> {
    use alp::serve::{Request, Server};
    let (server, report) = Server::try_new(alp::serve::ServeConfig {
        store_dir: Some(store_dir.to_path_buf()),
        prewarm: Vec::new(),
        ..serve.clone()
    })?;
    let hot_set = load.hot.min(load.corpus);
    let mut warm_hits = 0usize;
    for rank in 0..hot_set {
        let mut req = Request::plan(rank as i128, &alp::serve::loadgen::corpus_source(rank));
        req.plan.processors = load.processors;
        let resp = server.handle_now(&req);
        if resp.ok && resp.cache.as_deref() == Some("hit") {
            warm_hits += 1;
        }
    }
    Ok(RecoveryProbe {
        replayed: report.map_or(0, |r| r.live.len()),
        hot_set,
        warm_hits,
    })
}

/// `alp-cli bench-serve`: drive the Zipf-mix load generator against an
/// in-process server and write the `BENCH_serve.json` report.  The
/// server journals to `--store` (default: a temp dir) so the report's
/// `recovery` block can measure warm-restart behavior; Ctrl-C stops
/// traffic cooperatively and the final drained counters still print.
fn bench_serve_main(mut opts: BenchServeOptions) -> ExitCode {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let sock = std::env::temp_dir().join(format!("alp-bench-serve-{}.sock", std::process::id()));
    let (store_dir, ephemeral_store) = match &opts.store {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => {
            let d = std::env::temp_dir().join(format!("alp-bench-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            (d, true)
        }
    };
    opts.serve.store_dir = Some(store_dir.clone());

    // First SIGINT/SIGTERM: stop sending, drain in-flight traffic, and
    // report what completed.  Second: give up immediately.
    install_drain_signals();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            let n = signals_seen();
            if n >= 2 {
                eprintln!("alp-cli: bench-serve: second signal — aborting (exit 12)");
                std::process::exit(EXIT_DRAINING as i32);
            }
            if n >= 1 {
                stop.store(true, Ordering::SeqCst);
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    opts.load.stop = Some(Arc::clone(&stop));

    let report = match alp::serve::run_loadgen(&opts.load, opts.serve.clone(), &sock) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alp-cli: bench-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.interrupted {
        eprintln!(
            "bench-serve: interrupted — traffic stopped early, counters below cover \
             everything sent and drained"
        );
    }
    eprintln!(
        "bench-serve: {} requests in {} ms ({} ok/s), p50 {} us, p99 {} us, \
         {} hit / {} coalesced / {} computed / {} shed, cores {}{}",
        report.sent,
        report.elapsed_ms,
        report.plans_per_sec,
        report.p50_us,
        report.p99_us,
        report.hits,
        report.coalesced,
        report.computed,
        report.shed,
        report.cores,
        if report.oversubscribed {
            " (oversubscribed)"
        } else {
            ""
        }
    );
    if report.interrupted {
        eprintln!(
            "bench-serve: final drained server counters: {}",
            report.server.encode()
        );
    }

    // Warm-restart probe: reopen the journal like a post-crash restart
    // and replay the hot set against the fresh server.
    let recovery = match bench_recovery_probe(&opts.load, &opts.serve, &store_dir) {
        Ok(p) => {
            eprintln!(
                "bench-serve: recovery: {} plan(s) replayed from the journal, hot-set warm \
                 hits {}/{}",
                p.replayed, p.warm_hits, p.hot_set
            );
            Some(p)
        }
        Err(e) => {
            eprintln!("alp-cli: bench-serve: warning: recovery probe failed: {e}");
            None
        }
    };
    if ephemeral_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    let json = bench_serve_json(&opts.load, &opts.serve, &report, recovery.as_ref());
    match opts.json.as_deref() {
        None => {}
        Some("-") => print!("{json}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("alp-cli: bench-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => return serve_main(parse_serve_args(std::env::args().skip(2))),
        Some("store") => return store_main(parse_store_args(std::env::args().skip(2))),
        Some("bench-serve") => {
            return bench_serve_main(parse_bench_serve_args(std::env::args().skip(2)))
        }
        Some("run") => return run_main(parse_run_args(std::env::args().skip(2))),
        Some("plan") => return plan_main(parse_plan_args(std::env::args().skip(2))),
        Some("certify") => return certify_main(parse_certify_args(std::env::args().skip(2))),
        Some("calibrate") => return calibrate_main(parse_calibrate_args(std::env::args().skip(2))),
        _ => {}
    }
    let opts = parse_args();
    if let Some(plan_path) = opts.from_plan.clone() {
        return from_plan_main(&opts, &plan_path);
    }
    let src = match read_source(&opts.input) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let nests = match alp::loopir::parse_program_with_params(&src, &opts.params) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("alp-cli: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Legality analysis: standalone with --check, as a gate otherwise.
    if opts.check_only {
        let report = analyze_program(&nests);
        eprint!("{}", report.render(&src));
        return if report.has_errors() {
            ExitCode::from(EXIT_ILLEGAL)
        } else if report.has_warnings() {
            ExitCode::from(EXIT_WARNINGS)
        } else {
            println!(
                "ok: {} nest{} pass{} the doall legality analysis",
                nests.len(),
                if nests.len() == 1 { "" } else { "s" },
                if nests.len() == 1 { "es" } else { "" }
            );
            ExitCode::SUCCESS
        };
    }
    if !opts.no_check {
        let report = analyze_program(&nests);
        eprint!("{}", report.render(&src));
        if report.has_errors() {
            eprintln!("alp-cli: refusing illegal doall (use --no-check to override)");
            return ExitCode::from(EXIT_ILLEGAL);
        }
    }

    if nests.len() > 1 {
        println!("program with {} phases", nests.len());
        let prog = partition_program(&nests, opts.processors);
        println!(
            "strategy: {:?} (total cost {}, alternative {}, redistribution {})",
            prog.strategy, prog.total_cost, prog.alternative_cost, prog.redistribution
        );
        for (k, phase) in prog.phases.iter().enumerate() {
            println!(
                "  phase {}: grid {:?}, tile λ {:?}, cost {}",
                k + 1,
                phase.proc_grid,
                phase.tile_extents,
                phase.cost
            );
        }
        return ExitCode::SUCCESS;
    }

    let nest = nests.into_iter().next().expect("nonempty");
    println!("== analysis ==");
    let classes = classify(&nest);
    for c in &classes {
        println!(
            "  class {:<3} refs {}  rank {}/{}  â = {}  a+ = {}",
            c.array,
            c.len(),
            c.g.rank(),
            c.g.rows(),
            c.spread(),
            c.cumulative_spread()
        );
    }
    let model = CostModel::from_nest(&nest);
    if let Some(ratio) = optimal_aspect_ratio(&model) {
        println!(
            "  cache aspect ratio : {}",
            ratio
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" : ")
        );
    }
    if let Some(ratio) = aspect_ratio_with_spread(&model, SpreadKind::Cumulative) {
        println!(
            "  data  aspect ratio : {}",
            ratio
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" : ")
        );
    }
    let normals = communication_free_normals(&nest);
    if normals.is_empty() {
        println!("  communication-free : no");
    } else {
        println!(
            "  communication-free : yes, normals {:?}",
            normals.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    println!("\n== partition (P = {}) ==", opts.processors);
    // The program-level analysis above already gated legality (or the
    // user opted out), so the pipeline itself runs unchecked.
    let mut compiler = Compiler::new(opts.processors).unchecked();
    if let Some((w, h)) = opts.mesh {
        compiler = compiler.with_mesh(w, h);
    }
    let result = match compiler.compile(nest) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alp-cli: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  grid {:?}, tile λ {:?}, modeled cost {}",
        result.partition.proc_grid, result.partition.tile_extents, result.partition.cost
    );
    for ap in &result.data_partitions {
        println!(
            "  data {:<3} tile {:?} over dims {:?}, offset {}",
            ap.array, ap.tile_extents, ap.dims, ap.offset
        );
    }
    if let Some(pl) = &result.placement {
        println!(
            "  mesh {:?}: avg neighbour hops {:.2}",
            pl.mesh,
            pl.weighted_neighbor_hops(&vec![1.0; result.partition.proc_grid.len()])
        );
    }

    if opts.para && result.nest.depth() >= 2 {
        let para =
            optimize_parallelepiped(&result.nest, opts.processors, &ParaSearchConfig::default());
        println!(
            "  parallelepiped: basis rows {:?}, modeled cost {} (rect: {})",
            (0..para.basis.rows())
                .map(|r| para.basis.row(r).0.clone())
                .collect::<Vec<_>>(),
            para.cost,
            result.partition.cost
        );
    }

    if opts.show_code {
        println!("\n== code ==\n{}", result.code);
    }

    if opts.simulate {
        println!("\n== simulation ==");
        let assignment = assign_rect(&result.nest, &result.partition.proc_grid);
        let cfg = MachineConfig {
            processors: assignment.len(),
            cache: CacheConfig::Infinite,
            mesh: opts.mesh,
            line_size: opts.line_size,
            directory: DirectoryKind::FullMap,
        };
        let report = run_nest(&result.nest, &assignment, cfg, &UniformHome);
        println!("  accesses        : {}", report.total_accesses());
        println!(
            "  misses          : {} (rate {:.4})",
            report.total_misses(),
            report.miss_rate()
        );
        println!("    cold          : {}", report.total_cold_misses());
        println!("    coherence     : {}", report.total_coherence_misses());
        println!("  invalidations   : {}", report.total_invalidations());
        if opts.mesh.is_some() {
            let aligned = alp::aligned_home(&result.nest, &result.partition);
            let r2 = run_nest(
                &result.nest,
                &assignment,
                MachineConfig {
                    processors: assignment.len(),
                    cache: CacheConfig::Infinite,
                    mesh: opts.mesh,
                    line_size: opts.line_size,
                    directory: DirectoryKind::FullMap,
                },
                &aligned,
            );
            println!(
                "  aligned memory  : {} remote misses / {} total, {} hops",
                r2.total_remote_misses(),
                r2.total_misses(),
                r2.total_hop_traffic()
            );
        }
    }
    ExitCode::SUCCESS
}
