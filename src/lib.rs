//! # `alp` — Automatic Loop Partitioning for Cache-Coherent Multiprocessors
//!
//! A Rust implementation of the loop- and data-partitioning framework of
//! Agarwal, Kranz & Natarajan, *Automatic Partitioning of Parallel Loops
//! for Cache-Coherent Multiprocessors* (ICPP 1993 / MIT-LCS-TM-481).
//!
//! Given a `doall` loop nest whose array subscripts are affine in the
//! loop indices, the framework chooses the iteration-space tile shape
//! that minimizes the data each processor touches — and therefore the
//! cache-miss and coherence traffic on a cache-coherent shared-memory
//! machine.
//!
//! ```
//! use alp::prelude::*;
//!
//! // Example 8 of the paper: a 3-D stencil.
//! let nest = alp::loopir::parse(
//!     "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
//!        A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
//!      } } }",
//! ).unwrap();
//!
//! // The paper's headline result: tiles in proportion 2 : 3 : 4.
//! let model = CostModel::from_nest(&nest);
//! let ratio = optimal_aspect_ratio(&model).unwrap();
//! assert_eq!(ratio, vec![Rat::int(2), Rat::int(3), Rat::int(4)]);
//!
//! // End-to-end: partition for 64 processors and simulate the machine.
//! let result = Compiler::new(64).compile(nest).unwrap();
//! assert_eq!(result.partition.tiles(), 64);
//! ```
//!
//! The workspace crates, re-exported here:
//!
//! * [`linalg`] — exact integer/rational matrices, HNF/SNF, nullspaces;
//! * [`analysis`] — exact doall legality & race detection with
//!   witness iterations and rustc-style diagnostics;
//! * [`lattice`] — bounded lattices (Thm. 3, Lemma 3), parallelepiped
//!   point counting;
//! * [`loopir`] — the loop-nest IR and `doall` DSL;
//! * [`footprint`] — uniformly intersecting classes, footprint sizes,
//!   cumulative footprints (Thms. 2 & 4), the cost model;
//! * [`partition`] — rectangular/parallelepiped optimizers,
//!   communication-free partitions, Abraham–Hudak baseline, data
//!   alignment, mesh placement;
//! * [`plan`] — the [`PartitionPlan`] artifact: stable nest
//!   fingerprints, the single rectangular tile enumerator, a versioned
//!   JSON schema, and the memoizing [`PlanCache`];
//! * [`machine`] — a deterministic cache-coherent multiprocessor
//!   simulator (full-map MSI directory);
//! * [`codegen`] — iteration assignment and per-processor code emission;
//! * [`runtime`] — a native multithreaded executor that actually runs
//!   partitioned nests on OS threads, with per-thread footprint metrics
//!   validated against the model and the simulator;
//! * [`serve`] — the pipeline as a long-running service: a Unix-socket
//!   daemon over a sharded, request-coalescing plan cache with bounded
//!   admission and `ALP0012` load shedding.

pub use alp_analysis as analysis;
pub use alp_calibrate as calibrate;
pub use alp_certify as certify;
pub use alp_codegen as codegen;
pub use alp_footprint as footprint;
pub use alp_lattice as lattice;
pub use alp_linalg as linalg;
pub use alp_loopir as loopir;
pub use alp_machine as machine;
pub use alp_partition as partition;
pub use alp_plan as plan;
pub use alp_runtime as runtime;
pub use alp_serve as serve;

use alp_loopir::{IrError, LoopNest, ParseError};
use alp_machine::{
    ArrayLayout, BlockRowMajorHome, HomeMap, MachineConfig, TrafficReport, UniformHome,
};
use alp_partition::{align_arrays, mesh_placement, ArrayPartition, MeshPlacement, RectPartition};
use alp_plan::{LegalityVerdict, PartitionPlan, PlanCache, PlanError, PlanKey};
use std::sync::Arc;

/// Things that can go wrong in the pipeline.
///
/// Every variant has a stable machine-readable code ([`AlpError::code`])
/// and chains to its underlying cause through
/// [`std::error::Error::source`]; wrapped parse/IR errors keep their
/// source spans intact.
#[derive(Debug)]
pub enum AlpError {
    /// DSL parse failure (`ALP0001`).
    Parse(ParseError),
    /// IR validation failure (`ALP0002`).
    Ir(IrError),
    /// The nest is not a legal doall (`ALP0003`): the legality analysis
    /// found races (or other errors).  The report carries the full
    /// diagnostics; [`Compiler::unchecked`] opts out of the gate.
    Illegal(alp_analysis::Report),
    /// The nest cannot be partitioned as requested (`ALP0004`).
    Infeasible(String),
    /// The nest cannot be lowered for native execution (`ALP0005`), or a
    /// run was stopped by the hardened executor: `ALP0007` for a missed
    /// deadline or caller cancellation, `ALP0008` for a contained tile
    /// fault, `ALP0009` for an exceeded memory budget.
    Runtime(alp_runtime::RuntimeError),
    /// A saved partition plan could not be decoded or no longer matches
    /// its embedded source (`ALP0006`).  Structural transform damage
    /// ([`PlanError::Transform`]: non-unimodular matrix, det ≠ ±1,
    /// wrong rank, stale fingerprint) reports `ALP0013` instead.
    Plan(PlanError),
    /// A calibration artifact could not be read, or calibration probing
    /// / fitting failed (`ALP0010`).
    Calibration(alp_calibrate::CalibrateError),
    /// A plan certificate is missing, stale, or disagrees with fresh
    /// recomputation (`ALP0011`).  Structural certificate damage caught
    /// at decode time ([`PlanError::Certificate`]) reports the same
    /// code.
    Certify(alp_certify::CertifyError),
    /// The plan service shed this request under load (`ALP0012`): its
    /// bounded admission queue was beyond the shedding threshold for
    /// this request class.  Retrying later is always safe — nothing was
    /// compiled or executed.
    Overloaded {
        /// Queue depth observed at admission time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
}

impl AlpError {
    /// The stable error code: `ALP0001` parse, `ALP0002` IR, `ALP0003`
    /// illegal doall, `ALP0004` infeasible, `ALP0005` runtime lowering,
    /// `ALP0006` plan artifact, `ALP0007` deadline exceeded / run
    /// cancelled, `ALP0008` contained tile fault, `ALP0009` memory
    /// budget exceeded, `ALP0010` calibration artifact / probe failure,
    /// `ALP0011` certificate missing / stale / tampered, `ALP0012`
    /// request shed by an overloaded plan service, `ALP0013` plan
    /// transform invalid (non-unimodular, wrong rank, or stale
    /// fingerprint).
    /// Codes never change meaning across releases; new variants get new
    /// codes.
    pub fn code(&self) -> &'static str {
        use alp_runtime::RuntimeError as R;
        match self {
            AlpError::Parse(_) => "ALP0001",
            AlpError::Ir(_) => "ALP0002",
            AlpError::Illegal(_) => "ALP0003",
            AlpError::Infeasible(_) => "ALP0004",
            AlpError::Runtime(R::DeadlineExceeded { .. } | R::Cancelled) => "ALP0007",
            AlpError::Runtime(R::TileFailed { .. }) => "ALP0008",
            AlpError::Runtime(R::ResourceExceeded { .. }) => "ALP0009",
            AlpError::Runtime(R::BadPlan(PlanError::Transform(_))) => "ALP0013",
            AlpError::Runtime(_) => "ALP0005",
            // Structural certificate damage caught while decoding the
            // plan file carries the certificate code, not the generic
            // plan-artifact one.
            AlpError::Plan(PlanError::Certificate(_)) => "ALP0011",
            // Likewise, transform damage (non-unimodular `U`, det ≠ ±1,
            // stale fingerprint) has its own stable code.
            AlpError::Plan(PlanError::Transform(_)) => "ALP0013",
            AlpError::Plan(_) => "ALP0006",
            AlpError::Calibration(_) => "ALP0010",
            AlpError::Certify(_) => "ALP0011",
            AlpError::Overloaded { .. } => "ALP0012",
        }
    }
}

impl std::fmt::Display for AlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlpError::Parse(e) => write!(f, "{e}"),
            AlpError::Ir(e) => write!(f, "{e}"),
            AlpError::Illegal(r) => write!(f, "{}", r.render("").trim_end()),
            AlpError::Infeasible(m) => write!(f, "infeasible: {m}"),
            AlpError::Runtime(e) => write!(f, "{e}"),
            AlpError::Plan(e) => write!(f, "{e}"),
            AlpError::Calibration(e) => write!(f, "{e}"),
            AlpError::Certify(e) => write!(f, "{e}"),
            AlpError::Overloaded { depth, capacity } => write!(
                f,
                "server overloaded: admission queue at depth {depth} of {capacity}; \
                 request shed — retry later"
            ),
        }
    }
}

impl std::error::Error for AlpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlpError::Parse(e) => Some(e),
            AlpError::Ir(e) => Some(e),
            AlpError::Runtime(e) => Some(e),
            AlpError::Plan(e) => Some(e),
            AlpError::Calibration(e) => Some(e),
            AlpError::Certify(e) => Some(e),
            // A Report is diagnostics, not an error value; Infeasible
            // and Overloaded are leaf messages.
            AlpError::Illegal(_) | AlpError::Infeasible(_) | AlpError::Overloaded { .. } => None,
        }
    }
}

impl From<ParseError> for AlpError {
    fn from(e: ParseError) -> Self {
        AlpError::Parse(e)
    }
}

impl From<IrError> for AlpError {
    fn from(e: IrError) -> Self {
        AlpError::Ir(e)
    }
}

impl From<alp_runtime::RuntimeError> for AlpError {
    fn from(e: alp_runtime::RuntimeError) -> Self {
        AlpError::Runtime(e)
    }
}

impl From<PlanError> for AlpError {
    fn from(e: PlanError) -> Self {
        match e {
            // Planner infeasibility keeps the established variant (and
            // its `infeasible: …` rendering).
            PlanError::Infeasible(m) => AlpError::Infeasible(m),
            e => AlpError::Plan(e),
        }
    }
}

impl From<alp_certify::CertifyError> for AlpError {
    fn from(e: alp_certify::CertifyError) -> Self {
        match e {
            // An uninterpretable plan is a plan problem, whichever layer
            // noticed it (and Infeasible keeps its own variant/code).
            alp_certify::CertifyError::Plan(p) => AlpError::from(p),
            e => AlpError::Certify(e),
        }
    }
}

impl From<alp_calibrate::CalibrateError> for AlpError {
    fn from(e: alp_calibrate::CalibrateError) -> Self {
        match e {
            // Infeasibility means the same thing whichever objective
            // found it.
            alp_calibrate::CalibrateError::Plan(PlanError::Infeasible(m)) => {
                AlpError::Infeasible(m)
            }
            e => AlpError::Calibration(e),
        }
    }
}

/// The compiler pipeline of §4 (Fig. 10): loop partitioning, data
/// partitioning & alignment, placement, code generation.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Number of processors to partition for.
    pub processors: i128,
    /// Optional 2-D mesh for the placement phase and simulator hop
    /// accounting.
    pub mesh: Option<(usize, usize)>,
    /// Run the doall legality analysis and refuse racy nests (default
    /// on; [`Compiler::unchecked`] turns it off).
    pub check: bool,
    /// Measured-latency coefficients for the hybrid tile-shape
    /// objective ([`Compiler::with_calibration`]); `None` keeps the
    /// pure analytic Theorem-4 objective.
    pub calibration: Option<alp_calibrate::LatencyModel>,
    /// Partition the nest's *transformed* space instead of the original
    /// one ([`Compiler::with_skewed_tiles`]): search the §3.6
    /// parallelepiped candidates, realize the winner as rectangular
    /// tiles in `j = i·U`, and record the unimodular transform in the
    /// plan (schema v4).
    pub skewed: bool,
}

/// Everything the pipeline produces for one loop nest.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The analyzed nest.
    pub nest: LoopNest,
    /// The partitioning decision as a serializable artifact — shared
    /// (via [`Arc`]) with any [`PlanCache`] the compile went through.
    pub plan: Arc<PartitionPlan>,
    /// Number of uniformly intersecting classes found.
    pub class_count: usize,
    /// The chosen rectangular partition.
    pub partition: RectPartition,
    /// Legality analysis findings (empty when compiled with
    /// [`Compiler::unchecked`] or rebuilt from a cached/saved plan —
    /// the plan's [`LegalityVerdict`] records the original verdict);
    /// never contains errors — those abort [`Compiler::compile`] with
    /// [`AlpError::Illegal`].
    pub report: alp_analysis::Report,
    /// Communication-free hyperplane normals, if any exist.
    pub comm_free_normals: Vec<alp_linalg::IVec>,
    /// Aligned data partitions, one per array.
    pub data_partitions: Vec<ArrayPartition>,
    /// Mesh placement of the processor grid (when a mesh is configured).
    pub placement: Option<MeshPlacement>,
    /// SPMD pseudo-code for the chosen partition.
    pub code: String,
}

/// What [`Compiler::execute`] produces: the native run's outcome plus
/// the model-versus-measured footprint comparison.
#[derive(Debug)]
pub struct ExecutionSummary {
    /// The run report and the bitwise check against the sequential
    /// reference.
    pub outcome: alp_runtime::ExecOutcome,
    /// Measured max per-tile distinct-line count versus the cost model's
    /// cumulative-footprint prediction (`None` when touch tracking was
    /// off, the partition has no rectangular tile extents, or the plan
    /// partitions a transformed space — skewed tile extents live in
    /// `j`-coordinates the i-space model does not predict).
    pub model_comparison: Option<alp_runtime::ModelComparison>,
    /// True when the plan carried a certificate whose re-proven coverage
    /// and write-disjointness verdicts unlocked the relaxed (non-atomic)
    /// accumulate store path for this run.
    pub certified_fastpath: bool,
}

impl Compiler {
    /// A compiler for `processors` processors, no mesh.
    pub fn new(processors: i128) -> Self {
        Compiler {
            processors,
            mesh: None,
            check: true,
            calibration: None,
            skewed: false,
        }
    }

    /// Partition with skewed parallelepiped tiles: the plan carries a
    /// unimodular [`Transform`](alp_plan::Transform) and every
    /// downstream layer (runtime, certifier, simulator) works with
    /// rectangular tiles in the transformed space.  With a calibration
    /// attached, the hybrid latency cost ranks the skewed candidates;
    /// otherwise the analytic parallelepiped objective picks.
    pub fn with_skewed_tiles(mut self) -> Self {
        self.skewed = true;
        self
    }

    /// Configure an Alewife-style 2-D mesh.
    pub fn with_mesh(mut self, w: usize, h: usize) -> Self {
        self.mesh = Some((w, h));
        self
    }

    /// Rank candidate tilings with a fitted latency model (the hybrid
    /// `a·tiles + reps·(b·lines + s·span + d·iters) + c·reps` cost)
    /// instead of the pure footprint objective.  Plans produced this
    /// way record `chosen_by: calibrated` and carry the coefficients in
    /// their provenance.
    pub fn with_calibration(mut self, model: alp_calibrate::LatencyModel) -> Self {
        self.calibration = Some(model);
        self
    }

    /// Skip the doall legality analysis: partition the nest even when
    /// distinct iterations race.  Useful for studying the paper's
    /// relaxation examples, whose convergence tolerates races, and for
    /// benchmarking the partitioner in isolation.
    pub fn unchecked(mut self) -> Self {
        self.check = false;
        self
    }

    /// Parse and compile DSL source.
    pub fn compile_src(&self, src: &str) -> Result<CompileResult, AlpError> {
        let nest = alp_loopir::parse(src)?;
        self.compile(nest)
    }

    /// The cache key this compiler would use for a nest: the nest's
    /// structural fingerprint plus every parameter that can change the
    /// plan.
    pub fn plan_key(&self, nest: &LoopNest) -> PlanKey {
        PlanKey {
            fingerprint: alp_plan::fingerprint(nest),
            processors: self.processors,
            mesh: self.mesh,
            checked: self.check,
            calibrated: self.calibration.is_some(),
            skewed: self.skewed,
            // The facade certifies *after* compilation (certify is a
            // plan-to-certificate pass, not a compile parameter), so
            // its cache stores uncertified artifacts.
            certified: false,
        }
    }

    /// Run the analysis and partitioning phases only, producing the
    /// serializable [`PartitionPlan`] artifact (what `alp-cli plan
    /// --emit` writes).
    pub fn plan(&self, nest: &LoopNest) -> Result<PartitionPlan, AlpError> {
        self.plan_with_report(nest).map(|(plan, _)| plan)
    }

    fn plan_with_report(
        &self,
        nest: &LoopNest,
    ) -> Result<(PartitionPlan, alp_analysis::Report), AlpError> {
        let report = if self.check {
            let report = alp_analysis::analyze(nest);
            if report.has_errors() {
                return Err(AlpError::Illegal(report));
            }
            report
        } else {
            alp_analysis::Report::default()
        };
        let verdict = if self.check {
            LegalityVerdict::Checked {
                warnings: report.count(alp_analysis::Severity::Warning),
            }
        } else {
            LegalityVerdict::Unchecked
        };
        if self.skewed {
            return Ok((self.plan_skewed(nest, verdict)?, report));
        }
        let plan = match &self.calibration {
            None => PartitionPlan::build(nest, self.processors, self.mesh, verdict)?,
            Some(latency) => {
                let model = alp_footprint::CostModel::from_nest(nest);
                let partition =
                    alp_calibrate::choose_calibrated(nest, &model, latency, self.processors, 1)?;
                PartitionPlan::build_with_partition(
                    nest,
                    self.processors,
                    self.mesh,
                    verdict,
                    partition,
                    "rect-exhaustive+latency",
                )?
                .with_calibration(latency.clone().into())
            }
        };
        Ok((plan, report))
    }

    /// The skewed planning path: enumerate the §3.6 parallelepiped
    /// candidates, pick one (hybrid latency cost when calibrated,
    /// analytic objective otherwise), and record the winner's unimodular
    /// transform in a schema-v4 plan.
    fn plan_skewed(
        &self,
        nest: &LoopNest,
        verdict: LegalityVerdict,
    ) -> Result<PartitionPlan, AlpError> {
        let cands = alp_plan::skewed_candidates(
            nest,
            self.processors,
            &alp_partition::ParaSearchConfig::default(),
        )?;
        if cands.is_empty() {
            return Err(AlpError::Infeasible(
                "nest has no skewed parallelepiped candidate bases".into(),
            ));
        }
        match &self.calibration {
            // Candidates arrive sorted by the analytic parallelepiped
            // objective; the head is the Theorem-4 winner.
            None => Ok(PartitionPlan::build_skewed(
                nest,
                self.processors,
                self.mesh,
                verdict,
                &cands[0],
                "para-exhaustive",
            )?),
            Some(latency) => {
                let ranked = alp_calibrate::rank_skewed(nest, latency, &cands, 1)?;
                // A degenerate (all-tied) ranking falls back to the
                // analytic order; the provenance string records which
                // model actually decided.
                let degenerate = alp_calibrate::skewed_ranking_is_degenerate(&ranked);
                let best = &cands[ranked[0].index];
                let optimizer = if degenerate {
                    "para-exhaustive"
                } else {
                    "para-exhaustive+latency"
                };
                Ok(PartitionPlan::build_skewed(
                    nest,
                    self.processors,
                    self.mesh,
                    verdict,
                    best,
                    optimizer,
                )?
                .with_calibration(latency.clone().into()))
            }
        }
    }

    /// Run the full pipeline on a nest.
    pub fn compile(&self, nest: LoopNest) -> Result<CompileResult, AlpError> {
        let (plan, report) = self.plan_with_report(&nest)?;
        Ok(self.finish(nest, Arc::new(plan), report))
    }

    /// Run the full pipeline, memoizing the expensive phases (legality
    /// analysis, reference classification, tile-shape search) through a
    /// [`PlanCache`].  A cache hit skips them all and rebuilds only the
    /// cheap backend products (alignment, placement, code); its
    /// diagnostics report is empty, with the original verdict preserved
    /// in the plan's [`LegalityVerdict`].
    pub fn compile_cached(
        &self,
        nest: LoopNest,
        cache: &mut PlanCache,
    ) -> Result<CompileResult, AlpError> {
        let key = self.plan_key(&nest);
        if let Some(plan) = cache.get(&key) {
            return Ok(self.finish(nest, plan, alp_analysis::Report::default()));
        }
        let (plan, report) = self.plan_with_report(&nest)?;
        let plan = Arc::new(plan);
        cache.insert(key, Arc::clone(&plan));
        Ok(self.finish(nest, plan, report))
    }

    /// Rebuild a full [`CompileResult`] from a saved plan without
    /// re-running analysis or the optimizer.  The nest comes from the
    /// plan's embedded source and is verified against the recorded
    /// fingerprint; the plan's own processor count and mesh are used
    /// (a plan is self-contained provenance, not a request).
    pub fn compile_from_plan(&self, plan: &PartitionPlan) -> Result<CompileResult, AlpError> {
        let nest = plan.nest().map_err(AlpError::Plan)?;
        Ok(self.finish(
            nest,
            Arc::new(plan.clone()),
            alp_analysis::Report::default(),
        ))
    }

    /// The cheap backend phases, shared by every compile path: data
    /// alignment, mesh placement, and code emission from an
    /// already-decided plan.
    fn finish(
        &self,
        nest: LoopNest,
        plan: Arc<PartitionPlan>,
        report: alp_analysis::Report,
    ) -> CompileResult {
        let partition = plan.rect_partition();
        // For a transformed plan the grid and extents live in `j`-space,
        // so the rectangular i-space backends (data alignment, SPMD rect
        // codegen) do not apply: alignment is skipped and the emitted
        // code is a note pointing at the native transformed executor.
        let (data_partitions, code) = match &plan.transform {
            None => (
                align_arrays(&nest, &partition.tile_extents),
                alp_codegen::emit_rect_code(&nest, &partition.proc_grid),
            ),
            Some(t) => (Vec::new(), transformed_code_note(t, &partition.proc_grid)),
        };
        let placement = plan
            .mesh
            .map(|mesh| mesh_placement(&partition.proc_grid, mesh));
        CompileResult {
            class_count: plan.class_footprints.len(),
            comm_free_normals: plan.comm_free_normals.clone(),
            nest,
            plan,
            partition,
            report,
            data_partitions,
            placement,
            code,
        }
    }

    fn simulate_plan(&self, result: &CompileResult, home: &dyn HomeMap) -> TrafficReport {
        alp_machine::run_plan(
            &result.plan,
            MachineConfig {
                // Overridden by run_plan to the plan's tile count.
                processors: 0,
                cache: alp_machine::CacheConfig::Infinite,
                mesh: self.mesh,
                line_size: 1,
                directory: alp_machine::DirectoryKind::FullMap,
            },
            home,
        )
        .expect("a plan produced by this compiler round-trips")
    }

    /// Simulate the compiled partition on the machine model with uniform
    /// (monolithic) memory — the §2.2 configuration.
    pub fn simulate_uniform(&self, result: &CompileResult) -> TrafficReport {
        self.simulate_plan(result, &UniformHome)
    }

    /// Simulate with block-distributed memory (no alignment) — the
    /// baseline the alignment experiments improve on.
    pub fn simulate_distributed(&self, result: &CompileResult) -> TrafficReport {
        let layout = ArrayLayout::from_nest(&result.nest);
        let p = usize::try_from(result.plan.tiles()).expect("tile count fits usize");
        let home = BlockRowMajorHome::new(p, layout.total_lines());
        self.simulate_plan(result, &home)
    }

    /// Natively execute the compiled partition on OS threads and check
    /// the parallel result bitwise against a sequential reference run.
    ///
    /// Arrays are materialized as real `f64` buffers seeded from `seed`
    /// (small integer values, so floating-point addition stays exact and
    /// order-independent).  The returned summary carries the executor's
    /// [`RunReport`](alp_runtime::RunReport) — per-thread iteration and
    /// distinct-cache-line counts — plus a comparison of the measured
    /// per-tile footprint against the cost model's cumulative-footprint
    /// prediction for the chosen tile shape.
    ///
    /// A plan carrying a certificate is **re-checked** first
    /// ([`alp_certify::recheck`]): a stale or tampered certificate
    /// aborts with [`AlpError::Certify`] (`ALP0011`), and the re-proven
    /// verdicts — never the stored bits — configure the executor's
    /// relaxed-store fast path and certified retry policy.
    pub fn execute(
        &self,
        result: &CompileResult,
        opts: &alp_runtime::ExecOptions,
        seed: u64,
    ) -> Result<ExecutionSummary, AlpError> {
        let mut exec = alp_runtime::Executor::from_plan(&result.plan)?;
        if result.plan.certificate.is_some() {
            let proven = alp_certify::recheck(&result.plan)?;
            exec.apply_certificate(proven.coverage && proven.write_disjoint, proven.idempotent);
        }
        let certified_fastpath = exec.uses_relaxed_stores();
        let extents = exec.tile_extents().to_vec();
        let outcome = exec.verify(seed, opts)?;
        // A transformed plan's tile extents are `j`-space quantities; the
        // cost model predicts i-space rectangular footprints, so the
        // comparison would be apples to oranges.
        let model_comparison = if result.plan.transform.is_some() {
            None
        } else {
            let model = alp_footprint::CostModel::from_nest(&result.nest);
            outcome.report.compare_with_model(&model, &extents)
        };
        Ok(ExecutionSummary {
            outcome,
            model_comparison,
            certified_fastpath,
        })
    }

    /// Simulate with memory **aligned to the loop partition** (§4's data
    /// partitioning + alignment): array tile `(c₀, c₁, …)` is stored on
    /// the processor executing loop tile `(c₀, c₁, …)`.
    pub fn simulate_aligned(&self, result: &CompileResult) -> TrafficReport {
        let home = aligned_home(&result.nest, &result.partition);
        self.simulate_plan(result, &home)
    }
}

/// The `code` string for a transformed (skewed) plan: rectangular SPMD
/// emission is an i-space backend, so instead of misrepresenting the
/// `j`-space grid as loop bounds, describe the transform and point at
/// the native executor that runs it.
fn transformed_code_note(t: &alp_plan::Transform, grid: &[i128]) -> String {
    let rows: Vec<String> = (0..t.depth())
        .map(|r| {
            let row: Vec<String> = (0..t.depth()).map(|c| t.u()[(r, c)].to_string()).collect();
            format!("//   [ {} ]", row.join(" "))
        })
        .collect();
    format!(
        "// skewed plan: tiles are rectangular in the transformed space j = i*U\n\
         // U =\n{}\n\
         // j-space processor grid: {:?}\n\
         // execute natively with alp-runtime (Executor::from_plan); the\n\
         // inner loop is a unit-stride row in j-space, clipped per-row to\n\
         // the image of the original bounds.\n",
        rows.join("\n"),
        grid,
    )
}

/// Build the aligned data distribution for a rectangular loop partition:
/// each array's tiles get the aspect ratio of the loop tiles *mapped
/// through its reference matrix* and land on the processor that owns the
/// matching loop tile.
///
/// Data dimensions whose subscript mixes several loop indices (skewed
/// columns) are not distributed (grid factor 1) — the analysis cannot
/// align them with a rectangular grid; `alp-partition`'s parallelepiped
/// machinery covers those shapes analytically instead.
pub fn aligned_home(nest: &LoopNest, partition: &RectPartition) -> alp_machine::TiledHome {
    use alp_footprint::classify;
    use alp_machine::TiledArrayHome;

    let layout = ArrayLayout::from_nest(nest);
    let p: i128 = partition.proc_grid.iter().product();
    let mut arrays = Vec::new();
    let mut described = std::collections::HashSet::new();
    for class in classify(nest) {
        if !described.insert(class.array.clone()) {
            continue;
        }
        let Some(id) = layout.array_id(&class.array) else {
            continue;
        };
        let extents = layout.extents(id).to_vec();
        let size: u64 = extents
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(1) as u64)
            .product();
        let base = {
            // First line of this array: evaluate the lowest corner.
            let corner = alp_linalg::IVec(extents.iter().map(|&(lo, _)| lo).collect());
            layout.line(id, &corner)
        };
        let d = class.g.cols();
        let mut chunks = vec![0i128; d];
        let mut owner_dim = vec![None; d];
        let mut used_rows = std::collections::HashSet::new();
        for k in 0..d {
            let col = class.g.col(k);
            let nz: Vec<usize> = (0..col.len()).filter(|&r| col[r] != 0).collect();
            let full = extents[k].1 - extents[k].0 + 1;
            match nz.as_slice() {
                [r] if used_rows.insert(*r) => {
                    let lam = partition.tile_extents[*r];
                    chunks[k] = ((lam + 1) * col[*r].abs()).max(1);
                    owner_dim[k] = Some(*r);
                }
                _ => {
                    chunks[k] = full.max(1);
                }
            }
        }
        arrays.push(TiledArrayHome {
            base,
            size,
            extents,
            chunks,
            owner_dim,
        });
    }
    let _ = p;
    alp_machine::TiledHome::new(partition.proc_grid.clone(), arrays)
}

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::{AlpError, CompileResult, Compiler, ExecutionSummary};
    pub use alp_analysis::{analyze, analyze_program, pair_conflict, Report, Witness};
    pub use alp_calibrate::{
        choose_calibrated, fit, fit_nest, probe_nest, probe_skewed, rank_candidates, rank_skewed,
        ranking_is_degenerate, skewed_grid_features, skewed_ranking_is_degenerate, CalibrateError,
        Calibration, GridFeatures, LatencyModel, ProbeConfig, RankedCandidate, RankedSkewed,
        TileSample,
    };
    pub use alp_certify::{certify, recheck, CertifyError, CertifyReport};
    pub use alp_codegen::{assign_para, assign_rect, assign_slabs, emit_para_code, emit_rect_code};
    pub use alp_footprint::{
        classify, cumulative_footprint_exact, cumulative_footprint_general,
        cumulative_footprint_rect, single_footprint_estimate, single_footprint_exact, CostModel,
        RefClass, Tile,
    };
    pub use alp_lattice::{BoundedLattice, Lattice, Parallelepiped};
    pub use alp_linalg::{IMat, IVec, Rat};
    pub use alp_loopir::{
        parse, parse_program, parse_program_with_params, parse_with_params, AccessKind, ArrayRef,
        LoopNest,
    };
    pub use alp_machine::{
        run_nest, ArrayLayout, BlockRowMajorHome, CacheConfig, DirectoryKind, MachineConfig,
        TrafficReport, UniformHome,
    };
    pub use alp_partition::{
        abraham_hudak_rect, align_arrays, aspect_ratio_with_spread, communication_free_normals,
        is_communication_free, mesh_placement, naive_partition, optimal_aspect_ratio,
        optimize_parallelepiped, partition_program, partition_rect, NaiveShape, ParaSearchConfig,
        ProgramPartition, ProgramStrategy, RectPartition, SpreadKind,
    };
    pub use alp_plan::{
        fingerprint, fingerprint_hex, rect_tiles, skewed_candidates, transformed_tiles, CacheStats,
        Certificate, ChosenBy, IterBox, LatencyCoefficients, LegalityVerdict, PartitionPlan,
        PlanCache, PlanError, PlanKey, SkewedCandidate, Transform, TransformedDomain,
    };
    pub use alp_runtime::{
        syntactic_retry_safe, CancelToken, ExecOptions, ExecOutcome, Executor, ModelComparison,
        RetryPolicy, RunReport, RuntimeError, Schedule,
    };
}
