//! Crash-safety tests for the durable plan store behind `alp-cli serve`.
//!
//! The two halves of the durability contract:
//!
//! * **`kill -9` loses at most the last frame.**  A real daemon process
//!   is SIGKILLed mid-service; the journal then decodes byte-stably,
//!   every surviving certified plan re-proves its certificate via
//!   `recheck`, and a warm restart answers ≥90% of the pre-crash hot
//!   set from cache.
//! * **Corrupt bytes die at their documented layer.**  A committed
//!   corpus of damaged journals (bad checksum, truncated length prefix,
//!   garbage tail) is quarantined by `scan` — each at a distinct
//!   validation layer, never a fatal error — and `store verify` maps
//!   the corruption to exit 11 (`ALP0014`).

use alp::plan::{PlanStore, RecoveryReport};
use alp::serve::{Request, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "alp-recovery-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The same structurally distinct corpus the serve benchmark uses.
fn source(rank: usize) -> String {
    alp::serve::loadgen::corpus_source(rank)
}

/// One certified plan request over an open connection.
fn certified_plan_request(stream: &mut UnixStream, reader: &mut impl BufRead, rank: usize) -> bool {
    let mut req = Request::plan(rank as i128, &source(rank));
    req.plan.processors = 16;
    req.plan.certify = true;
    let mut line = req.encode();
    line.push('\n');
    if stream.write_all(line.as_bytes()).is_err() {
        return false;
    }
    let mut resp = String::new();
    if reader.read_line(&mut resp).is_err() {
        return false;
    }
    alp::serve::Response::decode(&resp).is_ok_and(|r| r.ok)
}

/// Fingerprint + full JSON of every live entry — the byte-stability
/// footprint of one scan.
fn decode_footprint(report: &RecoveryReport) -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = report
        .live
        .iter()
        .map(|e| (e.key.fingerprint, e.plan.to_json_string()))
        .collect();
    v.sort();
    v
}

#[test]
fn sigkill_loses_at_most_one_frame_and_warm_restart_reproves_certificates() {
    let store = tmp_path("kill-store");
    let sock = tmp_path("kill.sock");
    let _ = std::fs::remove_dir_all(&store);

    // Two crash rounds against the same journal: the second round must
    // replay the first round's plans before appending its own.
    const HOT: usize = 8;
    let mut acked: Vec<usize> = Vec::new();
    for round in 0..2 {
        let mut daemon = Command::new(env!("CARGO_BIN_EXE_alp-cli"))
            .args(["serve", "--socket"])
            .arg(&sock)
            .arg("--store")
            .arg(&store)
            .args(["--workers", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        for _ in 0..300 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(sock.exists(), "daemon round {round} never bound the socket");

        let mut stream = UnixStream::connect(&sock).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for i in 0..HOT {
            let rank = round * HOT + i;
            assert!(
                certified_plan_request(&mut stream, &mut reader, rank),
                "round {round}: plan {rank} acked"
            );
            acked.push(rank);
        }
        // The ack means the plan was computed and journaled (appends
        // happen before the response); now die the hard way.
        daemon.kill().expect("SIGKILL");
        daemon.wait().expect("reaped");
        let _ = std::fs::remove_file(&sock);
    }

    // Decode is byte-stable: two independent scans agree exactly.
    let scan1 = PlanStore::scan(&store).expect("scan");
    let scan2 = PlanStore::scan(&store).expect("scan again");
    assert_eq!(
        decode_footprint(&scan1),
        decode_footprint(&scan2),
        "independent scans decode identically"
    );

    // kill -9 loses at most the in-flight tail frame (and every ack
    // above was written with an OS-level write before the response, so
    // in practice nothing is lost).
    assert!(
        scan1.live.len() + 1 >= acked.len(),
        "{} acked, only {} survived — more than one frame lost",
        acked.len(),
        scan1.live.len()
    );

    // Every surviving plan carries its certificate and re-proves it.
    for e in &scan1.live {
        let plan = e.plan.as_ref();
        assert!(
            plan.certificate.is_some(),
            "journaled plan {} lost its certificate",
            e.key.fingerprint
        );
        alp::certify::recheck(plan).unwrap_or_else(|err| {
            panic!(
                "replayed certificate for {} fails recheck: {err}",
                e.key.fingerprint
            )
        });
    }

    // Warm restart: a fresh server over the same journal answers the
    // pre-crash hot set from cache — ≥90% warm hits.
    let (server, report) = Server::try_new(ServeConfig {
        store_dir: Some(store.clone()),
        ..ServeConfig::default()
    })
    .expect("reopen");
    assert!(report.is_some(), "restart produced a recovery report");
    let mut warm = 0usize;
    for &rank in &acked {
        let mut req = Request::plan(rank as i128, &source(rank));
        req.plan.processors = 16;
        req.plan.certify = true;
        let resp = server.handle_now(&req);
        assert!(resp.ok, "warm probe {rank} failed: {resp:?}");
        if resp.cache.as_deref() == Some("hit") {
            warm += 1;
        }
    }
    assert!(
        warm * 10 >= acked.len() * 9,
        "warm hit rate below 90%: {warm}/{}",
        acked.len()
    );

    let _ = std::fs::remove_dir_all(&store);
}

// --------------------------------------------------------------- corpus

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/store")
}

/// Copy one corpus file into a fresh store directory as its only
/// segment and scan it.
fn scan_corpus(name: &str) -> RecoveryReport {
    let dir = tmp_path(&format!("corpus-{name}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::copy(corpus_dir().join(name), dir.join("segment-000001.alpj")).expect("copy corpus");
    let report = PlanStore::scan(&dir).expect("scan never hard-fails on corruption");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[test]
fn corrupted_corpus_files_die_at_their_documented_layers() {
    // (file, validation layer that must reject it)
    let cases = [
        ("bad-checksum.alpj", "checksum mismatch"),
        ("truncated-length.alpj", "truncated frame header"),
        ("garbage-tail.alpj", "implausible frame length"),
    ];
    for (name, layer) in cases {
        let report = scan_corpus(name);
        assert!(report.corrupt(), "{name}: corruption detected");
        assert_eq!(
            report.live.len(),
            1,
            "{name}: the valid leading frame survives"
        );
        let reasons: Vec<&str> = report
            .quarantined
            .iter()
            .map(|q| q.reason.as_str())
            .collect();
        assert!(
            reasons.iter().any(|r| r.contains(layer)),
            "{name}: expected the {layer:?} layer to reject it, got {reasons:?}"
        );
    }
}

#[test]
fn store_verify_maps_corruption_to_exit_11_and_stats_stays_zero() {
    let dir = tmp_path("verify");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::copy(
        corpus_dir().join("bad-checksum.alpj"),
        dir.join("segment-000001.alpj"),
    )
    .expect("copy corpus");

    let verify = Command::new(env!("CARGO_BIN_EXE_alp-cli"))
        .args(["store", "verify"])
        .arg(&dir)
        .output()
        .expect("store verify runs");
    assert_eq!(verify.status.code(), Some(11), "corrupt store exits 11");
    let stderr = String::from_utf8_lossy(&verify.stderr);
    assert!(stderr.contains("ALP0014"), "{stderr}");

    let stats = Command::new(env!("CARGO_BIN_EXE_alp-cli"))
        .args(["store", "stats"])
        .arg(&dir)
        .output()
        .expect("store stats runs");
    assert_eq!(
        stats.status.code(),
        Some(0),
        "stats reports but does not gate"
    );

    // `open` (repair) then `verify` again: clean, exit 0.
    let (_store, _) = PlanStore::open(&dir).expect("repair open");
    let verify2 = Command::new(env!("CARGO_BIN_EXE_alp-cli"))
        .args(["store", "verify"])
        .arg(&dir)
        .output()
        .expect("store verify runs");
    assert_eq!(verify2.status.code(), Some(0), "repaired store verifies");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates `tests/corpus/store/` — run once with `--ignored` when
/// the frame format changes, then commit the bytes.
#[test]
#[ignore = "generator: writes the committed corpus files"]
fn generate_store_corpus() {
    use alp::plan::{LegalityVerdict, PartitionPlan, PlanKey};
    let dir = tmp_path("corpus-gen");
    let (mut store, _) = PlanStore::open(&dir).expect("open");
    for i in 0..2u64 {
        let nest = alp::loopir::parse(&format!(
            "doall (i, 0, {}) {{ A[i] = A[i] + B[i]; }}",
            31 + i
        ))
        .expect("parses");
        let key = PlanKey {
            fingerprint: alp::plan::fingerprint(&nest),
            processors: 8,
            mesh: None,
            checked: true,
            calibrated: false,
            skewed: false,
            certified: false,
        };
        let plan = PartitionPlan::build(&nest, 8, None, LegalityVerdict::Unchecked).expect("plan");
        store.append(&key, &plan).expect("append");
    }
    drop(store);
    let bytes = std::fs::read(dir.join("segment-000001.alpj")).expect("read segment");

    // Find the boundary between frame 1 and frame 2: magic, then
    // [u32 len][u64 checksum][payload].
    let magic = b"ALPSTORE1\n".len();
    let len1 = u32::from_le_bytes(bytes[magic..magic + 4].try_into().unwrap()) as usize;
    let frame1_end = magic + 12 + len1;

    let out = corpus_dir();
    std::fs::create_dir_all(&out).expect("mkdir corpus");

    // 1. Checksum layer: flip one payload byte of frame 2.
    let mut bad = bytes.clone();
    let victim = frame1_end + 12 + 5;
    bad[victim] ^= 0x40;
    std::fs::write(out.join("bad-checksum.alpj"), &bad).expect("write");

    // 2. Framing layer: frame 1 plus two bytes of frame 2's length
    //    prefix — the torn-write shape a power cut leaves.
    std::fs::write(out.join("truncated-length.alpj"), &bytes[..frame1_end + 2]).expect("write");

    // 3. Length-plausibility layer: frame 1 plus 64 bytes of 0xFF —
    //    a length prefix of u32::MAX can never be a real frame.
    let mut garbage = bytes[..frame1_end].to_vec();
    garbage.extend(std::iter::repeat_n(0xFFu8, 64));
    std::fs::write(out.join("garbage-tail.alpj"), &garbage).expect("write");

    let _ = std::fs::remove_dir_all(&dir);
}
