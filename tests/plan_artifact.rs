//! Cross-crate tests for the `PartitionPlan` artifact: golden snapshot
//! stability, round-trip fidelity, decode diagnostics, fingerprint
//! invariance, and plan-cache equivalence.

use alp::prelude::*;
use alp::Compiler;

const GOLDEN_SOURCE: &str = include_str!("golden/example8.alp");
const GOLDEN_PLAN: &str = include_str!("golden/example8.plan.json");
/// The exact bytes a pre-calibration (schema-1) build emitted for the
/// same nest — frozen forever to pin backward compatibility.
const GOLDEN_PLAN_V1: &str = include_str!("golden/example8.v1.plan.json");
/// The exact bytes a pre-certificate (schema-2) build emitted — frozen
/// forever, like the v1 snapshot.
const GOLDEN_PLAN_V2: &str = include_str!("golden/example8.v2.plan.json");
/// A skewed (schema-4) Example-2 plan: the first artifact generation to
/// carry a `transform` block.
const GOLDEN_SOURCE_EX2: &str = include_str!("golden/example2.alp");
const GOLDEN_PLAN_V4: &str = include_str!("golden/example2.v4.plan.json");

fn golden_compiler() -> Compiler {
    Compiler::new(64).with_mesh(8, 8)
}

fn golden_nest() -> LoopNest {
    parse(GOLDEN_SOURCE).expect("golden source parses")
}

#[test]
fn golden_snapshot_is_byte_identical() {
    let plan = golden_compiler().plan(&golden_nest()).expect("plan builds");
    let report = certify(&plan).expect("golden plan certifies");
    let certified = plan.with_certificate(report.certificate);
    assert_eq!(
        certified.to_json_string(),
        GOLDEN_PLAN,
        "plan encoding drifted from tests/golden/example8.plan.json; \
         if the change is intentional, re-emit the snapshot with \
         `alp-cli plan -p 64 -m 8x8 --certify --emit tests/golden/example8.plan.json - \
         < tests/golden/example8.alp`"
    );
}

#[test]
fn golden_certificate_proves_all_four_facts() {
    // The shipped golden carries a certificate; re-checking it must
    // succeed and agree that every fact is proven (the example-8 stencil
    // under a [4,4,4] grid is exactly coverage-, disjointness-, bounds-,
    // and idempotence-clean).
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN).expect("golden plan decodes");
    let cert = recheck(&plan).expect("golden certificate re-verifies");
    assert!(cert.coverage && cert.write_disjoint && cert.in_bounds && cert.idempotent);
}

#[test]
fn decode_then_encode_round_trips_bytes() {
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN).expect("golden plan decodes");
    assert_eq!(plan.to_json_string(), GOLDEN_PLAN);
    assert_eq!(plan.processors, 64);
    assert_eq!(plan.mesh, Some((8, 8)));
    assert_eq!(plan.proc_grid, vec![4, 4, 4]);
}

#[test]
fn version_1_golden_decodes_and_reencodes_byte_stably() {
    // Old plan files keep working after the schema-2 calibration
    // extension: the recorded version is preserved, the new fields
    // default, and re-encoding reproduces the v1 bytes exactly.
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN_V1).expect("v1 plan decodes");
    assert_eq!(plan.schema_version, 1);
    assert_eq!(plan.chosen_by, ChosenBy::Analytic);
    assert_eq!(plan.calibration, None);
    assert_eq!(plan.to_json_string(), GOLDEN_PLAN_V1);
    // And every snapshot generation describes the same decision.
    let v3 = PartitionPlan::from_json_str(GOLDEN_PLAN).expect("v3 plan decodes");
    assert_eq!(plan.proc_grid, v3.proc_grid);
    assert_eq!(plan.fingerprint, v3.fingerprint);
}

#[test]
fn version_2_golden_decodes_and_reencodes_byte_stably() {
    // Pre-certificate plan files keep working after the schema-3
    // certificate extension: no certificate defaults in, the recorded
    // version is preserved, and re-encoding reproduces the v2 bytes.
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN_V2).expect("v2 plan decodes");
    assert_eq!(plan.schema_version, 2);
    assert_eq!(plan.certificate, None);
    assert_eq!(plan.to_json_string(), GOLDEN_PLAN_V2);
    let v3 = PartitionPlan::from_json_str(GOLDEN_PLAN).expect("v3 plan decodes");
    assert_eq!(plan.proc_grid, v3.proc_grid);
    assert_eq!(plan.fingerprint, v3.fingerprint);
}

#[test]
fn version_4_skewed_golden_is_byte_identical_and_recompilable() {
    // The skewed Example-2 snapshot: recompiling with skewed tiles and
    // re-certifying must reproduce the file byte for byte.
    let nest = parse(GOLDEN_SOURCE_EX2).expect("example2 parses");
    let plan = Compiler::new(16)
        .with_skewed_tiles()
        .plan(&nest)
        .expect("skewed plan builds");
    let report = certify(&plan).expect("skewed plan certifies");
    let certified = plan.with_certificate(report.certificate);
    assert_eq!(
        certified.to_json_string(),
        GOLDEN_PLAN_V4,
        "skewed plan encoding drifted from tests/golden/example2.v4.plan.json; \
         if the change is intentional, re-emit the snapshot with \
         `alp-cli plan -p 16 --skewed --certify --emit tests/golden/example2.v4.plan.json - \
         < tests/golden/example2.alp`"
    );
}

#[test]
fn version_4_golden_decodes_round_trips_and_carries_the_transform() {
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN_V4).expect("v4 plan decodes");
    assert_eq!(plan.schema_version, 4);
    assert_eq!(plan.to_json_string(), GOLDEN_PLAN_V4);
    let t = plan.transform.as_ref().expect("v4 golden is skewed");
    assert_eq!(t.fingerprint(), plan.fingerprint);
    assert_eq!((t.u()[(0, 0)], t.u()[(0, 1)]), (1, 0));
    assert_eq!((t.u()[(1, 0)], t.u()[(1, 1)]), (1, -1));
    // The certificate re-proves in transformed coordinates.
    let cert = recheck(&plan).expect("v4 certificate re-verifies");
    assert!(cert.coverage && cert.write_disjoint && cert.in_bounds && cert.idempotent);
}

#[test]
fn calibrated_plan_round_trips_with_provenance() {
    let latency = LatencyModel {
        per_tile_ns: Rat::new(1507, 1000),
        per_line_ns: Rat::new(21, 1000),
        per_span_line_ns: Rat::new(3, 1000),
        per_iter_ns: Rat::new(911, 1000),
        per_rep_ns: Rat::int(42_000),
        samples: 36,
    };
    let plan = golden_compiler()
        .with_calibration(latency.clone())
        .plan(&golden_nest())
        .expect("calibrated plan builds");
    assert_eq!(plan.chosen_by, ChosenBy::Calibrated);
    assert_eq!(plan.optimizer, "rect-exhaustive+latency");
    assert_eq!(plan.calibration, Some(latency.into()));
    let text = plan.to_json_string();
    assert!(text.contains("\"chosen_by\": \"calibrated\""), "{text}");
    assert!(text.contains("\"calibration\""), "{text}");
    let back = PartitionPlan::from_json_str(&text).expect("calibrated plan decodes");
    assert_eq!(back, plan);
    assert_eq!(back.to_json_string(), text);
}

#[test]
fn unknown_version_fails_with_diagnostic() {
    let bumped = GOLDEN_PLAN.replace("\"alp-plan\": 3", "\"alp-plan\": 7");
    let err = PartitionPlan::from_json_str(&bumped).expect_err("must reject");
    let msg = err.to_string();
    assert!(msg.contains("version 7 is not supported"), "{msg}");
    assert!(msg.contains("re-emit"), "{msg}");
}

#[test]
fn truncated_input_fails_with_diagnostic() {
    // Every prefix must fail cleanly — no panic, no partial decode.
    for cut in 0..GOLDEN_PLAN.len() - 1 {
        let err =
            PartitionPlan::from_json_str(&GOLDEN_PLAN[..cut]).expect_err("prefix must not decode");
        assert!(!err.to_string().is_empty());
    }
    let msg = PartitionPlan::from_json_str(&GOLDEN_PLAN[..GOLDEN_PLAN.len() / 2])
        .expect_err("half a document must not decode")
        .to_string();
    assert!(msg.contains("truncated"), "{msg}");
}

#[test]
fn fingerprint_is_invariant_under_index_renaming() {
    let renamed = GOLDEN_SOURCE
        .replace('i', "outer")
        .replace('j', "mid")
        .replace('k', "inner");
    let nest = parse(&renamed).expect("renamed source parses");
    assert_eq!(fingerprint(&nest), fingerprint(&golden_nest()));

    let plan = golden_compiler().plan(&nest).expect("plan builds");
    assert_eq!(plan.fingerprint, fingerprint_hex(&golden_nest()));
}

#[test]
fn tampered_source_is_rejected_on_load() {
    let plan = PartitionPlan::from_json_str(GOLDEN_PLAN).expect("golden plan decodes");
    let tampered = GOLDEN_PLAN.replace("doall (k, 1, 64)", "doall (k, 1, 32)");
    assert_ne!(tampered, GOLDEN_PLAN, "replacement must hit");
    let err = PartitionPlan::from_json_str(&tampered)
        .expect("tampered plan still parses")
        .nest()
        .expect_err("fingerprint check must fail");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    assert!(plan.nest().is_ok());
}

#[test]
fn malformed_corpus_is_rejected_with_stable_codes() {
    // Every file in tests/corpus/ is a deliberately broken artifact
    // named `<ALP code>__<defect>.<kind>.json`: `.plan.json` decodes as
    // a PartitionPlan, `.calib.json` as a Calibration.  Decode, the
    // post-decode fingerprint check in `nest()`, or the certificate
    // re-check must reject each with exactly the code in its filename —
    // never a panic or a silent partial decode.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir exists") {
        let path = entry.expect("corpus entry").path();
        // Subdirectories hold non-artifact corpora (e.g. store/ for the
        // journal corruption suite in tests/store_recovery.rs).
        if path.is_dir() {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let expected = name.split("__").next().expect("code prefix");
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let err: AlpError = if name.ends_with(".calib.json") {
            Calibration::from_json_str(&text)
                .expect_err(&format!("{name} must be rejected"))
                .into()
        } else {
            match PartitionPlan::from_json_str(&text).and_then(|p| p.nest().map(|_| p)) {
                Err(e) => e.into(),
                // Semantic certificate tampering (a flipped verdict bit)
                // survives decode by design; the re-checker catches it.
                Ok(plan) => recheck(&plan)
                    .map(|_| ())
                    .expect_err(&format!("{name} must be rejected"))
                    .into(),
            }
        };
        assert!(!err.to_string().is_empty(), "{name}: diagnostic is empty");
        assert_eq!(err.code(), expected, "{name}");
        checked += 1;
    }
    assert_eq!(checked, 16, "expected all corpus files to be exercised");
}

#[test]
fn warm_cache_compile_equals_cold_compile() {
    let compiler = golden_compiler();
    let mut cache = PlanCache::new(8);

    let cold = compiler
        .compile_cached(golden_nest(), &mut cache)
        .expect("cold compile");
    let warm = compiler
        .compile_cached(golden_nest(), &mut cache)
        .expect("warm compile");

    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cold.plan.to_json_string(), warm.plan.to_json_string());
    assert_eq!(cold.code.clone(), warm.code.clone());
    assert_eq!(cold.partition.proc_grid, warm.partition.proc_grid);

    // The cached plan and a from-plan compile agree with a fresh one.
    let fresh = compiler.compile(golden_nest()).expect("fresh compile");
    assert_eq!(fresh.plan.to_json_string(), warm.plan.to_json_string());
    let replayed = compiler
        .compile_from_plan(&warm.plan)
        .expect("replay from plan");
    assert_eq!(replayed.code.clone(), fresh.code.clone());
}
