//! End-to-end legality gating: the compiler refuses racy nests, accepts
//! fine-grain-synchronized reductions, and the exact dependence tester
//! agrees with brute-force enumeration on compact nests.

use alp::analysis::{
    analyze, brute_force_conflict, pair_conflict, witness_is_valid, Rule, Severity,
};
use alp::prelude::*;

#[test]
fn compiler_refuses_racy_nest() {
    let err = Compiler::new(4)
        .compile_src("doall (i, 0, 15) { A[i] = A[i+1]; }")
        .unwrap_err();
    match err {
        AlpError::Illegal(report) => {
            assert!(report.has_errors());
            assert!(report.diagnostics.iter().any(|d| d.rule == Rule::DoallRace));
        }
        other => panic!("expected Illegal, got {other:?}"),
    }
}

#[test]
fn unchecked_compiles_racy_nest() {
    let result = Compiler::new(4)
        .unchecked()
        .compile_src("doall (i, 0, 15) { A[i] = A[i+1]; }")
        .unwrap();
    assert_eq!(result.partition.tiles(), 4);
    assert!(result.report.diagnostics.is_empty());
}

#[test]
fn compiler_accepts_accumulate_matmul() {
    // Fig. 11: the C-races flow only through fine-grain synchronized
    // accumulates, which Appendix A admits.
    let result = Compiler::new(8)
        .compile_src(
            "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
    assert!(!result.report.has_errors());
}

#[test]
fn compiler_accepts_clean_stencil_reads() {
    // Example 8's shape: writes are identity, reads hit a different
    // array — no write/write or write/read conflicts.
    let result = Compiler::new(16)
        .compile_src(
            "doall (i, 1, 16) { doall (j, 1, 16) {
               A[i,j] = B[i-1,j] + B[i,j+1];
             } }",
        )
        .unwrap();
    assert!(!result.report.has_errors());
    assert!(!result.report.has_warnings());
}

#[test]
fn plain_reduction_is_refused_with_suggestion() {
    let err = Compiler::new(4)
        .compile_src("doall (i, 0, 3) { doall (k, 0, 3) { C[i] = C[i] + A[i,k]; } }")
        .unwrap_err();
    let AlpError::Illegal(report) = err else {
        panic!("expected Illegal")
    };
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::DoallReduction));
    let text = report.render("");
    assert!(text.contains("+="), "{text}");
}

#[test]
fn witness_pair_is_concrete_and_valid() {
    let nest = parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[j,i]; } }").unwrap();
    let refs = nest.all_refs();
    let w = pair_conflict(&nest, refs[0], refs[1]).expect("transpose races");
    assert!(witness_is_valid(&nest, refs[0], refs[1], &w));
    assert_eq!(refs[0].eval(&w.iter1), refs[1].eval(&w.iter2));
}

#[test]
fn exact_tester_matches_brute_force_on_compact_nests() {
    // Trip counts ≤ 6 keep the oracle exhaustive.
    let cases = [
        "doall (i, 0, 5) { A[i] = A[i+1]; }",
        "doall (i, 0, 5) { A[2*i] = A[2*i+1]; }",
        "doall (i, 0, 5) { A[i] = A[5-i]; }",
        "doall (i, 0, 5) { A[i] = A[i+9]; }",
        "doall (i, 0, 5) { doall (j, 0, 5) { A[i,j] = A[j,i] + B[i+j, i-j]; } }",
        "doall (i, 0, 4) { doall (j, 0, 4) { A[i+j] = B[i]; } }",
        "doall (i, 1, 4) { doall (j, 1, 4) { A[2*i, j] = A[i, j+1]; } }",
    ];
    for src in cases {
        let nest = parse(src).unwrap();
        let refs = nest.all_refs();
        for r1 in &refs {
            for r2 in &refs {
                if r1.array != r2.array {
                    continue;
                }
                let exact = pair_conflict(&nest, r1, r2);
                let brute = brute_force_conflict(&nest, r1, r2);
                assert_eq!(exact.is_some(), brute.is_some(), "{src}");
                if let Some(w) = exact {
                    assert!(witness_is_valid(&nest, r1, r2, &w), "{src}");
                }
            }
        }
    }
}

#[test]
fn lint_only_findings_do_not_block_compilation() {
    // Rank-deficient read reference: warning, not error.
    let result = Compiler::new(4)
        .compile_src("doall (i, 0, 7) { doall (j, 0, 7) { B[i,j] = A[i, 2*i, i+j]; } }")
        .unwrap();
    assert!(result.report.has_warnings());
    assert!(!result.report.has_errors());
    assert_eq!(result.report.count(Severity::Warning), 1);
}

#[test]
fn analyze_renders_caret_against_source() {
    let src = "doall (i, 0, 9) { A[i] = A[i+1]; }";
    let text = analyze(&parse(src).unwrap()).render(src);
    assert!(text.contains("error[doall-race]"), "{text}");
    assert!(text.contains("A[i] = A[i+1];"), "{text}");
    assert!(text.contains("^^^^"), "{text}");
}
