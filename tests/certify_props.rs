//! Differential property tests for the plan certifier.
//!
//! The certifier proves its four facts symbolically — Fourier–Motzkin
//! feasibility and Diophantine lattice solves — so on nests small
//! enough to enumerate, every verdict can be checked against the ground
//! truth of brute-force enumeration: walk all iterations, materialize
//! the written/read element sets, and compare.  Any disagreement in
//! either direction (a refuted fact that enumeration proves, or a
//! proven fact that enumeration refutes) is a certifier bug.
//!
//! Also here: the executor's legacy syntactic retry rule must be a
//! *sound under-approximation* of the certified idempotence fact —
//! whenever the array-name-granularity rule accepts a nest, the
//! element-precise dataflow proof must accept it too.

use alp::prelude::*;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Render `Σ c_k·name_k + k` as parseable subscript source (the parser
/// accepts signed terms, so `0 - 2*i + 3` round-trips any small form).
fn affine_src(coeffs: &[i128], names: &[&str], k: i128) -> String {
    let mut s = String::from("0");
    for (c, n) in coeffs.iter().zip(names) {
        if *c != 0 {
            let sign = if *c < 0 { '-' } else { '+' };
            s.push_str(&format!(" {sign} {}*{n}", c.abs()));
        }
    }
    if k != 0 {
        let sign = if k < 0 { '-' } else { '+' };
        s.push_str(&format!(" {sign} {}", k.abs()));
    }
    s
}

/// A random small nest (as source text) plus a processor grid for it.
#[derive(Debug, Clone)]
struct Case {
    src: String,
    grid: Vec<i128>,
}

/// Depth-1/2 nests with tiny extents, three body shapes (disjoint
/// arrays, a same-array read, two writes to one array), coefficients
/// in `[-2, 2]`, offsets in `[-3, 3]`, grid factors in `[1, 3]` —
/// small enough that every fact is enumerable, varied enough to hit
/// proven and refuted outcomes of each fact.
fn cases() -> impl Strategy<Value = Case> {
    (1usize..=2).prop_flat_map(|depth| {
        let sub = || (pvec(-2i128..=2, depth), -3i128..=3);
        (
            pvec((-2i128..=2, 2i128..=4), depth),
            pvec(1i128..=3, depth),
            (0usize..=2, sub(), sub(), sub()),
        )
            .prop_map(move |(loops, grid, (kind, w, r1, r2))| {
                let names: &[&str] = &["i", "j"][..depth];
                let open: String = loops
                    .iter()
                    .enumerate()
                    .map(|(d, &(lo, n))| format!("doall ({}, {lo}, {}) {{ ", names[d], lo + n - 1))
                    .collect();
                let ws = affine_src(&w.0, names, w.1);
                let r1s = affine_src(&r1.0, names, r1.1);
                let r2s = affine_src(&r2.0, names, r2.1);
                let body = match kind {
                    0 => format!("A[{ws}] = B[{r1s}] + B[{r2s}];"),
                    1 => format!("A[{ws}] = A[{r1s}] + B[{r2s}];"),
                    _ => format!("A[{ws}] = B[{r1s}]; A[{r2s}] = B[{ws}];"),
                };
                Case {
                    src: format!("{open}{body} {}", "} ".repeat(depth)),
                    grid,
                }
            })
    })
}

fn plan_for(case: &Case) -> (LoopNest, PartitionPlan, Vec<IterBox>) {
    let nest = parse(&case.src).expect("generated source parses");
    let (tiles, chunks) = rect_tiles(&nest, &case.grid).expect("grid matches depth");
    let partition = RectPartition {
        tile_extents: chunks.iter().map(|c| c - 1).collect(),
        proc_grid: case.grid.clone(),
        cost: Rat::int(0),
    };
    let plan = PartitionPlan::build_with_partition(
        &nest,
        case.grid.iter().product(),
        None,
        LegalityVerdict::Unchecked,
        partition,
        "prop-fixed-grid",
    )
    .expect("plan builds");
    (nest, plan, tiles)
}

/// Ground truth by enumeration: (coverage, write_disjoint, in_bounds,
/// idempotent), each computed from explicit point/element sets.
fn brute_force(nest: &LoopNest, tiles: &[IterBox]) -> (bool, bool, bool, bool) {
    let space: HashSet<Vec<i128>> = nest.iteration_points().into_iter().map(|p| p.0).collect();

    // Coverage: the multiset of tile points equals the space exactly.
    let mut seen: HashMap<Vec<i128>, usize> = HashMap::new();
    let mut coverage = true;
    for t in tiles {
        t.for_each_point(|p| {
            let p: Vec<i128> = p.iter().map(|&x| i128::from(x)).collect();
            if !space.contains(&p) {
                coverage = false;
            }
            *seen.entry(p).or_insert(0) += 1;
        });
    }
    if seen.len() != space.len() || seen.values().any(|&c| c != 1) {
        coverage = false;
    }

    // Write disjointness: per tile, the set of written elements.
    let tile_writes: Vec<HashSet<(String, Vec<i128>)>> = tiles
        .iter()
        .map(|t| {
            let mut s = HashSet::new();
            t.for_each_point(|p| {
                let iv = IVec(p.iter().map(|&x| i128::from(x)).collect());
                for st in &nest.body {
                    s.insert((st.lhs.array.clone(), st.lhs.eval(&iv).0));
                }
            });
            s
        })
        .collect();
    let mut write_disjoint = true;
    for a in 0..tiles.len() {
        for b in (a + 1)..tiles.len() {
            if !tile_writes[a].is_disjoint(&tile_writes[b]) {
                write_disjoint = false;
            }
        }
    }

    // In-bounds and idempotence over the full iteration box.
    let extents = nest.array_extents();
    let mut in_bounds = true;
    let mut reads: HashSet<(String, Vec<i128>)> = HashSet::new();
    let mut writes: HashSet<(String, Vec<i128>)> = HashSet::new();
    for p in nest.iteration_points() {
        for r in nest.all_refs() {
            let e = r.eval(&p).0;
            if let Some(ext) = extents.get(&r.array) {
                for (d, &v) in e.iter().enumerate() {
                    if v < ext[d].0 || v > ext[d].1 {
                        in_bounds = false;
                    }
                }
            }
        }
        for st in &nest.body {
            writes.insert((st.lhs.array.clone(), st.lhs.eval(&p).0));
            for r in &st.rhs {
                reads.insert((r.array.clone(), r.eval(&p).0));
            }
        }
    }
    let idempotent = reads.is_disjoint(&writes);

    (coverage, write_disjoint, in_bounds, idempotent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn certifier_verdicts_match_brute_force_enumeration(case in cases()) {
        let (nest, plan, tiles) = plan_for(&case);
        let report = certify(&plan).expect("well-formed plan certifies");
        let cert = &report.certificate;
        let (coverage, write_disjoint, in_bounds, idempotent) = brute_force(&nest, &tiles);
        prop_assert_eq!(
            (cert.coverage, cert.write_disjoint, cert.in_bounds, cert.idempotent),
            (coverage, write_disjoint, in_bounds, idempotent),
            "certifier disagrees with enumeration on `{}` grid {:?}: {:?}",
            case.src, case.grid, report.notes
        );
    }

    #[test]
    fn certified_plans_survive_their_own_recheck(case in cases()) {
        // certify → embed → recheck is the round trip `plan --certify`
        // followed by `run --require-cert` takes; it must always agree
        // with itself, whatever the verdicts are.
        let (_, plan, _) = plan_for(&case);
        let report = certify(&plan).expect("well-formed plan certifies");
        let certified = plan.with_certificate(report.certificate.clone());
        let proven = recheck(&certified).expect("fresh certificate re-verifies");
        prop_assert_eq!(proven, report.certificate);
    }

    #[test]
    fn syntactic_retry_rule_under_approximates_certified_idempotence(case in cases()) {
        // The legacy array-name-granularity rule may refuse nests the
        // element-precise proof accepts (e.g. `A[i] = A[i+32]`), but it
        // must never accept a nest the dataflow proof refutes.
        let (nest, plan, _) = plan_for(&case);
        if syntactic_retry_safe(&nest) {
            let report = certify(&plan).expect("well-formed plan certifies");
            prop_assert!(
                report.certificate.idempotent,
                "syntactic rule accepted `{}` but the dataflow proof refutes it: {:?}",
                case.src, report.notes
            );
        }
    }
}
