//! Integration tests: every numbered example of the paper, end to end
//! through the public facade.

use alp::prelude::*;

/// Example 1: `(G, ā)` extraction and zero-column elimination.
#[test]
fn example1_reference_model() {
    let nest = parse(
        "doall (i1, 0, 9) { doall (i2, 0, 9) { doall (i3, 0, 9) {
           A[i3+2, 5, i2-1, 4] = A[i3+2, 5, i2-1, 4];
         } } }",
    )
    .unwrap();
    let r = &nest.body[0].lhs;
    assert_eq!(
        r.g_matrix(),
        IMat::from_rows(&[&[0, 0, 0, 0], &[0, 0, 1, 0], &[1, 0, 0, 0]])
    );
    assert_eq!(r.offset(), IVec::new(&[2, 5, -1, 4]));
    let (reduced, kept) = r.drop_constant_subscripts();
    assert_eq!(kept, vec![0, 2]);
    assert_eq!(reduced.dim(), 2);
}

/// Example 2: partition a (strips) gives 104 B-misses per tile and zero
/// coherence traffic; partition b (blocks) gives 140; the optimizer and
/// the communication-free analysis both pick a.
#[test]
fn example2_end_to_end() {
    let src = "doall (i, 101, 200) { doall (j, 1, 100) {
                 A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
               } }";
    let nest = parse(src).unwrap();

    // Simulated per-tile misses match the paper's counts.
    for (grid, expected_b_misses) in [(vec![1i128, 100], 104u64), (vec![10, 10], 140)] {
        let assignment = assign_rect(&nest, &grid);
        let report = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(100),
            &UniformHome,
        );
        assert!(report.check_conservation());
        let per_tile = report.total_cold_misses() / 100;
        assert_eq!(per_tile - 100, expected_b_misses, "grid {grid:?}");
        assert_eq!(report.total_invalidations(), 0);
    }

    // Pipeline picks the strip partition.
    let result = Compiler::new(100).compile(nest).unwrap();
    assert_eq!(result.partition.proc_grid, vec![1, 100]);
    assert_eq!(result.comm_free_normals, vec![IVec::new(&[0, 1])]);
}

/// Example 3: the parallelogram beats every rectangle, in the model and
/// in simulation.
#[test]
fn example3_parallelogram() {
    let src = "doall (i, 1, 64) { doall (j, 1, 64) {
                 A[i,j] = B[i,j] + B[i+1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let p = 16i128;
    let rect = partition_rect(&nest, p);
    let para = optimize_parallelepiped(&nest, p, &ParaSearchConfig::default());
    assert!(
        Rat::int(para.cost) < rect.cost,
        "para {} rect {}",
        para.cost,
        rect.cost
    );

    // Simulated: slabs along the communication-free normal beat the
    // rectangle.
    let normals = communication_free_normals(&nest);
    assert_eq!(normals.len(), 1);
    let rect_r = run_nest(
        &nest,
        &assign_rect(&nest, &rect.proc_grid),
        MachineConfig::uniform(p as usize),
        &UniformHome,
    );
    let slab_r = run_nest(
        &nest,
        &assign_slabs(&nest, &normals[0], p),
        MachineConfig::uniform(p as usize),
        &UniformHome,
    );
    assert!(slab_r.total_cold_misses() < rect_r.total_cold_misses());
}

/// Examples 4 & 6: footprint geometry of the skewed tile.
#[test]
fn example6_footprint() {
    let nest = parse(
        "doall (i, 0, 99) { doall (j, 0, 99) {
           A[i,j] = B[i+j,j] + B[i+j+1,j+2];
         } }",
    )
    .unwrap();
    let classes = classify(&nest);
    let b = classes.iter().find(|c| c.array == "B").unwrap();
    assert_eq!(b.g, IMat::from_rows(&[&[1, 0], &[1, 1]]));
    assert_eq!(b.spread(), IVec::new(&[1, 2]));

    // L = [[L1, L1], [L2, 0]] with L1 = 5, L2 = 4:
    // |det LG| = L1*L2 = 20; exact closed count = L1L2 + L1 + L2 + 1.
    let tile = Tile::general(IMat::from_rows(&[&[5, 5], &[4, 0]]));
    assert_eq!(single_footprint_estimate(&tile, &b.g), 20);
    assert_eq!(single_footprint_exact(&tile, &b.g), 20 + 5 + 4 + 1);
}

/// Example 7: dependent columns reduce to a unimodular G'.
#[test]
fn example7_column_reduction() {
    let nest =
        parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i, 2*i, i+j] = A[i, 2*i, i+j]; } }").unwrap();
    let r = &nest.body[0].lhs;
    let g = r.g_matrix();
    assert_eq!(g, IMat::from_rows(&[&[1, 2, 1], &[0, 0, 1]]));
    let keep = alp::linalg::max_independent_columns(&g);
    let g_red = g.select_columns(&keep);
    assert!(g_red.is_unimodular());
    // Footprint = tile size (Theorem 5: rows of G independent).
    let tile = Tile::rect(&[4, 6]);
    assert_eq!(single_footprint_exact(&tile, &g), 5 * 7);
}

/// Example 8: aspect ratio 2:3:4, agreement with Abraham & Hudak, and
/// the Doseq coherence-traffic variant (Fig. 9).
#[test]
fn example8_end_to_end() {
    let src = "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
                 A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
               } } }";
    let nest = parse(src).unwrap();
    let model = CostModel::from_nest(&nest);
    assert_eq!(
        optimal_aspect_ratio(&model).unwrap(),
        vec![Rat::int(2), Rat::int(3), Rat::int(4)]
    );

    // Single-array variant for A&H agreement.
    let ah_nest = parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = A[i-1,j,k+1] + A[i,j+1,k] + A[i+1,j-2,k-3];
         } } }",
    )
    .unwrap();
    let ours = partition_rect(&ah_nest, 64);
    let ah = abraham_hudak_rect(&ah_nest, 64).unwrap();
    assert_eq!(ours.proc_grid, ah.proc_grid);

    // Fig. 9: wrapped in doseq, repeated sweeps expose coherence misses.
    let seq = parse(
        "doseq (t, 1, 3) {
           doall (i, 1, 16) { doall (j, 1, 16) { doall (k, 1, 16) {
             A[i,j,k] = A[i-1,j,k+1] + A[i,j+1,k] + A[i+1,j-2,k-3];
           } } }
         }",
    )
    .unwrap();
    let part = partition_rect(&seq, 8);
    let r = run_nest(
        &seq,
        &assign_rect(&seq, &part.proc_grid),
        MachineConfig::uniform(8),
        &UniformHome,
    );
    assert!(
        r.total_coherence_misses() > 0,
        "repeated sweeps share tile halos"
    );
    assert!(r.check_conservation());
}

/// Example 9: both classes decompose; optimal rectangle.
#[test]
fn example9_model() {
    let src = "doall (i, 1, 100) { doall (j, 1, 100) {
                 A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let classes = classify(&nest);
    assert_eq!(classes.len(), 3);

    // Exact enumeration adjudicates the memo's printed objective (see
    // EXPERIMENTS.md): spread terms are 4L11 + 4L22, so equal-side tiles
    // are optimal among rectangles of fixed area.
    let model = CostModel::from_nest(&nest);
    let square = model.cost_rect(&[9, 9]);
    let tall = model.cost_rect(&[4, 19]);
    let wide = model.cost_rect(&[19, 4]);
    assert!(square < tall && square < wide);

    // Cross-check with exact footprint enumeration.
    let exact = |lam: &[i128]| -> usize {
        let tile = Tile::rect(lam);
        classes
            .iter()
            .map(|c| cumulative_footprint_exact(&tile, c))
            .sum()
    };
    assert!(exact(&[9, 9]) < exact(&[4, 19]));
    assert!(exact(&[9, 9]) < exact(&[19, 4]));
}

/// Example 10: the G matrices beyond previous algorithms.
#[test]
fn example10_end_to_end() {
    let src = "doall (i, 1, 64) { doall (j, 1, 64) {
                 A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                        + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
               } }";
    let nest = parse(src).unwrap();
    let classes = classify(&nest);
    assert_eq!(classes.len(), 4, "A, B, C-pair, C-lone");

    // B: nonsingular but not unimodular G.
    let b = classes.iter().find(|c| c.array == "B").unwrap();
    assert!(b.g.is_nonsingular());
    assert!(!b.g.is_unimodular());

    // Cumulative footprints match the paper's closed forms.
    let (li, lj) = (6i128, 4i128);
    assert_eq!(
        cumulative_footprint_rect(&[li, lj], b),
        Rat::int((li + 1) * (lj + 1) + 3 * (lj + 1) + (li + 1))
    );

    // Optimal ratio 3:2 (λ_i : λ_j), i.e. traffic 3(L_j+1) + 2(L_i+1)
    // minimized — the paper's "2L_i = 3L_j + 1" optimality condition.
    let model = CostModel::from_nest(&nest);
    assert_eq!(
        optimal_aspect_ratio(&model).unwrap(),
        vec![Rat::int(3), Rat::int(2)]
    );

    // No communication-free partition exists (the case [7] cannot
    // handle), yet the optimizer still returns the best rectangle.
    assert!(!is_communication_free(&nest));
    let part = partition_rect(&nest, 16);
    assert_eq!(part.tiles(), 16);
    // Continuous optimum is 3:2; with power-of-two grids the discrete
    // choice is λ ratios {1, 4, …}, and 1 (square) beats 4.  Never worse
    // in the j direction than in i.
    assert!(part.tile_extents[0] >= part.tile_extents[1]);
    assert_eq!(part.proc_grid, vec![4, 4]);
    // With a divisor structure that can express 3:2 (P = 24 on 48x48),
    // the optimizer picks the skewed grid.
    let nest2 = parse(
        "doall (i, 1, 48) { doall (j, 1, 48) {
           A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                  + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
         } }",
    )
    .unwrap();
    let part2 = partition_rect(&nest2, 24);
    // grid (4, 6): tiles 12x8 — exactly 3:2.
    assert_eq!(part2.proc_grid, vec![4, 6]);
    assert_eq!(part2.tile_extents, vec![11, 7]);
}

/// Fig. 11 / Appendix A: accumulates are write-like.
#[test]
fn fig11_accumulate_semantics() {
    let nest = parse(
        "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
           l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
         } } }",
    )
    .unwrap();
    assert_eq!(nest.body[0].lhs.kind, AccessKind::Accumulate);
    assert!(nest.body[0].lhs.kind.is_write_like());

    // Splitting k shares C tiles: invalidations appear.
    let r = run_nest(
        &nest,
        &assign_rect(&nest, &[1, 1, 8]),
        MachineConfig::uniform(8),
        &UniformHome,
    );
    assert!(r.total_invalidations() > 0);

    // Splitting (i, j) keeps C private: no invalidations.
    let r = run_nest(
        &nest,
        &assign_rect(&nest, &[4, 2, 1]),
        MachineConfig::uniform(8),
        &UniformHome,
    );
    assert_eq!(r.total_invalidations(), 0);
}

/// The full pipeline runs on every paper example without error.
#[test]
fn pipeline_smoke_all_examples() {
    let sources = [
        "doall (i, 101, 200) { doall (j, 1, 100) { A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]; } }",
        "doall (i, 1, 64) { doall (j, 1, 64) { A[i,j] = B[i,j] + B[i+1,j+3]; } }",
        "doall (i, 0, 99) { doall (j, 0, 99) { A[i,j] = B[i+j,j] + B[i+j+1,j+2]; } }",
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]; } } }",
        "doall (i, 1, 64) { doall (j, 1, 64) {
           A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3]; } }",
        "doall (i, 1, 64) { doall (j, 1, 64) {
           A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                  + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1]; } }",
        "doall (i, 1, 16) { doall (j, 1, 16) { doall (k, 1, 16) {
           l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j]; } } }",
    ];
    for src in sources {
        let compiler = Compiler::new(16).with_mesh(4, 4);
        let result = compiler
            .compile_src(src)
            .unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(result.partition.tiles(), 16, "{src}");
        let report = compiler.simulate_uniform(&result);
        assert!(report.check_conservation(), "{src}");
        assert!(report.total_accesses() > 0, "{src}");
        assert!(!result.code.is_empty());
    }
}
