//! End-to-end: compile Example 8, execute the chosen partition natively
//! on OS threads, and check (a) the parallel result is bitwise equal to
//! the sequential reference and (b) the measured worst-tile footprint is
//! within 2x of the cost model's cumulative-footprint prediction.

use alp::prelude::*;

fn example8() -> LoopNest {
    parse(
        "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
           A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
         } } }",
    )
    .unwrap()
}

#[test]
fn example8_executes_and_matches_model() {
    let compiler = Compiler::new(24);
    let result = compiler.compile(example8()).unwrap();
    // 24 processors factor into the paper's 2:3:4 tile proportions.
    let mut sorted = result.partition.proc_grid.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![2, 3, 4]);

    let opts = ExecOptions {
        threads: 4,
        schedule: Schedule::Static,
        line_size: 1,
        track_touches: true,
        ..ExecOptions::default()
    };
    let summary = compiler.execute(&result, &opts, 0xE8).unwrap();
    assert!(
        summary.outcome.matches_reference,
        "parallel result differs from sequential reference"
    );
    assert_eq!(summary.outcome.report.threads, 4);
    assert_eq!(summary.outcome.report.tiles, 24);
    assert_eq!(summary.outcome.report.total_iterations, 64 * 64 * 64);

    let cmp = summary
        .model_comparison
        .expect("touch tracking was on, so a comparison exists");
    assert!(cmp.exact, "64^3 nest fits the exact bitset tracker");
    assert!(
        cmp.within(2.0),
        "measured worst-tile footprint {} not within 2x of predicted {:.1} (ratio {:.2})",
        cmp.measured_max_tile,
        cmp.predicted_per_tile,
        cmp.ratio
    );
}

#[test]
fn example8_dynamic_schedule_agrees() {
    let compiler = Compiler::new(24);
    let result = compiler.compile(example8()).unwrap();
    let opts = ExecOptions {
        threads: 6,
        schedule: Schedule::Dynamic,
        line_size: 4,
        track_touches: false,
        ..ExecOptions::default()
    };
    let summary = compiler.execute(&result, &opts, 7).unwrap();
    assert!(summary.outcome.matches_reference);
    // Touch tracking off: no footprint measurement, no comparison.
    assert!(summary.model_comparison.is_none());
}

#[test]
fn runtime_footprints_agree_with_simulator() {
    // Unit lines + infinite caches: the runtime's per-tile distinct-line
    // counts and the simulator's per-processor cold misses both count
    // "first touches", so they must agree tile by tile.
    let nest = parse(
        "doall (i, 1, 32) { doall (j, 1, 32) {
           A[i,j] = B[i,j] + B[i+1,j+3];
         } }",
    )
    .unwrap();
    let compiler = Compiler::new(16);
    let result = compiler.compile(nest).unwrap();
    let traffic = compiler.simulate_uniform(&result);

    let exec = Executor::from_grid(&result.nest, &result.partition.proc_grid).unwrap();
    let store = exec.seeded_store(3);
    let report = exec.run(&store, &ExecOptions::default()).unwrap();
    for (tile, (measured, cold)) in report.compare_with_traffic(&traffic).iter().enumerate() {
        assert_eq!(
            measured, cold,
            "tile {tile}: runtime touched {measured} lines, simulator took {cold} cold misses"
        );
    }
}
