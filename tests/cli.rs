//! Smoke tests for the `alp-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: Option<&str>) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alp-cli"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("binary spawns");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("stdin writes");
    }
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn analyzes_example3_from_stdin() {
    let (stdout, stderr, code) = run_cli(
        &["--param", "N=64", "-p", "16", "-"],
        Some("doall (i, 1, N) { doall (j, 1, N) { A[i,j] = B[i,j] + B[i+1,j+3]; } }"),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("communication-free : yes"), "{stdout}");
    assert!(stdout.contains("cache aspect ratio : 1 : 3"), "{stdout}");
    assert!(stdout.contains("grid [8, 2]"), "{stdout}");
}

#[test]
fn simulates_with_mesh() {
    // The stencil races across i; --no-check studies it regardless.
    let (stdout, stderr, code) = run_cli(
        &["-p", "4", "-m", "2x2", "--simulate", "--no-check", "-"],
        Some("doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i+1,j]; } }"),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("== simulation =="), "{stdout}");
    assert!(stdout.contains("aligned memory"), "{stdout}");
}

#[test]
fn handles_multi_phase_programs() {
    let (stdout, stderr, code) = run_cli(
        &["-p", "16", "--no-check", "-"],
        Some(
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+1]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+1,j]; } }",
        ),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("program with 2 phases"), "{stdout}");
    assert!(stdout.contains("CommonGrid"), "{stdout}");
}

#[test]
fn reports_parse_errors() {
    let (_, stderr, code) = run_cli(&["-"], Some("doall (i, 0, 9) { A[q] = 1; }"));
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unknown index"), "{stderr}");
    assert!(stderr.contains("line 1"), "{stderr}");
}

#[test]
fn code_flag_prints_spmd_loop() {
    let (stdout, _, code) = run_cli(
        &["-p", "4", "--code", "--no-check", "-"],
        Some("doall (i, 0, 63) { A[i] = A[i+1]; }"),
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("for i in max(0, 0 + p0*16)"), "{stdout}");
}

#[test]
fn racy_nest_is_refused_with_exit_4() {
    let (_, stderr, code) = run_cli(
        &["-p", "4", "-"],
        Some("doall (i, 0, 15) { A[i] = A[i+1]; }"),
    );
    assert_eq!(code, Some(4), "stderr: {stderr}");
    assert!(stderr.contains("error[doall-race]"), "{stderr}");
    assert!(stderr.contains("--no-check"), "{stderr}");
}

#[test]
fn check_reports_race_with_witness_and_exit_4() {
    let (_, stderr, code) = run_cli(
        &["--check", "-"],
        Some("doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i+1,j]; } }"),
    );
    assert_eq!(code, Some(4), "stderr: {stderr}");
    assert!(stderr.contains("error[doall-race]"), "{stderr}");
    // Caret snippet against the source plus a concrete witness pair.
    assert!(stderr.contains("^"), "{stderr}");
    assert!(stderr.contains("i="), "{stderr}");
}

#[test]
fn check_accepts_accumulate_reduction() {
    let (stdout, stderr, code) = run_cli(
        &["--check", "-"],
        Some(
            "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        ),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("ok:"), "{stdout}");
}

#[test]
fn check_clean_nest_exits_0() {
    let (stdout, stderr, code) = run_cli(
        &["--check", "-"],
        Some("doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = B[i,j] + B[i+1,j]; } }"),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("ok: 1 nest passes"), "{stdout}");
}

#[test]
fn check_warning_only_exits_3() {
    // Rank-deficient read (Example 7's shape): legal but lint-worthy.
    let (_, stderr, code) = run_cli(
        &["--check", "-"],
        Some("doall (i, 0, 15) { doall (j, 0, 15) { B[i,j] = A[i, 2*i, i+j]; } }"),
    );
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(stderr.contains("warning[rank-deficient-ref]"), "{stderr}");
}

const STENCIL: &str = "doall (i, 1, 16) { doall (j, 1, 16) { A[i,j] = B[i,j] + B[i+1,j+3]; } }";

#[test]
fn plan_emits_versioned_json_to_stdout() {
    let (stdout, stderr, code) = run_cli(&["plan", "-p", "4", "-"], Some(STENCIL));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.starts_with("{\n  \"alp-plan\": 3,"), "{stdout}");
    assert!(stdout.contains("\"fingerprint\""), "{stdout}");
    assert!(stdout.contains("\"source\""), "{stdout}");
}

#[test]
fn plan_refuses_racy_nest_with_exit_4() {
    let (_, stderr, code) = run_cli(
        &["plan", "-p", "4", "-"],
        Some("doall (i, 0, 15) { A[i] = A[i+1]; }"),
    );
    assert_eq!(code, Some(4), "stderr: {stderr}");
    assert!(stderr.contains("error[doall-race]"), "{stderr}");
}

#[test]
fn plan_emit_then_run_from_plan_matches_source_run() {
    let plan_path =
        std::env::temp_dir().join(format!("alp-cli-test-{}.plan.json", std::process::id()));
    let plan_path = plan_path.to_str().expect("utf-8 temp path").to_string();
    let (_, stderr, code) = run_cli(
        &["plan", "-p", "8", "--emit", &plan_path, "-"],
        Some(STENCIL),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("wrote plan"), "{stderr}");

    let (from_plan, stderr, code) =
        run_cli(&["run", "--from-plan", &plan_path, "--seed", "7"], None);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        from_plan.contains("matches the sequential reference bitwise"),
        "{from_plan}"
    );
    let (from_source, stderr, code) =
        run_cli(&["run", "-p", "8", "--seed", "7", "-"], Some(STENCIL));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    std::fs::remove_file(&plan_path).ok();

    // Identical footprint counters whether the partition came from the
    // plan artifact or was re-derived from source.
    let footprint = |out: &str| {
        out.lines()
            .find(|l| l.contains("max tile footprint"))
            .map(str::to_string)
    };
    assert!(footprint(&from_plan).is_some(), "{from_plan}");
    assert_eq!(footprint(&from_plan), footprint(&from_source));
}

#[test]
fn truncated_plan_fails_with_code_and_exit_1() {
    let (_, stderr, code) = run_cli(&["run", "--from-plan", "-"], Some("{\"alp-plan\": 1, "));
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("ALP0006"), "{stderr}");
    assert!(stderr.contains("truncated"), "{stderr}");
}

#[test]
fn unsupported_plan_version_is_rejected() {
    let (stdout, _, code) = run_cli(&["plan", "-p", "4", "-"], Some(STENCIL));
    assert_eq!(code, Some(0));
    let bumped = stdout.replace("\"alp-plan\": 3", "\"alp-plan\": 99");
    let (_, stderr, code) = run_cli(&["run", "--from-plan", "-"], Some(&bumped));
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("version 99 is not supported"), "{stderr}");
}

#[test]
fn calibrate_emits_versioned_artifact_to_stdout() {
    let (stdout, stderr, code) = run_cli(&["calibrate", "--trials", "1", "--threads", "2"], None);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.starts_with("{\n  \"alp-calibration\": 1,"),
        "{stdout}"
    );
    assert!(stdout.contains("\"per_span_line_ns\""), "{stdout}");
    assert!(stderr.contains("fitted over"), "{stderr}");
}

#[test]
fn calibrate_then_plan_calibrated_records_provenance() {
    let calib_path =
        std::env::temp_dir().join(format!("alp-cli-test-{}.calib.json", std::process::id()));
    let calib_path = calib_path.to_str().expect("utf-8 temp path").to_string();
    let (_, stderr, code) = run_cli(
        &[
            "calibrate",
            "--trials",
            "1",
            "--threads",
            "2",
            "--emit",
            &calib_path,
        ],
        None,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("wrote calibration"), "{stderr}");

    let (stdout, stderr, code) = run_cli(
        &["plan", "-p", "4", "--calibrated", &calib_path, "-"],
        Some(STENCIL),
    );
    std::fs::remove_file(&calib_path).ok();
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("\"optimizer\": \"rect-exhaustive+latency\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"chosen_by\": \"calibrated\""), "{stdout}");
    assert!(stdout.contains("\"calibration\""), "{stdout}");
    // The calibrated plan is a valid artifact: run --from-plan accepts it.
    let (run_out, stderr, code) = run_cli(&["run", "--from-plan", "-"], Some(&stdout));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        run_out.contains("matches the sequential reference bitwise"),
        "{run_out}"
    );
}

#[test]
fn malformed_calibration_artifact_exits_1_with_alp0010() {
    let bad_path = std::env::temp_dir().join(format!(
        "alp-cli-test-{}.bad.calib.json",
        std::process::id()
    ));
    std::fs::write(&bad_path, "{ \"alp-calibration\": 99 }\n").expect("temp file writes");
    let bad_path = bad_path.to_str().expect("utf-8 temp path").to_string();
    let (_, stderr, code) = run_cli(
        &["plan", "-p", "4", "--calibrated", &bad_path, "-"],
        Some(STENCIL),
    );
    std::fs::remove_file(&bad_path).ok();
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("error[ALP0010]"), "{stderr}");
    assert!(stderr.contains("version 99 is not supported"), "{stderr}");
}

#[test]
fn run_mismatch_exits_5() {
    // One worker thread executes tiles in ascending order, so a race that
    // crosses the j-boundary backwards gives a deterministic mismatch.
    let (_, stderr, code) = run_cli(
        &["run", "-p", "2", "--threads", "1", "--no-check", "-"],
        Some("doall (i, 0, 3) { doall (j, 0, 3) { A[i,j] = A[i-2,j+1]; } }"),
    );
    assert_eq!(code, Some(5), "stderr: {stderr}");
    assert!(stderr.contains("DIFFERS"), "{stderr}");
}

#[test]
fn run_timeout_exits_6_with_alp0007() {
    // ~200M iterations on one thread cannot finish in 50ms; the
    // cooperative deadline poll must stop the run and exit 6.
    let (_, stderr, code) = run_cli(
        &[
            "run",
            "-p",
            "4",
            "--threads",
            "1",
            "--timeout-ms",
            "50",
            "-",
        ],
        Some("doseq (t, 0, 200000) { doall (i, 0, 1023) { A[i] = B[i] + B[i+1]; } }"),
    );
    assert_eq!(code, Some(6), "stderr: {stderr}");
    assert!(stderr.contains("ALP0007"), "{stderr}");
    assert!(stderr.contains("deadline"), "{stderr}");
}

#[test]
fn run_over_budget_exits_8_with_alp0009() {
    let (_, stderr, code) = run_cli(
        &["run", "-p", "4", "--max-store-bytes", "10", "-"],
        Some(STENCIL),
    );
    assert_eq!(code, Some(8), "stderr: {stderr}");
    assert!(stderr.contains("ALP0009"), "{stderr}");
    assert!(stderr.contains("budget"), "{stderr}");
}

#[test]
fn run_over_budget_with_fallback_degrades_to_sequential() {
    let (stdout, stderr, code) = run_cli(
        &[
            "run",
            "-p",
            "4",
            "--max-store-bytes",
            "10",
            "--fallback-seq",
            "-",
        ],
        Some(STENCIL),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("warning[ALP0009]"), "{stderr}");
    assert!(stdout.contains("sequential fallback"), "{stdout}");
}

#[test]
fn certify_verifies_honest_plan_and_rejects_tampered_bit_with_exit_9() {
    // An embedded certificate is re-checked against recomputation: the
    // honest plan passes, a single flipped verdict bit fails with the
    // stable ALP0011 code and the dedicated exit status 9.
    let (plan, stderr, code) = run_cli(&["plan", "-p", "4", "--certify", "-"], Some(STENCIL));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(plan.contains("\"certificate\""), "{plan}");

    let (stdout, stderr, code) = run_cli(&["certify", "-"], Some(&plan));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("verified against recomputation"),
        "{stdout}"
    );
    assert!(stdout.contains("write-disjoint true"), "{stdout}");

    let flipped = plan.replace("\"write_disjoint\": true", "\"write_disjoint\": false");
    assert_ne!(flipped, plan, "replacement must hit");
    let (_, stderr, code) = run_cli(&["certify", "-"], Some(&flipped));
    assert_eq!(code, Some(9), "stderr: {stderr}");
    assert!(stderr.contains("error[ALP0011]"), "{stderr}");
    assert!(stderr.contains("certificate tampered"), "{stderr}");
}

#[test]
fn certify_attaches_certificate_to_bare_plan() {
    let (plan, stderr, code) = run_cli(&["plan", "-p", "4", "-"], Some(STENCIL));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(!plan.contains("\"certificate\""), "{plan}");

    let (stdout, stderr, code) = run_cli(&["certify", "-"], Some(&plan));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("coverage       true"), "{stdout}");
    assert!(stdout.contains("in-bounds      true"), "{stdout}");
}

#[test]
fn run_require_cert_takes_certified_fast_path() {
    // A disjoint stencil plan certifies cleanly; --require-cert then
    // runs accumulate-free stores relaxed and still matches bitwise.
    let (stdout, stderr, code) = run_cli(
        &["run", "-p", "4", "--require-cert", "--seed", "3", "-"],
        Some(STENCIL),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("certificate: coverage true"), "{stdout}");
    assert!(
        stdout.contains("matches the sequential reference bitwise"),
        "{stdout}"
    );
}

#[test]
fn run_require_cert_refuses_uncertified_plan_with_exit_9() {
    let (plan, _, code) = run_cli(&["plan", "-p", "4", "-"], Some(STENCIL));
    assert_eq!(code, Some(0));
    let (_, stderr, code) = run_cli(&["run", "--from-plan", "-", "--require-cert"], Some(&plan));
    assert_eq!(code, Some(9), "stderr: {stderr}");
    assert!(stderr.contains("ALP0011"), "{stderr}");
    assert!(stderr.contains("no certificate"), "{stderr}");
}

#[test]
fn check_suggests_reduction_rewrite() {
    let (_, stderr, code) = run_cli(
        &["--check", "-"],
        Some("doall (i, 0, 3) { doall (k, 0, 3) { C[i] = C[i] + A[i,k]; } }"),
    );
    assert_eq!(code, Some(4), "stderr: {stderr}");
    assert!(stderr.contains("doall-reduction"), "{stderr}");
    assert!(stderr.contains("+="), "{stderr}");
}

/// Spawn an `alp-cli serve` daemon on a fresh socket and wait for the
/// socket file to appear.  Returns the child and the socket path.
fn spawn_serve(extra: &[&str]) -> (std::process::Child, std::path::PathBuf) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let sock = std::env::temp_dir().join(format!(
        "alp-cli-test-{}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alp-cli"));
    cmd.arg("serve")
        .arg("--socket")
        .arg(&sock)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("daemon spawns");
    for _ in 0..200 {
        if sock.exists() {
            return (child, sock);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("serve daemon never created {}", sock.display());
}

fn serve_client(
    sock: &std::path::Path,
    args: &[&str],
    stdin: Option<&str>,
) -> (String, String, Option<i32>) {
    let mut full = vec!["serve", "--socket", sock.to_str().unwrap(), "--connect"];
    full.extend_from_slice(args);
    run_cli(&full, stdin)
}

#[test]
fn serve_daemon_plans_runs_and_shuts_down() {
    let (mut daemon, sock) = spawn_serve(&["--workers", "2"]);
    let nest = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";

    let (stdout, stderr, code) = serve_client(&sock, &["--op", "plan", "-"], Some(nest));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("cache computed"), "{stdout}");
    assert!(stdout.contains("tiles 16"), "{stdout}");

    // The second plan for the same nest is a cache hit; a run reuses it.
    let (stdout, _, code) = serve_client(&sock, &["--op", "plan", "-"], Some(nest));
    assert_eq!(code, Some(0));
    assert!(stdout.contains("cache hit"), "{stdout}");
    let (stdout, stderr, code) =
        serve_client(&sock, &["--op", "run", "--threads", "2", "-"], Some(nest));
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("matches_reference: true"), "{stdout}");

    let (stdout, _, code) = serve_client(&sock, &["--op", "stats"], None);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"misses\": 1"), "one compile: {stdout}");

    let (_, _, code) = serve_client(&sock, &["--op", "shutdown"], None);
    assert_eq!(code, Some(0));
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0));
    assert!(!sock.exists(), "socket removed on shutdown");
}

#[test]
fn serve_client_maps_shed_requests_to_exit_10() {
    // queue_cap 0 sheds everything that is not a cached plan.
    let (mut daemon, sock) = spawn_serve(&["--queue", "0"]);
    let (_, stderr, code) = serve_client(
        &sock,
        &["--op", "run", "-"],
        Some("doall (i, 0, 63) { A[i] = A[i] + B[i]; }"),
    );
    assert_eq!(code, Some(10), "ALP0012 maps to exit 10: {stderr}");
    assert!(stderr.contains("error[ALP0012]"), "{stderr}");
    assert!(stderr.contains("overloaded"), "{stderr}");

    let (_, _, code) = serve_client(&sock, &["--op", "shutdown"], None);
    assert_eq!(code, Some(0));
    daemon.wait().expect("daemon exits");
}

#[test]
fn serve_client_maps_plan_errors_to_standard_exits() {
    let (mut daemon, sock) = spawn_serve(&[]);
    let (_, stderr, code) = serve_client(
        &sock,
        &["--op", "plan", "-"],
        Some("doall (i, 0, 31) { A[0] = A[i]; }"),
    );
    assert_eq!(code, Some(4), "illegal doall keeps its exit: {stderr}");
    assert!(stderr.contains("error[ALP0003]"), "{stderr}");
    let (_, _, code) = serve_client(&sock, &["--op", "shutdown"], None);
    assert_eq!(code, Some(0));
    daemon.wait().expect("daemon exits");
}

#[test]
fn bench_serve_smoke_emits_schema_complete_json() {
    let (stdout, stderr, code) = run_cli(
        &["bench-serve", "--smoke", "--requests", "120", "--json", "-"],
        None,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    for field in [
        "\"bench\": \"serve\"",
        "\"p50\"",
        "\"p99\"",
        "\"plans_per_sec\"",
        "\"shed\"",
        "\"coalesced\"",
        "\"oversubscribed\"",
        "\"max_concurrent\"",
    ] {
        assert!(stdout.contains(field), "missing {field} in {stdout}");
    }
}

/// Send `sig` to a child process by PID (no libc crate in the test
/// either — the system `kill` is everywhere we run).
fn send_signal(child: &std::process::Child, sig: &str) {
    let status = Command::new("kill")
        .arg(sig)
        .arg(child.id().to_string())
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill {sig} delivered");
}

#[test]
fn sigterm_drains_the_daemon_and_exits_zero() {
    let store = std::env::temp_dir().join(format!("alp-cli-drain-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let (mut daemon, sock) = spawn_serve(&["--workers", "2", "--store", store.to_str().unwrap()]);
    let nest = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";
    let (_, stderr, code) = serve_client(&sock, &["--op", "plan", "-"], Some(nest));
    assert_eq!(code, Some(0), "stderr: {stderr}");

    send_signal(&daemon, "-TERM");
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    assert!(!sock.exists(), "socket removed after drain");
    // The computed plan was journaled and flushed on the way down.
    let (stdout, _, code) = run_cli(&["store", "verify", store.to_str().unwrap()], None);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("1 live plan(s)"), "{stdout}");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn second_sigterm_aborts_the_drain_with_exit_12() {
    // One worker, a long drain deadline, and a queue of slow runs: the
    // first SIGTERM leaves the daemon draining for a long time, so the
    // second one deterministically lands mid-drain.
    let (mut daemon, sock) = spawn_serve(&["--workers", "1", "--drain-deadline-ms", "60000"]);
    let slow = "doall (i, 0, 1023) { doall (j, 0, 1023) { A[i,j] = A[i,j] + B[i,j]; } }";
    let mut clients = Vec::new();
    for _ in 0..4 {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_alp-cli"));
        cmd.args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--connect",
            "--op",
            "run",
            "-",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("client spawns");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(slow.as_bytes())
            .unwrap();
        drop(child.stdin.take());
        clients.push(child);
    }
    // Let the runs get admitted, then signal twice.
    std::thread::sleep(std::time::Duration::from_millis(300));
    send_signal(&daemon, "-TERM");
    std::thread::sleep(std::time::Duration::from_millis(200));
    send_signal(&daemon, "-TERM");
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(
        status.code(),
        Some(12),
        "second signal escalates to exit 12"
    );
    for mut c in clients {
        let _ = c.kill();
        let _ = c.wait();
    }
}

#[test]
fn plan_via_server_delegates_to_the_daemon() {
    let (mut daemon, sock) = spawn_serve(&["--workers", "2"]);
    let nest = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";
    let (stdout, stderr, code) = run_cli(
        &[
            "plan",
            "--via-server",
            sock.to_str().unwrap(),
            "-p",
            "8",
            "-",
        ],
        Some(nest),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("\"alp-plan\""),
        "plan JSON on stdout: {stdout}"
    );

    // Same nest again: the daemon answers from cache, and --emit
    // reports which tier served it.
    let emit = std::env::temp_dir().join(format!("alp-cli-via-{}.json", std::process::id()));
    let (_, stderr, code) = run_cli(
        &[
            "plan",
            "--via-server",
            sock.to_str().unwrap(),
            "-p",
            "8",
            "--emit",
            emit.to_str().unwrap(),
            "-",
        ],
        Some(nest),
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("cache hit"), "{stderr}");
    let saved = std::fs::read_to_string(&emit).expect("emitted plan");
    assert!(saved.contains("\"alp-plan\""));
    let _ = std::fs::remove_file(&emit);

    // Local-only flags are refused up front, not silently dropped.
    let (_, stderr, code) = run_cli(
        &[
            "plan",
            "--via-server",
            sock.to_str().unwrap(),
            "--skewed",
            "-",
        ],
        Some(nest),
    );
    assert_eq!(code, Some(2), "local-only flag refused: {stderr}");

    let (_, _, code) = serve_client(&sock, &["--op", "shutdown"], None);
    assert_eq!(code, Some(0));
    daemon.wait().expect("daemon exits");
}

#[test]
fn serve_stats_reports_per_shard_occupancy() {
    let (mut daemon, sock) = spawn_serve(&["--shards", "4", "--cache-capacity", "64"]);
    let nest = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";
    let (_, _, code) = serve_client(&sock, &["--op", "plan", "-"], Some(nest));
    assert_eq!(code, Some(0));
    let (stdout, stderr, code) = serve_client(&sock, &["--op", "stats"], None);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("shard   0:"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");
    let (_, _, code) = serve_client(&sock, &["--op", "shutdown"], None);
    assert_eq!(code, Some(0));
    daemon.wait().expect("daemon exits");
}
