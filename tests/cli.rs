//! Smoke tests for the `alp-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: Option<&str>) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alp-cli"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("binary spawns");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("stdin writes");
    }
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyzes_example3_from_stdin() {
    let (stdout, stderr, ok) = run_cli(
        &["--param", "N=64", "-p", "16", "-"],
        Some("doall (i, 1, N) { doall (j, 1, N) { A[i,j] = B[i,j] + B[i+1,j+3]; } }"),
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("communication-free : yes"), "{stdout}");
    assert!(stdout.contains("cache aspect ratio : 1 : 3"), "{stdout}");
    assert!(stdout.contains("grid [8, 2]"), "{stdout}");
}

#[test]
fn simulates_with_mesh() {
    let (stdout, stderr, ok) = run_cli(
        &["-p", "4", "-m", "2x2", "--simulate", "-"],
        Some("doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i+1,j]; } }"),
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("== simulation =="), "{stdout}");
    assert!(stdout.contains("aligned memory"), "{stdout}");
}

#[test]
fn handles_multi_phase_programs() {
    let (stdout, stderr, ok) = run_cli(
        &["-p", "16", "-"],
        Some(
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+1]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+1,j]; } }",
        ),
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("program with 2 phases"), "{stdout}");
    assert!(stdout.contains("CommonGrid"), "{stdout}");
}

#[test]
fn reports_parse_errors() {
    let (_, stderr, ok) = run_cli(&["-"], Some("doall (i, 0, 9) { A[q] = 1; }"));
    assert!(!ok);
    assert!(stderr.contains("unknown index"), "{stderr}");
}

#[test]
fn code_flag_prints_spmd_loop() {
    let (stdout, _, ok) = run_cli(
        &["-p", "4", "--code", "-"],
        Some("doall (i, 0, 63) { A[i] = A[i+1]; }"),
    );
    assert!(ok);
    assert!(stdout.contains("for i in max(0, 0 + p0*16)"), "{stdout}");
}
