//! Integration tests: the analytical footprint model against the
//! simulated machine.
//!
//! The paper's claim is that the cumulative footprint predicts the cache
//! misses a partition incurs.  These tests check that the prediction is
//! faithful on the simulator: per-tile cold misses equal the exact
//! cumulative footprint, and the model's *ranking* of partitions matches
//! the machine's.

use alp::prelude::*;

/// Infinite caches: each processor's cold misses are exactly the size of
/// its tile's cumulative footprint.
#[test]
fn cold_misses_equal_exact_footprint_per_tile() {
    let src = "doall (i, 0, 47) { doall (j, 0, 47) {
                 A[i,j] = B[i,j] + B[i+2,j+1] + B[i-1,j+3];
               } }";
    let nest = parse(src).unwrap();
    let classes = classify(&nest);
    let grid = vec![4i128, 2];
    let assignment = assign_rect(&nest, &grid);
    let report = run_nest(&nest, &assignment, MachineConfig::uniform(8), &UniformHome);

    // Interior tiles all have the same extents: 12x24.
    let tile = Tile::rect(&[11, 23]);
    let predicted: usize = classes
        .iter()
        .map(|c| cumulative_footprint_exact(&tile, c))
        .sum();
    for (p, counters) in report.per_processor.iter().enumerate() {
        assert_eq!(
            counters.cold_misses as usize, predicted,
            "processor {p} cold misses"
        );
    }
}

/// Theorem 4's estimate is within boundary slack of the simulated
/// per-tile misses across a sweep of shapes.
#[test]
fn theorem4_estimate_tracks_simulation() {
    let src = "doall (i, 0, 63) { doall (j, 0, 63) {
                 A[i,j] = A[i+1,j] + A[i,j+2] + A[i+3,j+1];
               } }";
    let nest = parse(src).unwrap();
    let model = CostModel::from_nest(&nest);
    for grid in [
        vec![1i128, 16],
        vec![2, 8],
        vec![4, 4],
        vec![8, 2],
        vec![16, 1],
    ] {
        let extents: Vec<i128> = grid.iter().map(|&g| 64 / g - 1).collect();
        let est = model.cost_rect(&extents);
        let assignment = assign_rect(&nest, &grid);
        let report = run_nest(&nest, &assignment, MachineConfig::uniform(16), &UniformHome);
        let per_tile = report.total_cold_misses() as i128 / 16;
        let diff = (est - Rat::int(per_tile)).abs();
        // Slack: Theorem 4 over-counts by at most the corner product and
        // clipping effects at the iteration-space edge.
        assert!(
            diff <= Rat::int(16),
            "grid {grid:?}: est {est} vs simulated {per_tile}"
        );
    }
}

/// Model ranking matches machine ranking across candidate partitions.
#[test]
fn model_ranking_matches_machine() {
    let src = "doall (i, 0, 63) { doall (j, 0, 63) {
                 A[i,j] = B[i,j] + B[i+4,j] + B[i,j+1];
               } }";
    let nest = parse(src).unwrap();
    let model = CostModel::from_nest(&nest);
    let mut results: Vec<(Rat, u64)> = Vec::new();
    for grid in [vec![16i128, 1], vec![4, 4], vec![1, 16]] {
        let extents: Vec<i128> = grid.iter().map(|&g| 64 / g - 1).collect();
        let est = model.cost_rect(&extents);
        let report = run_nest(
            &nest,
            &assign_rect(&nest, &grid),
            MachineConfig::uniform(16),
            &UniformHome,
        );
        results.push((est, report.total_cold_misses()));
    }
    // Spread is (4, 1): splitting j is cheap, splitting i is expensive.
    // Model order and machine order must agree.
    let model_order: Vec<usize> = argsort(&results.iter().map(|r| r.0).collect::<Vec<_>>());
    let machine_order: Vec<usize> = argsort(&results.iter().map(|r| r.1).collect::<Vec<_>>());
    assert_eq!(model_order, machine_order, "{results:?}");
}

fn argsort<T: PartialOrd + Copy>(xs: &[T]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("total order"));
    idx
}

/// Communication-free partitions really produce zero invalidations and
/// zero coherence misses, even across repetitions.
#[test]
fn comm_free_partition_is_invalidation_free() {
    let src = "doseq (t, 1, 3) {
                 doall (i, 101, 200) { doall (j, 1, 100) {
                   A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
                 } }
               }";
    let nest = parse(src).unwrap();
    assert!(is_communication_free(&nest));
    let report = run_nest(
        &nest,
        &assign_rect(&nest, &[1, 100]),
        MachineConfig::uniform(100),
        &UniformHome,
    );
    assert_eq!(report.total_invalidations(), 0);
    assert_eq!(report.total_coherence_misses(), 0);
    // All repeat sweeps hit: misses = first-sweep footprint only.
    assert_eq!(report.total_misses(), report.total_cold_misses());
}

/// The optimizer's partition never does worse on the machine than both
/// naive strawmen, across several nests.
#[test]
fn optimizer_beats_naive_on_machine() {
    let sources = [
        "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+2,j] + A[i,j+5]; } }",
        "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = B[i+j,i-j] + B[i+j+2,i-j]; } }",
    ];
    for src in sources {
        let nest = parse(src).unwrap();
        let ours = partition_rect(&nest, 16);
        let our_misses = run_nest(
            &nest,
            &assign_rect(&nest, &ours.proc_grid),
            MachineConfig::uniform(16),
            &UniformHome,
        )
        .total_cold_misses();
        for shape in [NaiveShape::ByRows, NaiveShape::ByColumns] {
            if let Some(n) = naive_partition(&nest, 16, shape) {
                let naive_misses = run_nest(
                    &nest,
                    &assign_rect(&nest, &n.proc_grid),
                    MachineConfig::uniform(16),
                    &UniformHome,
                )
                .total_cold_misses();
                assert!(
                    our_misses <= naive_misses,
                    "{src}: ours {our_misses} vs {shape:?} {naive_misses}"
                );
            }
        }
    }
}

/// Alignment reduces remote misses on the distributed machine (the §4
/// data-partitioning claim), using the facade's two simulation modes.
#[test]
fn alignment_improves_locality() {
    let src = "doseq (t, 1, 2) {
                 doall (i, 1, 32) { doall (j, 1, 32) {
                   A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1];
                 } }
               }";
    // The relaxation races across iterations (Jacobi-in-place); the
    // paper still partitions it, so opt out of the legality gate.
    let compiler = Compiler::new(16).with_mesh(4, 4).unchecked();
    let result = compiler.compile_src(src).unwrap();
    let dist = compiler.simulate_distributed(&result);
    // Block row-major homes do not match the 2-D tiles: many remote
    // misses.
    assert!(dist.total_remote_misses() > 0);
    assert!(dist.check_conservation());

    // The §4 aligned distribution strictly improves locality and hop
    // traffic.
    let aligned = compiler.simulate_aligned(&result);
    assert!(aligned.check_conservation());
    assert!(
        aligned.total_remote_misses() < dist.total_remote_misses(),
        "aligned {} vs block {}",
        aligned.total_remote_misses(),
        dist.total_remote_misses()
    );
    assert!(aligned.total_hop_traffic() < dist.total_hop_traffic());
    // Total miss count is layout-independent (only locality changes).
    assert_eq!(aligned.total_misses(), dist.total_misses());
}

/// Aligned homes handle transposed references without panicking and keep
/// the lion's share of accesses local for the identity-reference array.
#[test]
fn aligned_home_transposed_reference() {
    let src = "doall (i, 1, 32) { doall (j, 1, 32) {
                 A[i,j] = A[i,j] + B[j,i];
               } }";
    let compiler = Compiler::new(16).with_mesh(4, 4);
    let result = compiler.compile_src(src).unwrap();
    let aligned = compiler.simulate_aligned(&result);
    assert!(aligned.check_conservation());
    // A is perfectly aligned: its misses are local.  B is transposed;
    // its tiles are aligned through the transposed owner mapping, which
    // is exactly right for B[j,i] (processor (ci,cj) reads B tile
    // (cj,ci)... which lives with loop tile (cj,ci)) — so B's accesses
    // are remote unless ci == cj.  Either way, nothing panics and at
    // least A's share stays local.
    let local = aligned.total_misses() - aligned.total_remote_misses();
    assert!(
        local * 2 >= aligned.total_misses() / 2,
        "some locality retained"
    );
}
