//! Exact rational numbers on `i128`.

use crate::num::gcd;

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
///
/// Used wherever the partitioning analysis needs non-integer exact values:
/// tile matrices `L = Λ(H⁻¹)ᵗ` (Def. 2), the decomposition `â = Σ uᵢ·ḡᵢ` of
/// Theorem 4, and the closed-form Lagrange optima of §3.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Construct `num/den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert_ne!(den, 0, "zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn int(n: i128) -> Self {
        Rat { num: n, den: 1 }
    }

    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// The integer value, if integral.
    pub fn to_integer(&self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }

    /// Nearest `f64` (used only for reporting and heuristic search seeds).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rat {
        assert_ne!(self.num, 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Floor to an integer.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to an integer.
    pub fn ceil(&self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }
}

impl std::ops::Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl std::ops::Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl std::ops::Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl std::ops::Div for Rat {
    type Output = Rat;
    fn div(self, o: Rat) -> Rat {
        assert_ne!(o.num, 0, "division by zero");
        Rat::new(self.num * o.den, self.den * o.num)
    }
}

impl std::ops::Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Self {
        Rat::int(n)
    }
}

impl std::fmt::Display for Rat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction_and_sign() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
        assert_eq!(a.recip(), Rat::int(2));
    }

    #[test]
    fn floors_and_ceils() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::int(2) > Rat::new(3, 2));
    }

    #[test]
    fn integer_conversion() {
        assert_eq!(Rat::new(6, 3).to_integer(), Some(2));
        assert_eq!(Rat::new(5, 3).to_integer(), None);
        assert!(Rat::new(6, 3).is_integer());
    }

    fn arb_rat() -> impl Strategy<Value = Rat> {
        (-100i128..=100, 1i128..=30).prop_map(|(n, d)| Rat::new(n, d))
    }

    proptest! {
        #[test]
        fn field_axioms(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - a, Rat::ZERO);
            if !b.is_zero() {
                prop_assert_eq!(a / b * b, a);
            }
        }

        #[test]
        fn floor_ceil_bracket(a in arb_rat()) {
            let f = a.floor();
            let c = a.ceil();
            prop_assert!(Rat::int(f) <= a && a <= Rat::int(c));
            prop_assert!(c - f <= 1);
        }
    }
}
