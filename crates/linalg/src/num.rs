//! Scalar integer number theory: gcd, lcm, extended gcd.

/// Greatest common divisor of two integers; always non-negative.
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of a slice; 0 for an empty slice.
pub fn gcd_many(xs: &[i128]) -> i128 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Least common multiple; `lcm(0, x) == 0`.
///
/// # Panics
/// Panics on overflow of `i128` (not reachable for the small operands used
/// by the partitioning analysis).
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`
/// and `g >= 0`.
pub fn xgcd(a: i128, b: i128) -> (i128, i128, i128) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
        assert_eq!(gcd(1, 999), 1);
    }

    #[test]
    fn gcd_many_basics() {
        assert_eq!(gcd_many(&[]), 0);
        assert_eq!(gcd_many(&[4]), 4);
        assert_eq!(gcd_many(&[4, 6, 8]), 2);
        assert_eq!(gcd_many(&[3, 5]), 1);
        assert_eq!(gcd_many(&[0, 0, 5]), 5);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(7, 7), 7);
    }

    #[test]
    fn xgcd_basics() {
        let (g, x, y) = xgcd(240, 46);
        assert_eq!(g, 2);
        assert_eq!(240 * x + 46 * y, g);
        let (g, x, y) = xgcd(-240, 46);
        assert_eq!(g, 2);
        assert_eq!(-240 * x + 46 * y, g);
        let (g, _, _) = xgcd(0, 0);
        assert_eq!(g, 0);
    }

    proptest! {
        #[test]
        fn gcd_divides_both(a in -10_000i128..10_000, b in -10_000i128..10_000) {
            let g = gcd(a, b);
            if g != 0 {
                prop_assert_eq!(a % g, 0);
                prop_assert_eq!(b % g, 0);
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn xgcd_bezout(a in -10_000i128..10_000, b in -10_000i128..10_000) {
            let (g, x, y) = xgcd(a, b);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert_eq!(a * x + b * y, g);
        }

        #[test]
        fn lcm_gcd_product(a in 1i128..10_000, b in 1i128..10_000) {
            prop_assert_eq!(lcm(a, b) * gcd(a, b), a * b);
        }
    }
}
