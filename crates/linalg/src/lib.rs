//! Exact integer and rational linear algebra for loop-partitioning analysis.
//!
//! This crate is the numeric substrate of the `alp` workspace, the Rust
//! reproduction of Agarwal, Kranz & Natarajan, *Automatic Partitioning of
//! Parallel Loops for Cache-Coherent Multiprocessors* (ICPP 1993).  The
//! paper's framework manipulates small integer matrices — reference
//! matrices `G`, tile matrices `L`, lattice bases — and needs *exact*
//! arithmetic: determinants (footprint volumes, Eq. 2 of the paper),
//! Hermite/Smith normal forms (lattice membership, Lemma 2), unimodularity
//! tests (Theorem 1), rational inverses (tile definitions, Def. 2) and
//! integer nullspaces (communication-free hyperplanes).
//!
//! All matrices here are dense and small (loop nests rarely exceed depth 4
//! and array rank 4), so the implementation favours exactness and clarity
//! over asymptotics: Bareiss fraction-free elimination for determinants,
//! textbook HNF/SNF with transform tracking, `i128` entries to keep
//! intermediate products exact.
//!
//! Row-vector convention: following the paper, index vectors are **row**
//! vectors and references map `i ↦ i·G + a`, so `G` has one row per loop
//! index and one column per array dimension.

pub mod fm;
pub mod hnf;
pub mod mat;
pub mod num;
pub mod rat;
pub mod rmat;
pub mod snf;
pub mod solve;
pub mod vec;

pub use fm::{eliminate, Constraint, System};
pub use hnf::{column_hnf, row_hnf, Hnf};
pub use mat::IMat;
pub use num::{gcd, gcd_many, lcm, xgcd};
pub use rat::Rat;
pub use rmat::RMat;
pub use snf::{smith_normal_form, Snf};
pub use solve::{integer_nullspace, max_independent_columns, solve_integer, solve_rational};
pub use vec::IVec;

/// Errors produced by exact linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes do not conform (e.g. `a.cols != b.rows`).
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A square, invertible matrix was required.
    Singular,
    /// A division had a nonzero remainder where an exact result was required.
    NotIntegral,
    /// The requested operation needs a nonempty matrix.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "shape mismatch: {}x{} vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotIntegral => write!(f, "result is not integral"),
            LinalgError::Empty => write!(f, "empty matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
