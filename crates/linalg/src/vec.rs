//! Integer row vectors.

use crate::num::gcd_many;
use crate::{LinalgError, Result};

/// A dense integer (row) vector.
///
/// Following the paper's convention, iteration points `ī`, data points
/// `ḡ(ī)`, and offset vectors `ā` are all row vectors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IVec(pub Vec<i128>);

impl IVec {
    /// A vector from a slice.
    pub fn new(entries: &[i128]) -> Self {
        IVec(entries.to_vec())
    }

    /// The zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        IVec(vec![0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when all components are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Component access.
    pub fn get(&self, i: usize) -> i128 {
        self.0[i]
    }

    /// Component-wise sum.
    pub fn add(&self, other: &IVec) -> Result<IVec> {
        self.zip(other, |a, b| a + b)
    }

    /// Component-wise difference (`self - other`).
    pub fn sub(&self, other: &IVec) -> Result<IVec> {
        self.zip(other, |a, b| a - b)
    }

    /// Scalar multiple.
    pub fn scale(&self, k: i128) -> IVec {
        IVec(self.0.iter().map(|&x| x * k).collect())
    }

    /// Dot product.
    pub fn dot(&self, other: &IVec) -> Result<i128> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.len()),
                right: (1, other.len()),
            });
        }
        Ok(self.0.iter().zip(&other.0).map(|(&a, &b)| a * b).sum())
    }

    /// Gcd of the components (0 for the zero vector).
    pub fn content(&self) -> i128 {
        gcd_many(&self.0)
    }

    /// Divide every component by the content, making the vector primitive.
    /// The zero vector is returned unchanged.
    pub fn primitive(&self) -> IVec {
        let c = self.content();
        if c == 0 {
            self.clone()
        } else {
            IVec(self.0.iter().map(|&x| x / c).collect())
        }
    }

    fn zip(&self, other: &IVec, f: impl Fn(i128, i128) -> i128) -> Result<IVec> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.len()),
                right: (1, other.len()),
            });
        }
        Ok(IVec(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        ))
    }
}

impl std::fmt::Display for IVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (k, x) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<i128>> for IVec {
    fn from(v: Vec<i128>) -> Self {
        IVec(v)
    }
}

impl std::ops::Index<usize> for IVec {
    type Output = i128;
    fn index(&self, i: usize) -> &i128 {
        &self.0[i]
    }
}

impl std::ops::IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut i128 {
        &mut self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = IVec::new(&[1, 2, 3]);
        let b = IVec::new(&[4, -5, 6]);
        assert_eq!(a.add(&b).unwrap(), IVec::new(&[5, -3, 9]));
        assert_eq!(a.sub(&b).unwrap(), IVec::new(&[-3, 7, -3]));
        assert_eq!(a.scale(-2), IVec::new(&[-2, -4, -6]));
        assert_eq!(a.dot(&b).unwrap(), 4 - 10 + 18);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = IVec::new(&[1, 2]);
        let b = IVec::new(&[1, 2, 3]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn content_and_primitive() {
        assert_eq!(IVec::new(&[4, 6, 8]).content(), 2);
        assert_eq!(IVec::new(&[4, 6, 8]).primitive(), IVec::new(&[2, 3, 4]));
        assert_eq!(IVec::zeros(3).primitive(), IVec::zeros(3));
        assert!(IVec::zeros(2).is_zero());
        assert!(!IVec::new(&[0, 1]).is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(IVec::new(&[1, -2]).to_string(), "(1, -2)");
    }
}
