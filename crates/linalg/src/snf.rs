//! Smith Normal Form with transform tracking.
//!
//! `u * a * v == s` with `u`, `v` unimodular and `s` diagonal with a
//! divisibility chain `s₁ | s₂ | …`.  The product of the nonzero diagonal
//! entries is the index of the image lattice of `a` in the sub-space it
//! spans — exactly the "density" correction needed to count footprint
//! points exactly when `G` is nonsingular but not unimodular (the paper's
//! Theorem 4 sidesteps this via lattices; we expose it directly for the
//! exact-counting ablation).

use crate::mat::IMat;
use crate::num::xgcd;

/// Result of a Smith normal form computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snf {
    /// Diagonal form (same shape as the input).
    pub s: IMat,
    /// Left unimodular transform.
    pub u: IMat,
    /// Right unimodular transform.
    pub v: IMat,
    /// The nonzero diagonal entries `s₁ | s₂ | …`, all positive.
    pub invariants: Vec<i128>,
}

/// Compute the Smith normal form of `a`.
pub fn smith_normal_form(a: &IMat) -> Snf {
    let (m, n) = (a.rows(), a.cols());
    let mut s = a.clone();
    let mut u = IMat::identity(m);
    let mut v = IMat::identity(n);

    let k = m.min(n);
    for t in 0..k {
        if !bring_pivot(&mut s, &mut u, &mut v, t) {
            break; // the rest of the matrix is zero
        }
        // Eliminate row and column t; each elimination can reintroduce
        // entries in the other, so iterate to a fixed point.  When the
        // pivot already divides the entry we must subtract a multiple
        // (keeping the pivot) rather than apply a Bézout combination —
        // an xgcd pair like (0, ±1) would swap the rows and cycle
        // forever.  The xgcd path strictly shrinks |pivot|, so the loop
        // terminates.
        eliminate_cross(&mut s, &mut u, &mut v, t);
        if s[(t, t)] < 0 {
            negate_row(&mut s, t);
            negate_row(&mut u, t);
        }
        // Enforce the divisibility chain: if s[t][t] does not divide some
        // later entry, fold that entry's row in and redo this pivot.
        'divis: loop {
            for i in t + 1..m {
                for j in t + 1..n {
                    if s[(i, j)] % s[(t, t)] != 0 {
                        add_row(&mut s, t, i);
                        add_row(&mut u, t, i);
                        // Re-eliminate; |pivot| strictly decreases on the
                        // xgcd path, so this terminates.
                        eliminate_cross(&mut s, &mut u, &mut v, t);
                        if s[(t, t)] < 0 {
                            negate_row(&mut s, t);
                            negate_row(&mut u, t);
                        }
                        continue 'divis;
                    }
                }
            }
            break;
        }
    }

    let invariants: Vec<i128> = (0..k).map(|t| s[(t, t)]).take_while(|&d| d != 0).collect();
    Snf {
        s,
        u,
        v,
        invariants,
    }
}

/// Clear row `t` and column `t` (beyond the pivot) to a fixed point.
fn eliminate_cross(s: &mut IMat, u: &mut IMat, v: &mut IMat, t: usize) {
    let (m, n) = (s.rows(), s.cols());
    loop {
        let mut dirty = false;
        for i in t + 1..m {
            if s[(i, t)] == 0 {
                continue;
            }
            if s[(i, t)] % s[(t, t)] == 0 {
                let q = s[(i, t)] / s[(t, t)];
                sub_scaled_row(s, i, t, q);
                sub_scaled_row(u, i, t, q);
            } else {
                let (g, x, y) = xgcd(s[(t, t)], s[(i, t)]);
                let (p, q) = (s[(t, t)] / g, s[(i, t)] / g);
                row_combine(s, t, i, x, y, -q, p);
                row_combine(u, t, i, x, y, -q, p);
            }
            dirty = true;
        }
        for j in t + 1..n {
            if s[(t, j)] == 0 {
                continue;
            }
            if s[(t, j)] % s[(t, t)] == 0 {
                let q = s[(t, j)] / s[(t, t)];
                sub_scaled_col(s, j, t, q);
                sub_scaled_col(v, j, t, q);
            } else {
                let (g, x, y) = xgcd(s[(t, t)], s[(t, j)]);
                let (p, q) = (s[(t, t)] / g, s[(t, j)] / g);
                col_combine(s, t, j, x, y, -q, p);
                col_combine(v, t, j, x, y, -q, p);
            }
            dirty = true;
        }
        if !dirty {
            break;
        }
    }
}

/// `row_i -= q · row_j`.
fn sub_scaled_row(m: &mut IMat, i: usize, j: usize, q: i128) {
    for c in 0..m.cols() {
        m[(i, c)] -= q * m[(j, c)];
    }
}

/// `col_i -= q · col_j`.
fn sub_scaled_col(m: &mut IMat, i: usize, j: usize, q: i128) {
    for r in 0..m.rows() {
        m[(r, i)] -= q * m[(r, j)];
    }
}

/// Move a nonzero entry (if any remains) to position (t, t).
fn bring_pivot(s: &mut IMat, u: &mut IMat, v: &mut IMat, t: usize) -> bool {
    let (m, n) = (s.rows(), s.cols());
    for i in t..m {
        for j in t..n {
            if s[(i, j)] != 0 {
                if i != t {
                    swap_rows(s, t, i);
                    swap_rows(u, t, i);
                }
                if j != t {
                    swap_cols(s, t, j);
                    swap_cols(v, t, j);
                }
                return true;
            }
        }
    }
    false
}

fn swap_rows(m: &mut IMat, i: usize, j: usize) {
    for c in 0..m.cols() {
        let t = m[(i, c)];
        m[(i, c)] = m[(j, c)];
        m[(j, c)] = t;
    }
}

fn swap_cols(m: &mut IMat, i: usize, j: usize) {
    for r in 0..m.rows() {
        let t = m[(r, i)];
        m[(r, i)] = m[(r, j)];
        m[(r, j)] = t;
    }
}

fn row_combine(m: &mut IMat, i: usize, j: usize, x: i128, y: i128, z: i128, w: i128) {
    for c in 0..m.cols() {
        let (a, b) = (m[(i, c)], m[(j, c)]);
        m[(i, c)] = x * a + y * b;
        m[(j, c)] = z * a + w * b;
    }
}

/// Column version: columns i, j <- (x*col_i + y*col_j, z*col_i + w*col_j).
fn col_combine(m: &mut IMat, i: usize, j: usize, x: i128, y: i128, z: i128, w: i128) {
    for r in 0..m.rows() {
        let (a, b) = (m[(r, i)], m[(r, j)]);
        m[(r, i)] = x * a + y * b;
        m[(r, j)] = z * a + w * b;
    }
}

fn add_row(m: &mut IMat, dst: usize, src: usize) {
    for c in 0..m.cols() {
        m[(dst, c)] += m[(src, c)];
    }
}

fn negate_row(m: &mut IMat, i: usize) {
    for c in 0..m.cols() {
        m[(i, c)] = -m[(i, c)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_snf(a: &IMat) {
        let Snf {
            s,
            u,
            v,
            invariants,
        } = smith_normal_form(a);
        // u * a * v == s
        assert_eq!(u.mul(a).unwrap().mul(&v).unwrap(), s, "transform identity");
        assert!(u.is_unimodular(), "u not unimodular");
        assert!(v.is_unimodular(), "v not unimodular");
        // s diagonal
        for i in 0..s.rows() {
            for j in 0..s.cols() {
                if i != j {
                    assert_eq!(s[(i, j)], 0, "off-diagonal nonzero");
                }
            }
        }
        // divisibility chain, positivity
        for w in invariants.windows(2) {
            assert!(
                w[0] > 0 && w[1] % w[0] == 0,
                "divisibility chain broken: {w:?}"
            );
        }
        if let Some(&last) = invariants.last() {
            assert!(last > 0);
        }
        assert_eq!(invariants.len(), a.rank(), "number of invariants = rank");
    }

    #[test]
    fn snf_diag_example() {
        let a = IMat::from_rows(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
        let snf = smith_normal_form(&a);
        check_snf(&a);
        // Known SNF of this classic example: diag(2, 2, 156).
        assert_eq!(snf.invariants, vec![2, 2, 156]);
    }

    #[test]
    fn snf_identity() {
        check_snf(&IMat::identity(3));
        assert_eq!(
            smith_normal_form(&IMat::identity(3)).invariants,
            vec![1, 1, 1]
        );
    }

    #[test]
    fn snf_zero() {
        check_snf(&IMat::zeros(2, 3));
        assert!(smith_normal_form(&IMat::zeros(2, 3)).invariants.is_empty());
    }

    #[test]
    fn snf_of_g_from_example10() {
        // G = [[1,1],[1,-1]], det -2: image lattice has index 2 in Z^2.
        let g = IMat::from_rows(&[&[1, 1], &[1, -1]]);
        let snf = smith_normal_form(&g);
        check_snf(&g);
        assert_eq!(snf.invariants, vec![1, 2]);
        assert_eq!(snf.invariants.iter().product::<i128>(), 2);
    }

    #[test]
    fn snf_divisible_offdiagonal_terminates() {
        // Regression: [[1,-1],[0,1]] once cycled forever because the
        // Bézout pair (0, -1) swapped the pivot row instead of reducing.
        let g = IMat::from_rows(&[&[1, -1], &[0, 1]]);
        let snf = smith_normal_form(&g);
        check_snf(&g);
        assert_eq!(snf.invariants, vec![1, 1]);
        // A few more shapes from the same family.
        for rows in [[[2i128, -2], [0, 2]], [[1, 1], [0, -1]], [[3, -6], [0, 3]]] {
            let m = IMat::from_rows(&[&rows[0], &rows[1]]);
            check_snf(&m);
        }
    }

    #[test]
    fn snf_rank_deficient() {
        let a = IMat::from_rows(&[&[1, 2, 1], &[0, 0, 1]]); // Example 7's G
        check_snf(&a);
        assert_eq!(smith_normal_form(&a).invariants, vec![1, 1]);
    }

    fn arb_mat(r: usize, c: usize) -> impl Strategy<Value = IMat> {
        proptest::collection::vec(-6i128..=6, r * c).prop_map(move |v| IMat::from_vec(r, c, v))
    }

    proptest! {
        #[test]
        fn snf_invariants_square(a in arb_mat(3, 3)) {
            check_snf(&a);
        }

        #[test]
        fn snf_invariants_rect(a in arb_mat(2, 4)) {
            check_snf(&a);
        }

        #[test]
        fn snf_product_is_abs_det(a in arb_mat(3, 3)) {
            let d = a.det().unwrap();
            let snf = smith_normal_form(&a);
            if d != 0 {
                prop_assert_eq!(snf.invariants.iter().product::<i128>(), d.abs());
            } else {
                prop_assert!(snf.invariants.len() < 3);
            }
        }
    }
}
