//! Hermite Normal Form with unimodular transform tracking.
//!
//! The row-style HNF underlies integer-lattice membership (is a vector an
//! integer combination of the rows of `G`?), which the paper uses both for
//! the *intersecting references* test (Def. 4) and, via Lemma 2 / the
//! Hermite normal form theorem, for deciding when the reference map is
//! onto.

use crate::mat::IMat;
use crate::num::xgcd;

/// Result of a Hermite normal form computation: `u * a == h` with `u`
/// unimodular, `h` in row echelon form with positive pivots and entries
/// above each pivot reduced into `[0, pivot)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hnf {
    /// The Hermite normal form.
    pub h: IMat,
    /// Unimodular transform, `u * a == h`.
    pub u: IMat,
    /// 0-based pivot columns, one per nonzero row of `h`, strictly increasing.
    pub pivots: Vec<usize>,
}

impl Hnf {
    /// Rank of the original matrix (number of nonzero rows of `h`).
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }
}

/// Row-style Hermite normal form of `a`.
///
/// Row operations only (unimodular on the left), so the row lattice — the
/// set of integer combinations of rows, i.e. the image of `i ↦ i·a` — is
/// preserved exactly.
pub fn row_hnf(a: &IMat) -> Hnf {
    let (m, n) = (a.rows(), a.cols());
    let mut h = a.clone();
    let mut u = IMat::identity(m);
    let mut pivots = Vec::new();
    let mut r = 0usize;
    for c in 0..n {
        if r >= m {
            break;
        }
        // Bring a nonzero into (r, c) and zero everything below it, using
        // extended-gcd row combinations (each is unimodular).
        if h[(r, c)] == 0 {
            if let Some(p) = (r + 1..m).find(|&i| h[(i, c)] != 0) {
                swap_rows(&mut h, r, p);
                swap_rows(&mut u, r, p);
            } else {
                continue;
            }
        }
        for i in r + 1..m {
            if h[(i, c)] == 0 {
                continue;
            }
            let (g, x, y) = xgcd(h[(r, c)], h[(i, c)]);
            let (p, q) = (h[(r, c)] / g, h[(i, c)] / g);
            // [x y; -q p] is unimodular: det = x*p + y*q = (x*h_rc + y*h_ic)/g = 1.
            combine_rows(&mut h, r, i, x, y, -q, p);
            combine_rows(&mut u, r, i, x, y, -q, p);
            debug_assert_eq!(h[(i, c)], 0);
        }
        if h[(r, c)] < 0 {
            negate_row(&mut h, r);
            negate_row(&mut u, r);
        }
        // Reduce the entries above the pivot into [0, pivot).
        let pivot = h[(r, c)];
        for i in 0..r {
            let q = h[(i, c)].div_euclid(pivot);
            if q != 0 {
                sub_scaled_row(&mut h, i, r, q);
                sub_scaled_row(&mut u, i, r, q);
            }
        }
        pivots.push(c);
        r += 1;
    }
    Hnf { h, u, pivots }
}

/// Column-style Hermite normal form: `a * v == h` with `v` unimodular.
///
/// Obtained by transposing the row-style computation.  Preserves the
/// column lattice of `a`.
pub fn column_hnf(a: &IMat) -> Hnf {
    let t = row_hnf(&a.transpose());
    Hnf {
        h: t.h.transpose(),
        u: t.u.transpose(),
        pivots: t.pivots,
    }
}

fn swap_rows(m: &mut IMat, i: usize, j: usize) {
    for c in 0..m.cols() {
        let t = m[(i, c)];
        m[(i, c)] = m[(j, c)];
        m[(j, c)] = t;
    }
}

/// Replace rows i, j with (x*row_i + y*row_j, z*row_i + w*row_j).
fn combine_rows(m: &mut IMat, i: usize, j: usize, x: i128, y: i128, z: i128, w: i128) {
    for c in 0..m.cols() {
        let (a, b) = (m[(i, c)], m[(j, c)]);
        m[(i, c)] = x * a + y * b;
        m[(j, c)] = z * a + w * b;
    }
}

fn negate_row(m: &mut IMat, i: usize) {
    for c in 0..m.cols() {
        m[(i, c)] = -m[(i, c)];
    }
}

fn sub_scaled_row(m: &mut IMat, i: usize, j: usize, q: i128) {
    for c in 0..m.cols() {
        m[(i, c)] -= q * m[(j, c)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_hnf_invariants(a: &IMat) {
        let Hnf { h, u, pivots } = row_hnf(a);
        // u * a == h
        assert_eq!(u.mul(a).unwrap(), h, "transform identity");
        // u unimodular
        assert!(u.is_unimodular(), "u not unimodular");
        // pivots strictly increasing, entries positive, zeros below
        let mut prev = None;
        for (r, &c) in pivots.iter().enumerate() {
            if let Some(p) = prev {
                assert!(c > p);
            }
            prev = Some(c);
            assert!(h[(r, c)] > 0, "pivot must be positive");
            for i in r + 1..h.rows() {
                assert_eq!(h[(i, c)], 0, "nonzero below pivot");
            }
            for i in 0..r {
                assert!(
                    0 <= h[(i, c)] && h[(i, c)] < h[(r, c)],
                    "entry above pivot not reduced"
                );
            }
            // Everything left of the pivot in this row is zero.
            for cc in 0..c {
                assert_eq!(h[(r, cc)], 0, "nonzero left of pivot");
            }
        }
        // Rows past the pivots are zero.
        for r in pivots.len()..h.rows() {
            assert!(h.row(r).is_zero(), "nonzero row past rank");
        }
    }

    #[test]
    fn hnf_simple() {
        let a = IMat::from_rows(&[&[2, 4], &[6, 8]]);
        check_hnf_invariants(&a);
        let hnf = row_hnf(&a);
        assert_eq!(hnf.rank(), 2);
    }

    #[test]
    fn hnf_rank_deficient() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[2, 4, 6], &[1, 1, 1]]);
        check_hnf_invariants(&a);
        assert_eq!(row_hnf(&a).rank(), 2);
    }

    #[test]
    fn hnf_zero_matrix() {
        let a = IMat::zeros(2, 3);
        check_hnf_invariants(&a);
        assert_eq!(row_hnf(&a).rank(), 0);
    }

    #[test]
    fn hnf_identity_fixed_point() {
        let a = IMat::identity(3);
        let hnf = row_hnf(&a);
        assert_eq!(hnf.h, a);
        assert_eq!(hnf.u, IMat::identity(3));
    }

    #[test]
    fn hnf_known_form() {
        // Classic example: rows generate the lattice 2Z x Z scaled.
        let a = IMat::from_rows(&[&[4, 0], &[0, 2], &[2, 1]]);
        let hnf = row_hnf(&a);
        // The row lattice is generated by (2,1) and (0,2) -> HNF [[2,1],[0,2]]
        // reduced: entry above pivot 2 in col 1 is 1 < 2. Det of lattice = 4.
        assert_eq!(hnf.rank(), 2);
        assert_eq!(hnf.h[(0, 0)], 2);
        assert_eq!(hnf.h[(1, 1)] * hnf.h[(0, 0)], 4);
    }

    #[test]
    fn column_hnf_transform() {
        let a = IMat::from_rows(&[&[2, 4, 4], &[-6, 6, 12]]);
        let Hnf { h, u: v, .. } = column_hnf(&a);
        assert_eq!(a.mul(&v).unwrap(), h, "a * v == h");
        assert!(v.is_unimodular());
    }

    fn arb_mat(r: usize, c: usize) -> impl Strategy<Value = IMat> {
        proptest::collection::vec(-8i128..=8, r * c).prop_map(move |v| IMat::from_vec(r, c, v))
    }

    proptest! {
        #[test]
        fn hnf_invariants_random_3x3(a in arb_mat(3, 3)) {
            check_hnf_invariants(&a);
        }

        #[test]
        fn hnf_invariants_random_rect(a in arb_mat(2, 4)) {
            check_hnf_invariants(&a);
        }

        #[test]
        fn hnf_invariants_random_tall(a in arb_mat(4, 2)) {
            check_hnf_invariants(&a);
        }

        #[test]
        fn hnf_rank_matches_rank(a in arb_mat(3, 3)) {
            prop_assert_eq!(row_hnf(&a).rank(), a.rank());
        }

        #[test]
        fn hnf_det_preserved_up_to_sign(a in arb_mat(3, 3)) {
            let h = row_hnf(&a).h;
            prop_assert_eq!(h.det().unwrap().abs(), a.det().unwrap().abs());
        }
    }
}
