//! Dense rational matrices: exact inverses and linear solves.

use crate::mat::IMat;
use crate::rat::Rat;
use crate::{LinalgError, Result};

/// A dense matrix of exact rationals.
///
/// Tile matrices `L = Λ(H⁻¹)ᵗ` (Def. 2 of the paper) are rational in
/// general, and Theorem 4 needs the rational solution `u` of `â = u·G`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RMat {
    /// Build from nested rows of rationals.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[Rat]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        RMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![Rat::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rat::ONE;
        }
        m
    }

    /// Promote an integer matrix.
    pub fn from_int(m: &IMat) -> Self {
        let mut out = Self::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                out[(i, j)] = Rat::int(m[(i, j)]);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Demote to an integer matrix if every entry is integral.
    pub fn to_int(&self) -> Option<IMat> {
        let mut out = IMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self[(i, j)].to_integer()?;
            }
        }
        Some(out)
    }

    /// Matrix product.
    pub fn mul(&self, other: &RMat) -> Result<RMat> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = RMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] = out[(i, j)] + a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// The transpose.
    pub fn transpose(&self) -> RMat {
        let mut t = RMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Exact determinant by Gaussian elimination over the rationals.
    pub fn det(&self) -> Result<Rat> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.rows, self.rows),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Rat::ONE;
        for k in 0..n {
            let Some(p) = (k..n).find(|&i| !a[(i, k)].is_zero()) else {
                return Ok(Rat::ZERO);
            };
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                det = -det;
            }
            det = det * a[(k, k)];
            let pivot = a[(k, k)];
            for i in k + 1..n {
                if a[(i, k)].is_zero() {
                    continue;
                }
                let f = a[(i, k)] / pivot;
                for j in k..n {
                    a[(i, j)] = a[(i, j)] - f * a[(k, j)];
                }
            }
        }
        Ok(det)
    }

    /// Exact inverse by Gauss–Jordan elimination.
    pub fn inverse(&self) -> Result<RMat> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.rows, self.rows),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RMat::identity(n);
        for k in 0..n {
            let Some(p) = (k..n).find(|&i| !a[(i, k)].is_zero()) else {
                return Err(LinalgError::Singular);
            };
            if p != k {
                for j in 0..n {
                    let (x, y) = (a[(k, j)], a[(p, j)]);
                    a[(k, j)] = y;
                    a[(p, j)] = x;
                    let (x, y) = (inv[(k, j)], inv[(p, j)]);
                    inv[(k, j)] = y;
                    inv[(p, j)] = x;
                }
            }
            let pivot = a[(k, k)];
            for j in 0..n {
                a[(k, j)] = a[(k, j)] / pivot;
                inv[(k, j)] = inv[(k, j)] / pivot;
            }
            for i in 0..n {
                if i == k || a[(i, k)].is_zero() {
                    continue;
                }
                let f = a[(i, k)];
                for j in 0..n {
                    a[(i, j)] = a[(i, j)] - f * a[(k, j)];
                    inv[(i, j)] = inv[(i, j)] - f * inv[(k, j)];
                }
            }
        }
        Ok(inv)
    }
}

impl std::ops::Index<(usize, usize)> for RMat {
    type Output = Rat;
    fn index(&self, (i, j): (usize, usize)) -> &Rat {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for RMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rat {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i128, d: i128) -> Rat {
        Rat::new(n, d)
    }

    #[test]
    fn inverse_2x2() {
        let m = RMat::from_int(&IMat::from_rows(&[&[1, 1], &[1, -1]]));
        let inv = m.inverse().unwrap();
        assert_eq!(inv[(0, 0)], r(1, 2));
        assert_eq!(inv[(0, 1)], r(1, 2));
        assert_eq!(inv[(1, 0)], r(1, 2));
        assert_eq!(inv[(1, 1)], r(-1, 2));
        assert_eq!(m.mul(&inv).unwrap(), RMat::identity(2));
    }

    #[test]
    fn inverse_singular_errors() {
        let m = RMat::from_int(&IMat::from_rows(&[&[1, 2], &[2, 4]]));
        assert_eq!(m.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn det_matches_integer_det() {
        let m = IMat::from_rows(&[&[2, 0, 1], &[1, 3, 2], &[1, 1, 1]]);
        assert_eq!(
            RMat::from_int(&m).det().unwrap(),
            Rat::int(m.det().unwrap())
        );
    }

    #[test]
    fn to_int_round_trip() {
        let m = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(RMat::from_int(&m).to_int(), Some(m));
        let half = RMat::from_rows(&[&[r(1, 2)]]);
        assert_eq!(half.to_int(), None);
    }

    fn arb_invertible(n: usize) -> impl Strategy<Value = RMat> {
        proptest::collection::vec(-5i128..=5, n * n)
            .prop_map(move |v| IMat::from_vec(n, n, v))
            .prop_filter("nonsingular", |m| m.is_nonsingular())
            .prop_map(|m| RMat::from_int(&m))
    }

    proptest! {
        #[test]
        fn inverse_round_trip(m in arb_invertible(3)) {
            let inv = m.inverse().unwrap();
            prop_assert_eq!(m.mul(&inv).unwrap(), RMat::identity(3));
            prop_assert_eq!(inv.mul(&m).unwrap(), RMat::identity(3));
        }

        #[test]
        fn det_inverse_reciprocal(m in arb_invertible(3)) {
            let d = m.det().unwrap();
            let di = m.inverse().unwrap().det().unwrap();
            prop_assert_eq!(d * di, Rat::ONE);
        }
    }
}
