//! A small exact Fourier–Motzkin eliminator over rational linear
//! inequalities.
//!
//! Two consumers share this machinery: `alp-codegen` derives scanning
//! bounds for parallelepiped tiles (§3.7 notes that rectangular tiles
//! make code generation easy; this module is what "hard" costs for the
//! general case), and `alp-analysis` bounds the coefficient search when
//! intersecting a dependence-solution lattice with the loop bounds.

use crate::rat::Rat;

/// A linear inequality `Σ coeffs[k]·x_k ≤ bound`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficients over the variables.
    pub coeffs: Vec<Rat>,
    /// Right-hand side.
    pub bound: Rat,
}

impl Constraint {
    /// Build a constraint.
    pub fn new(coeffs: Vec<Rat>, bound: Rat) -> Self {
        Constraint { coeffs, bound }
    }

    fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(Rat::is_zero)
    }
}

/// A conjunction of inequalities over `vars` variables.
#[derive(Debug, Clone, Default)]
pub struct System {
    /// The constraints.
    pub constraints: Vec<Constraint>,
    /// Number of variables.
    pub vars: usize,
}

impl System {
    /// Empty system over `vars` variables.
    pub fn new(vars: usize) -> Self {
        System {
            constraints: Vec::new(),
            vars,
        }
    }

    /// Add `Σ c_k x_k ≤ b`.
    pub fn le(&mut self, coeffs: Vec<Rat>, bound: Rat) {
        assert_eq!(coeffs.len(), self.vars);
        self.constraints.push(Constraint::new(coeffs, bound));
    }

    /// Add `Σ c_k x_k ≥ b` (stored negated).
    pub fn ge(&mut self, coeffs: Vec<Rat>, bound: Rat) {
        let neg = coeffs.into_iter().map(|c| -c).collect();
        self.le(neg, -bound);
    }

    /// True when a constraint `0 ≤ negative` proves infeasibility.
    pub fn trivially_infeasible(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.is_trivial() && c.bound < Rat::ZERO)
    }

    /// Bounds on variable `k` implied by constraints that mention only
    /// `x_k` (call after eliminating the others): returns
    /// `(max lower, min upper)` as rationals, `None` side if unbounded.
    pub fn interval(&self, k: usize) -> (Option<Rat>, Option<Rat>) {
        let mut lo: Option<Rat> = None;
        let mut hi: Option<Rat> = None;
        for c in &self.constraints {
            let ck = c.coeffs[k];
            if ck.is_zero() {
                continue;
            }
            if c.coeffs
                .iter()
                .enumerate()
                .any(|(j, v)| j != k && !v.is_zero())
            {
                continue; // mentions other variables
            }
            let b = c.bound / ck;
            if ck > Rat::ZERO {
                hi = Some(match hi {
                    Some(h) if h <= b => h,
                    _ => b,
                });
            } else {
                lo = Some(match lo {
                    Some(l) if l >= b => l,
                    _ => b,
                });
            }
        }
        (lo, hi)
    }
}

/// Eliminate variable `k`: pair every upper constraint on `x_k` with
/// every lower constraint, producing a system over the remaining
/// variables (coefficients of `x_k` become zero).  Standard
/// Fourier–Motzkin; exponential in the worst case, fine for tile systems
/// (≤ 2·l constraints).
pub fn eliminate(sys: &System, k: usize) -> System {
    let mut uppers = Vec::new(); // c_k > 0
    let mut lowers = Vec::new(); // c_k < 0
    let mut rest = Vec::new();
    for c in &sys.constraints {
        let ck = c.coeffs[k];
        if ck > Rat::ZERO {
            uppers.push(c.clone());
        } else if ck < Rat::ZERO {
            lowers.push(c.clone());
        } else {
            rest.push(c.clone());
        }
    }
    let mut out = System::new(sys.vars);
    out.constraints = rest;
    for u in &uppers {
        for l in &lowers {
            // u: a·x ≤ b with a_k > 0;  l: c·x ≤ d with c_k < 0.
            // Scale to cancel x_k: (-c_k)·u + a_k·l.
            let au = u.coeffs[k];
            let cl = l.coeffs[k];
            let coeffs: Vec<Rat> = (0..sys.vars)
                .map(|j| (-cl) * u.coeffs[j] + au * l.coeffs[j])
                .collect();
            let bound = (-cl) * u.bound + au * l.bound;
            let c = Constraint::new(coeffs, bound);
            debug_assert!(c.coeffs[k].is_zero());
            if !(c.is_trivial() && c.bound >= Rat::ZERO) {
                out.constraints.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn box_bounds() {
        // 0 ≤ x ≤ 3, 0 ≤ y ≤ 5.
        let mut s = System::new(2);
        s.ge(vec![r(1), r(0)], r(0));
        s.le(vec![r(1), r(0)], r(3));
        s.ge(vec![r(0), r(1)], r(0));
        s.le(vec![r(0), r(1)], r(5));
        assert_eq!(s.interval(0), (Some(r(0)), Some(r(3))));
        assert_eq!(s.interval(1), (Some(r(0)), Some(r(5))));
        // Eliminating y leaves x's bounds intact.
        let e = eliminate(&s, 1);
        assert_eq!(e.interval(0), (Some(r(0)), Some(r(3))));
    }

    #[test]
    fn triangle_projection() {
        // x ≥ 0, y ≥ 0, x + y ≤ 4: eliminating y gives 0 ≤ x ≤ 4.
        let mut s = System::new(2);
        s.ge(vec![r(1), r(0)], r(0));
        s.ge(vec![r(0), r(1)], r(0));
        s.le(vec![r(1), r(1)], r(4));
        let e = eliminate(&s, 1);
        assert_eq!(e.interval(0), (Some(r(0)), Some(r(4))));
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 3.
        let mut s = System::new(1);
        s.le(vec![r(1)], r(1));
        s.ge(vec![r(1)], r(3));
        let e = eliminate(&s, 0);
        assert!(e.trivially_infeasible());
    }

    #[test]
    fn parallelogram_scan_bounds() {
        // Tile of Example 6: points i = a·(L1,L1) + b·(L2,0), 0≤a,b≤1,
        // with L1=4, L2=3.  In iteration coordinates (x, y):
        // y = 4a -> 0 ≤ y ≤ 4; x = 4a + 3b = y + 3b -> y ≤ x ≤ y + 3.
        // System over (x, y): 0 ≤ y ≤ 4, 0 ≤ x − y ≤ 3.
        let mut s = System::new(2);
        s.ge(vec![r(0), r(1)], r(0));
        s.le(vec![r(0), r(1)], r(4));
        s.ge(vec![r(1), r(-1)], r(0));
        s.le(vec![r(1), r(-1)], r(3));
        // Outer variable x: eliminate y.
        let e = eliminate(&s, 1);
        assert_eq!(e.interval(0), (Some(r(0)), Some(r(7))));
        // For fixed x, y's bounds mention x: check by substitution at x=5:
        // y ≥ x-3 = 2, y ≤ min(4, x) = 4.
        let mut s5 = System::new(2);
        for c in &s.constraints {
            // substitute x = 5
            let b = c.bound - c.coeffs[0] * r(5);
            s5.le(vec![r(0), c.coeffs[1]], b);
        }
        assert_eq!(s5.interval(1), (Some(r(2)), Some(r(4))));
    }

    #[test]
    fn rational_coefficients() {
        // x/2 ≤ 3 -> x ≤ 6.
        let mut s = System::new(1);
        s.le(vec![Rat::new(1, 2)], r(3));
        assert_eq!(s.interval(0), (None, Some(r(6))).clone());
    }
}
