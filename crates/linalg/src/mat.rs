//! Dense integer matrices with exact arithmetic.

use crate::num::gcd;
use crate::vec::IVec;
use crate::{LinalgError, Result};

/// A dense integer matrix, row-major, with `i128` entries.
///
/// In the paper's notation: reference matrices `G` are `l×d` (loop depth by
/// array rank), tile matrices `L` are `l×l`, and the footprint
/// parallelepiped is described by the product `L·G`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i128>,
}

impl IMat {
    /// Build a matrix from nested slices of rows.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[i128]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        IMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i128>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        IMat { rows, cols, data }
    }

    /// Build from a list of row vectors.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_row_vecs(rows: &[IVec]) -> Self {
        let slices: Vec<&[i128]> = rows.iter().map(|r| r.0.as_slice()).collect();
        Self::from_rows(&slices)
    }

    /// The `n×n` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n×n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Diagonal matrix with the given entries.
    pub fn diag(entries: &[i128]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Copy of row `i` as a vector.
    pub fn row(&self, i: usize) -> IVec {
        IVec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Copy of column `j` as a vector.
    pub fn col(&self, j: usize) -> IVec {
        IVec((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// All rows as vectors.
    pub fn row_vecs(&self) -> Vec<IVec> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Replace row `i` with `v` (used for the `LG_{i→â}` matrices of
    /// Theorem 2).
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn with_row(&self, i: usize, v: &IVec) -> IMat {
        assert_eq!(v.len(), self.cols, "row length mismatch");
        let mut m = self.clone();
        m.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(&v.0);
        m
    }

    /// The transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix sum.
    pub fn add(&self, other: &IMat) -> Result<IMat> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(self.shape_err(other));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &IMat) -> Result<IMat> {
        if self.cols != other.rows {
            return Err(self.shape_err(other));
        }
        let mut out = IMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Row-vector × matrix product (`v · self`), the paper's `ī·G`.
    pub fn apply_row(&self, v: &IVec) -> Result<IVec> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                left: (1, v.len()),
                right: (self.rows, self.cols),
            });
        }
        let mut out = vec![0i128; self.cols];
        for (i, &vi) in v.0.iter().enumerate() {
            if vi == 0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self[(i, j)];
            }
        }
        Ok(IVec(out))
    }

    /// Scalar multiple.
    pub fn scale(&self, k: i128) -> IMat {
        IMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Determinant by Bareiss fraction-free elimination — exact, no
    /// rationals required.
    pub fn det(&self) -> Result<i128> {
        if !self.is_square() {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.rows, self.rows),
            });
        }
        let n = self.rows;
        if n == 0 {
            return Ok(1); // det of the empty matrix is 1 by convention
        }
        let mut a = self.data.clone();
        let idx = |i: usize, j: usize| i * n + j;
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            // Pivot: find a nonzero entry in column k at or below row k.
            if a[idx(k, k)] == 0 {
                let Some(p) = (k + 1..n).find(|&i| a[idx(i, k)] != 0) else {
                    return Ok(0);
                };
                for j in 0..n {
                    a.swap(idx(k, j), idx(p, j));
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = a[idx(i, j)]
                        .checked_mul(a[idx(k, k)])
                        .and_then(|x| {
                            a[idx(i, k)]
                                .checked_mul(a[idx(k, j)])
                                .and_then(|y| x.checked_sub(y))
                        })
                        .expect("determinant overflow");
                    debug_assert_eq!(num % prev, 0, "Bareiss divisibility invariant");
                    a[idx(i, j)] = num / prev;
                }
                a[idx(i, k)] = 0;
            }
            prev = a[idx(k, k)];
        }
        Ok(sign * a[idx(n - 1, n - 1)])
    }

    /// Rank over the rationals (via fraction-free elimination).
    pub fn rank(&self) -> usize {
        let mut a = self.data.clone();
        let (r, c) = (self.rows, self.cols);
        let idx = |i: usize, j: usize| i * c + j;
        let mut rank = 0;
        let mut row = 0;
        for col in 0..c {
            if row >= r {
                break;
            }
            let Some(p) = (row..r).find(|&i| a[idx(i, col)] != 0) else {
                continue;
            };
            if p != row {
                for j in 0..c {
                    a.swap(idx(row, j), idx(p, j));
                }
            }
            for i in row + 1..r {
                if a[idx(i, col)] == 0 {
                    continue;
                }
                let g = gcd(a[idx(i, col)], a[idx(row, col)]);
                let (fi, fr) = (a[idx(row, col)] / g, a[idx(i, col)] / g);
                for j in 0..c {
                    a[idx(i, j)] = a[idx(i, j)] * fi - a[idx(row, j)] * fr;
                }
            }
            row += 1;
            rank += 1;
        }
        rank
    }

    /// True if the matrix is square with determinant ±1 (Theorem 1's
    /// condition for `LG` to coincide with the footprint).
    pub fn is_unimodular(&self) -> bool {
        self.is_square() && matches!(self.det(), Ok(1) | Ok(-1))
    }

    /// True if the matrix is square with nonzero determinant (Theorem 4's
    /// condition).
    pub fn is_nonsingular(&self) -> bool {
        self.is_square() && matches!(self.det(), Ok(d) if d != 0)
    }

    /// Determinant of the submatrix with row `skip_r` and column
    /// `skip_c` removed (a first minor), used by the adjugate.
    fn minor_det(&self, skip_r: usize, skip_c: usize) -> i128 {
        let n = self.rows;
        let mut sub = IMat::zeros(n - 1, n - 1);
        let mut si = 0;
        for i in 0..n {
            if i == skip_r {
                continue;
            }
            let mut sj = 0;
            for j in 0..n {
                if j == skip_c {
                    continue;
                }
                sub[(si, sj)] = self[(i, j)];
                sj += 1;
            }
            si += 1;
        }
        sub.det().expect("minor of a square matrix is square")
    }

    /// Exact inverse of a unimodular matrix, via the adjugate:
    /// `U⁻¹ = adj(U) / det(U)`, which is integral exactly when
    /// `det(U) = ±1`.  This is the inverse loop transformation of the
    /// skewed-tile pipeline: with the row-vector convention `j = i·U`,
    /// the original indices are recovered as `i = j·U⁻¹` without any
    /// rational arithmetic.
    ///
    /// Returns [`LinalgError::NotIntegral`] when the determinant is not
    /// ±1 (the inverse exists over the rationals but not the integers)
    /// and [`LinalgError::Singular`] for a singular matrix.
    pub fn unimodular_inverse(&self) -> Result<IMat> {
        if !self.is_square() {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.rows, self.rows),
            });
        }
        let det = self.det()?;
        if det == 0 {
            return Err(LinalgError::Singular);
        }
        if det != 1 && det != -1 {
            return Err(LinalgError::NotIntegral);
        }
        let n = self.rows;
        if n == 0 {
            return Ok(IMat::zeros(0, 0));
        }
        let mut inv = IMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // Cofactor C_ji transposed into (i, j): the adjugate.
                let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
                inv[(i, j)] = sign * self.minor_det(j, i) * det;
            }
        }
        Ok(inv)
    }

    /// Keep only the columns listed in `keep`, in order.
    pub fn select_columns(&self, keep: &[usize]) -> IMat {
        let mut m = IMat::zeros(self.rows, keep.len());
        for i in 0..self.rows {
            for (jj, &j) in keep.iter().enumerate() {
                m[(i, jj)] = self[(i, j)];
            }
        }
        m
    }

    /// Indices of columns that are not identically zero.  Example 1 of the
    /// paper: zero columns of `G` make the subscript constant and are
    /// dropped, lowering the effective array dimension.
    pub fn nonzero_columns(&self) -> Vec<usize> {
        (0..self.cols)
            .filter(|&j| (0..self.rows).any(|i| self[(i, j)] != 0))
            .collect()
    }

    /// Iterate over entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = i128> + '_ {
        self.data.iter().copied()
    }

    fn shape_err(&self, other: &IMat) -> LinalgError {
        LinalgError::ShapeMismatch {
            left: (self.rows, self.cols),
            right: (other.rows, other.cols),
        }
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i128;
    fn index(&self, (i, j): (usize, usize)) -> &i128 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i128 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for IMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construct_and_index() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.row(0), IVec::new(&[1, 2, 3]));
        assert_eq!(m.col(1), IVec::new(&[2, 5]));
    }

    #[test]
    fn identity_and_diag() {
        let i = IMat::identity(3);
        assert_eq!(i.det().unwrap(), 1);
        let d = IMat::diag(&[2, 3, 4]);
        assert_eq!(d.det().unwrap(), 24);
    }

    #[test]
    fn matmul() {
        let a = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        let b = IMat::from_rows(&[&[5, 6], &[7, 8]]);
        assert_eq!(a.mul(&b).unwrap(), IMat::from_rows(&[&[19, 22], &[43, 50]]));
        let i = IMat::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = IMat::from_rows(&[&[1, 2, 3]]);
        let b = IMat::from_rows(&[&[1, 2]]);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn apply_row_matches_paper_example1() {
        // Example 1: A(i3+2, 5, i2-1, 4) in a triply nested loop.
        let g = IMat::from_rows(&[&[0, 0, 0, 0], &[0, 0, 1, 0], &[1, 0, 0, 0]]);
        let a = IVec::new(&[2, 5, -1, 4]);
        let i = IVec::new(&[10, 20, 30]);
        let d = g.apply_row(&i).unwrap().add(&a).unwrap();
        assert_eq!(d, IVec::new(&[32, 5, 19, 4]));
        // Columns 1 and 3 (0-based) are zero: subscripts 2 and 4 are constant.
        assert_eq!(g.nonzero_columns(), vec![0, 2]);
    }

    #[test]
    fn det_2x2_3x3() {
        assert_eq!(IMat::from_rows(&[&[1, 1], &[1, -1]]).det().unwrap(), -2);
        assert_eq!(IMat::from_rows(&[&[1, 0], &[1, 1]]).det().unwrap(), 1);
        let m = IMat::from_rows(&[&[2, 0, 1], &[1, 3, 2], &[1, 1, 1]]);
        // Cofactor expansion along the first row: 2*(3-2) + 1*(1-3) = 0.
        assert_eq!(m.det().unwrap(), 0);
    }

    #[test]
    fn det_singular_and_pivoting() {
        assert_eq!(IMat::from_rows(&[&[1, 2], &[2, 4]]).det().unwrap(), 0);
        // Zero pivot forces a row swap.
        assert_eq!(IMat::from_rows(&[&[0, 1], &[1, 0]]).det().unwrap(), -1);
        assert_eq!(
            IMat::from_rows(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]])
                .det()
                .unwrap(),
            -1
        );
    }

    #[test]
    fn det_nonsquare_errors() {
        assert!(IMat::from_rows(&[&[1, 2, 3]]).det().is_err());
    }

    #[test]
    fn rank_cases() {
        assert_eq!(IMat::from_rows(&[&[1, 2], &[2, 4]]).rank(), 1);
        assert_eq!(IMat::from_rows(&[&[1, 2], &[3, 4]]).rank(), 2);
        assert_eq!(IMat::zeros(3, 3).rank(), 0);
        // Example 7: G = [[1,2,1],[0,0,1]] has rank 2.
        assert_eq!(IMat::from_rows(&[&[1, 2, 1], &[0, 0, 1]]).rank(), 2);
    }

    #[test]
    fn unimodularity() {
        assert!(IMat::from_rows(&[&[1, 0], &[1, 1]]).is_unimodular());
        assert!(!IMat::from_rows(&[&[1, 1], &[1, -1]]).is_unimodular()); // det -2
        assert!(IMat::from_rows(&[&[1, 1], &[1, -1]]).is_nonsingular());
        assert!(!IMat::from_rows(&[&[1, 2], &[2, 4]]).is_nonsingular());
    }

    #[test]
    fn with_row_replaces() {
        let m = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        let r = m.with_row(0, &IVec::new(&[9, 9]));
        assert_eq!(r, IMat::from_rows(&[&[9, 9], &[3, 4]]));
        assert_eq!(m[(0, 0)], 1, "original untouched");
    }

    #[test]
    fn select_columns_subsets() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(
            m.select_columns(&[0, 2]),
            IMat::from_rows(&[&[1, 3], &[4, 6]])
        );
        assert_eq!(m.select_columns(&[]), IMat::zeros(2, 0));
    }

    #[test]
    fn unimodular_inverse_round_trips() {
        let u = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        let v = u.unimodular_inverse().unwrap();
        assert_eq!(v, IMat::from_rows(&[&[1, -1], &[0, 1]]));
        assert_eq!(u.mul(&v).unwrap(), IMat::identity(2));
        assert_eq!(v.mul(&u).unwrap(), IMat::identity(2));
        // det = -1 also divides exactly.
        let w = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(w.unimodular_inverse().unwrap(), w);
        // 3-D skew.
        let u3 = IMat::from_rows(&[&[1, 0, 0], &[2, 1, 0], &[-1, 3, 1]]);
        let v3 = u3.unimodular_inverse().unwrap();
        assert_eq!(u3.mul(&v3).unwrap(), IMat::identity(3));
    }

    #[test]
    fn unimodular_inverse_rejects_bad_matrices() {
        assert_eq!(
            IMat::from_rows(&[&[1, 2], &[2, 4]]).unimodular_inverse(),
            Err(LinalgError::Singular)
        );
        assert_eq!(
            IMat::from_rows(&[&[2, 0], &[0, 1]]).unimodular_inverse(),
            Err(LinalgError::NotIntegral)
        );
        assert!(IMat::from_rows(&[&[1, 2, 3]]).unimodular_inverse().is_err());
    }

    fn arb_mat(n: usize) -> impl Strategy<Value = IMat> {
        proptest::collection::vec(-6i128..=6, n * n).prop_map(move |v| IMat::from_vec(n, n, v))
    }

    proptest! {
        #[test]
        fn det_transpose_invariant(m in arb_mat(3)) {
            prop_assert_eq!(m.det().unwrap(), m.transpose().det().unwrap());
        }

        #[test]
        fn det_multiplicative(a in arb_mat(3), b in arb_mat(3)) {
            let ab = a.mul(&b).unwrap();
            prop_assert_eq!(ab.det().unwrap(), a.det().unwrap() * b.det().unwrap());
        }

        #[test]
        fn det_row_swap_negates(m in arb_mat(3)) {
            let mut sw = m.clone();
            let r0 = m.row(0);
            let r1 = m.row(1);
            sw = sw.with_row(0, &r1).with_row(1, &r0);
            prop_assert_eq!(sw.det().unwrap(), -m.det().unwrap());
        }

        #[test]
        fn rank_full_iff_nonzero_det(m in arb_mat(3)) {
            prop_assert_eq!(m.rank() == 3, m.det().unwrap() != 0);
        }

        #[test]
        fn unimodular_inverse_is_exact(m in arb_mat(3)) {
            // Whenever the inverse exists it is the exact two-sided
            // inverse, and it exists precisely for det = ±1.
            match m.unimodular_inverse() {
                Ok(inv) => {
                    prop_assert!(m.is_unimodular());
                    prop_assert_eq!(m.mul(&inv).unwrap(), IMat::identity(3));
                    prop_assert_eq!(inv.mul(&m).unwrap(), IMat::identity(3));
                }
                Err(_) => prop_assert!(!m.is_unimodular()),
            }
        }

        #[test]
        fn apply_row_linear(m in arb_mat(3), v in proptest::collection::vec(-10i128..=10, 3), w in proptest::collection::vec(-10i128..=10, 3)) {
            let v = IVec(v);
            let w = IVec(w);
            let lhs = m.apply_row(&v.add(&w).unwrap()).unwrap();
            let rhs = m.apply_row(&v).unwrap().add(&m.apply_row(&w).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
