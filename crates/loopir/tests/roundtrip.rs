//! Property tests: the pretty-printer and the parser are inverses, and
//! the `(G, ā)` extraction is faithful to evaluation.

use alp_linalg::IVec;
use alp_loopir::{parse, AccessKind, AffineExpr, ArrayRef, LoopIndex, LoopNest, Statement};
use proptest::prelude::*;

/// Generate a random affine expression over `depth` indices.
fn arb_expr(depth: usize) -> impl Strategy<Value = AffineExpr> {
    (proptest::collection::vec(-4i128..=4, depth), -9i128..=9)
        .prop_map(|(coeffs, c)| AffineExpr::new(coeffs, c))
}

/// Generate a random reference to one of a few arrays.
fn arb_ref(depth: usize, kind: AccessKind) -> impl Strategy<Value = ArrayRef> {
    (
        prop_oneof![Just("A"), Just("B"), Just("C")],
        proptest::collection::vec(arb_expr(depth), 1..=3),
    )
        .prop_map(move |(name, subs)| ArrayRef::new(name, subs, kind))
}

/// Generate a random valid nest (consistent array dimensionality).
fn arb_nest() -> impl Strategy<Value = LoopNest> {
    (1usize..=3).prop_flat_map(|depth| {
        let loops: Vec<LoopIndex> = (0..depth)
            .map(|k| LoopIndex::new(format!("i{k}"), 0, 7))
            .collect();
        proptest::collection::vec(
            (
                arb_ref(depth, AccessKind::Write),
                proptest::collection::vec(arb_ref(depth, AccessKind::Read), 0..=3),
            ),
            1..=3,
        )
        .prop_filter_map("consistent array dims", move |stmts| {
            let body: Vec<Statement> = stmts
                .into_iter()
                .map(|(lhs, rhs)| Statement::new(lhs, rhs))
                .collect();
            LoopNest::new(loops.clone(), body).ok()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(nest in arb_nest()) {
        let text = nest.display();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        prop_assert_eq!(nest, reparsed);
    }

    #[test]
    fn g_matrix_matches_eval(nest in arb_nest(), point in proptest::collection::vec(0i128..=7, 3)) {
        let depth = nest.depth();
        let i = IVec(point[..depth].to_vec());
        for r in nest.all_refs() {
            let direct = r.eval(&i);
            let via_matrix = r
                .g_matrix()
                .apply_row(&i)
                .unwrap()
                .add(&r.offset())
                .unwrap();
            prop_assert_eq!(direct, via_matrix);
        }
    }

    #[test]
    fn iteration_count_matches_enumeration(nest in arb_nest()) {
        prop_assert_eq!(nest.iteration_points().len() as i128, nest.iteration_count());
    }

    #[test]
    fn strided_parse_matches_manual_substitution(
        lo in -8i128..=8,
        s in 1i128..=5,
        trips in 1i128..=12,
        c in -4i128..=4,
        d in -9i128..=9,
        slack in 0i128..=4,
    ) {
        // Upper bound lands `slack` short of the next lattice point, so
        // the trip count is exactly `trips` regardless.
        let hi = lo + s * (trips - 1) + slack.min(s - 1);
        let src = format!("doall (i, {lo}, {hi}, {s}) {{ A[{c}*i + {d}] = A[{c}*i + {d}]; }}");
        let n = parse(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        prop_assert_eq!(n.iteration_count(), trips);
        // The normalized subscript touches exactly the strided image.
        let want: std::collections::BTreeSet<i128> =
            (0..trips).map(|t| c * (lo + s * t) + d).collect();
        let sub = &n.body[0].lhs.subscripts[0];
        let got: std::collections::BTreeSet<i128> = (n.loops[0].lower..=n.loops[0].upper)
            .map(|i| sub.coeffs[0] * i + sub.constant)
            .collect();
        prop_assert_eq!(got, want);
        // display() emits the unit-stride form, which reparses exactly.
        let reparsed = parse(&n.display()).unwrap();
        prop_assert_eq!(n, reparsed);
    }

    #[test]
    fn strided_2d_iteration_space_is_the_lattice_product(
        (lo_i, s_i, trips_i) in (-4i128..=4, 1i128..=4, 1i128..=6),
        (lo_j, s_j, trips_j) in (-4i128..=4, 1i128..=4, 1i128..=6),
    ) {
        let hi_i = lo_i + s_i * (trips_i - 1);
        let hi_j = lo_j + s_j * (trips_j - 1);
        let src = format!(
            "doall (i, {lo_i}, {hi_i}, {s_i}) {{ doall (j, {lo_j}, {hi_j}, {s_j}) {{
               A[i + j, i - j] = A[i + j, i - j]; }} }}"
        );
        let n = parse(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        prop_assert_eq!(n.iteration_count(), trips_i * trips_j);
        // Every touched (row, col) pair of the original strided space.
        let want: std::collections::BTreeSet<(i128, i128)> = (0..trips_i)
            .flat_map(|a| (0..trips_j).map(move |b| {
                let (i, j) = (lo_i + s_i * a, lo_j + s_j * b);
                (i + j, i - j)
            }))
            .collect();
        let r = &n.body[0].lhs;
        let got: std::collections::BTreeSet<(i128, i128)> = n
            .iteration_points()
            .iter()
            .map(|p| { let v = r.eval(p); (v.0[0], v.0[1]) })
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn array_extents_cover_all_accesses(nest in arb_nest()) {
        let ext = nest.array_extents();
        for i in nest.iteration_points().iter().take(64) {
            for r in nest.all_refs() {
                let d = r.eval(i);
                let e = &ext[&r.array];
                for (x, &(lo, hi)) in d.0.iter().zip(e) {
                    prop_assert!(lo <= *x && *x <= hi, "{}[{}] outside {:?}", r.array, d, e);
                }
            }
        }
    }
}
