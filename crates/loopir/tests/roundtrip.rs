//! Property tests: the pretty-printer and the parser are inverses, and
//! the `(G, ā)` extraction is faithful to evaluation.

use alp_linalg::IVec;
use alp_loopir::{parse, AccessKind, AffineExpr, ArrayRef, LoopIndex, LoopNest, Statement};
use proptest::prelude::*;

/// Generate a random affine expression over `depth` indices.
fn arb_expr(depth: usize) -> impl Strategy<Value = AffineExpr> {
    (proptest::collection::vec(-4i128..=4, depth), -9i128..=9)
        .prop_map(|(coeffs, c)| AffineExpr::new(coeffs, c))
}

/// Generate a random reference to one of a few arrays.
fn arb_ref(depth: usize, kind: AccessKind) -> impl Strategy<Value = ArrayRef> {
    (
        prop_oneof![Just("A"), Just("B"), Just("C")],
        proptest::collection::vec(arb_expr(depth), 1..=3),
    )
        .prop_map(move |(name, subs)| ArrayRef::new(name, subs, kind))
}

/// Generate a random valid nest (consistent array dimensionality).
fn arb_nest() -> impl Strategy<Value = LoopNest> {
    (1usize..=3).prop_flat_map(|depth| {
        let loops: Vec<LoopIndex> = (0..depth)
            .map(|k| LoopIndex::new(format!("i{k}"), 0, 7))
            .collect();
        proptest::collection::vec(
            (
                arb_ref(depth, AccessKind::Write),
                proptest::collection::vec(arb_ref(depth, AccessKind::Read), 0..=3),
            ),
            1..=3,
        )
        .prop_filter_map("consistent array dims", move |stmts| {
            let body: Vec<Statement> = stmts
                .into_iter()
                .map(|(lhs, rhs)| Statement::new(lhs, rhs))
                .collect();
            LoopNest::new(loops.clone(), body).ok()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(nest in arb_nest()) {
        let text = nest.display();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        prop_assert_eq!(nest, reparsed);
    }

    #[test]
    fn g_matrix_matches_eval(nest in arb_nest(), point in proptest::collection::vec(0i128..=7, 3)) {
        let depth = nest.depth();
        let i = IVec(point[..depth].to_vec());
        for r in nest.all_refs() {
            let direct = r.eval(&i);
            let via_matrix = r
                .g_matrix()
                .apply_row(&i)
                .unwrap()
                .add(&r.offset())
                .unwrap();
            prop_assert_eq!(direct, via_matrix);
        }
    }

    #[test]
    fn iteration_count_matches_enumeration(nest in arb_nest()) {
        prop_assert_eq!(nest.iteration_points().len() as i128, nest.iteration_count());
    }

    #[test]
    fn array_extents_cover_all_accesses(nest in arb_nest()) {
        let ext = nest.array_extents();
        for i in nest.iteration_points().iter().take(64) {
            for r in nest.all_refs() {
                let d = r.eval(i);
                let e = &ext[&r.array];
                for (x, &(lo, hi)) in d.0.iter().zip(e) {
                    prop_assert!(lo <= *x && *x <= hi, "{}[{}] outside {:?}", r.array, d, e);
                }
            }
        }
    }
}
