//! Affine subscript expressions.

use alp_linalg::IVec;

/// One affine subscript: `c₁·i₁ + c₂·i₂ + … + c_l·i_l + constant`.
///
/// A subscript is one column of the paper's reference matrix `G` together
/// with one component of the offset vector `ā` (Eq. 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// Coefficient of each loop index, outermost first; length = nest depth.
    pub coeffs: Vec<i128>,
    /// The constant term.
    pub constant: i128,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(depth: usize, c: i128) -> Self {
        AffineExpr {
            coeffs: vec![0; depth],
            constant: c,
        }
    }

    /// The single index `i_k` (0-based) in a nest of the given depth, with
    /// unit coefficient and no offset.
    ///
    /// # Panics
    /// Panics if `k >= depth`.
    pub fn index(depth: usize, k: usize) -> Self {
        assert!(k < depth, "index out of nest");
        let mut coeffs = vec![0; depth];
        coeffs[k] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Build from explicit coefficients and constant.
    pub fn new(coeffs: Vec<i128>, constant: i128) -> Self {
        AffineExpr { coeffs, constant }
    }

    /// Nest depth this expression is written against.
    pub fn depth(&self) -> usize {
        self.coeffs.len()
    }

    /// Add another expression (matching depth).
    ///
    /// # Panics
    /// Panics on depth mismatch.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        assert_eq!(self.depth(), other.depth(), "depth mismatch");
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Scale by an integer.
    pub fn scale(&self, k: i128) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Add a constant.
    pub fn offset(&self, c: i128) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.clone(),
            constant: self.constant + c,
        }
    }

    /// Evaluate at an iteration point.
    ///
    /// # Panics
    /// Panics on depth mismatch.
    pub fn eval(&self, i: &IVec) -> i128 {
        assert_eq!(i.len(), self.depth(), "depth mismatch");
        self.constant
            + self
                .coeffs
                .iter()
                .zip(&i.0)
                .map(|(c, x)| c * x)
                .sum::<i128>()
    }

    /// True when no loop index appears (a pure constant subscript —
    /// Example 1's droppable dimensions).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Render using the given index names.
    pub fn display(&self, names: &[String]) -> String {
        let mut s = String::new();
        for (c, n) in self.coeffs.iter().zip(names) {
            match *c {
                0 => {}
                1 => {
                    if !s.is_empty() {
                        s.push('+');
                    }
                    s.push_str(n);
                }
                -1 => {
                    s.push('-');
                    s.push_str(n);
                }
                c if c > 0 => {
                    if !s.is_empty() {
                        s.push('+');
                    }
                    s.push_str(&format!("{c}*{n}"));
                }
                c => s.push_str(&format!("{c}*{n}")),
            }
        }
        if self.constant != 0 || s.is_empty() {
            if self.constant >= 0 && !s.is_empty() {
                s.push('+');
            }
            s.push_str(&self.constant.to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let i = AffineExpr::index(3, 0);
        let j = AffineExpr::index(3, 1);
        let e = i.add(&j.scale(2)).offset(-1); // i + 2j - 1
        assert_eq!(e.coeffs, vec![1, 2, 0]);
        assert_eq!(e.constant, -1);
        assert!(!e.is_constant());
        assert!(AffineExpr::constant(3, 5).is_constant());
    }

    #[test]
    fn evaluation() {
        let e = AffineExpr::new(vec![1, 2], -1); // i + 2j - 1
        assert_eq!(e.eval(&IVec::new(&[3, 4])), 3 + 8 - 1);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn eval_depth_checked() {
        AffineExpr::new(vec![1, 2], 0).eval(&IVec::new(&[1]));
    }

    #[test]
    fn rendering() {
        let names = vec!["i".to_string(), "j".to_string()];
        assert_eq!(AffineExpr::new(vec![1, 1], 0).display(&names), "i+j");
        assert_eq!(AffineExpr::new(vec![1, -1], -1).display(&names), "i-j-1");
        assert_eq!(AffineExpr::new(vec![2, 0], 3).display(&names), "2*i+3");
        assert_eq!(AffineExpr::new(vec![0, 0], 5).display(&names), "5");
        assert_eq!(AffineExpr::new(vec![0, 0], 0).display(&names), "0");
        assert_eq!(AffineExpr::new(vec![-2, 0], 0).display(&names), "-2*i");
    }
}
