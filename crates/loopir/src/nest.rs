//! Loop nests: the unit of partitioning.

use crate::refs::{AccessKind, ArrayRef};
use crate::span::Span;
use crate::IrError;
use alp_linalg::IVec;
use std::collections::HashMap;

/// One loop level: `Doall (name, lower, upper)` with unit stride (§2.1).
///
/// Equality ignores [`span`](LoopIndex::span) (source metadata only).
#[derive(Debug, Clone, Eq)]
pub struct LoopIndex {
    /// Index variable name.
    pub name: String,
    /// Inclusive lower bound.
    pub lower: i128,
    /// Inclusive upper bound.
    pub upper: i128,
    /// Span of the index name in the loop header, when parsed.
    pub span: Option<Span>,
}

impl PartialEq for LoopIndex {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.lower == other.lower && self.upper == other.upper
    }
}

impl LoopIndex {
    /// Construct a loop level.
    pub fn new(name: impl Into<String>, lower: i128, upper: i128) -> Self {
        LoopIndex {
            name: name.into(),
            lower,
            upper,
            span: None,
        }
    }

    /// Attach a source span (the index name in the header).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Number of iterations.
    pub fn trip_count(&self) -> i128 {
        (self.upper - self.lower + 1).max(0)
    }
}

/// An assignment statement `lhs = f(rhs…)` (only the reference structure
/// matters to the analysis; arithmetic operators are irrelevant to
/// traffic).
///
/// Equality ignores [`span`](Statement::span) (source metadata only).
#[derive(Debug, Clone, Eq)]
pub struct Statement {
    /// The written (or accumulated) reference.
    pub lhs: ArrayRef,
    /// All references read on the right-hand side.
    pub rhs: Vec<ArrayRef>,
    /// Span of the whole statement (lhs through `;`), when parsed.
    pub span: Option<Span>,
}

impl PartialEq for Statement {
    fn eq(&self, other: &Self) -> bool {
        self.lhs == other.lhs && self.rhs == other.rhs
    }
}

impl Statement {
    /// Construct a statement.
    pub fn new(lhs: ArrayRef, rhs: Vec<ArrayRef>) -> Self {
        Statement {
            lhs,
            rhs,
            span: None,
        }
    }

    /// Attach a source span (lhs through the terminating `;`).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Every reference of the statement: the write first, then the reads.
    pub fn refs(&self) -> impl Iterator<Item = &ArrayRef> {
        std::iter::once(&self.lhs).chain(self.rhs.iter())
    }
}

/// A perfectly nested loop (Fig. 1), optionally wrapped in outer
/// sequential loops (Fig. 9's `Doseq`), whose body is a list of
/// assignment statements over affine references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Outer sequential loops (executed serially; they repeat the doall
    /// body and turn cold misses into coherence traffic, §3.6/Fig. 9).
    pub seq_loops: Vec<LoopIndex>,
    /// The parallel `Doall` indices, outermost first.
    pub loops: Vec<LoopIndex>,
    /// Statements of the loop body.
    pub body: Vec<Statement>,
}

impl LoopNest {
    /// Create and validate a nest.
    pub fn new(loops: Vec<LoopIndex>, body: Vec<Statement>) -> Result<Self, IrError> {
        Self::with_seq(Vec::new(), loops, body)
    }

    /// Create a nest with outer sequential loops.
    pub fn with_seq(
        seq_loops: Vec<LoopIndex>,
        loops: Vec<LoopIndex>,
        body: Vec<Statement>,
    ) -> Result<Self, IrError> {
        let nest = LoopNest {
            seq_loops,
            loops,
            body,
        };
        nest.validate()?;
        Ok(nest)
    }

    /// Parallel nest depth `l`.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Names of the parallel indices, outermost first.
    pub fn index_names(&self) -> Vec<String> {
        self.loops.iter().map(|l| l.name.clone()).collect()
    }

    /// Total number of parallel iterations (the iteration-space volume).
    pub fn iteration_count(&self) -> i128 {
        self.loops.iter().map(LoopIndex::trip_count).product()
    }

    /// Number of repetitions contributed by the outer sequential loops.
    pub fn seq_repetitions(&self) -> i128 {
        self.seq_loops.iter().map(LoopIndex::trip_count).product()
    }

    /// Every reference in the body, writes and reads.
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        self.body
            .iter()
            .flat_map(|s| std::iter::once(&s.lhs).chain(s.rhs.iter()))
            .collect()
    }

    /// Distinct array names, in first-appearance order.
    pub fn arrays(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in self.all_refs() {
            if !seen.contains(&r.array) {
                seen.push(r.array.clone());
            }
        }
        seen
    }

    /// For each array, the extent of each dimension implied by the loop
    /// bounds (the smallest box covering every touched element) — used by
    /// the simulator to lay arrays out in memory.
    pub fn array_extents(&self) -> HashMap<String, Vec<(i128, i128)>> {
        let mut out: HashMap<String, Vec<(i128, i128)>> = HashMap::new();
        for r in self.all_refs() {
            let lo_hi: Vec<(i128, i128)> = r
                .subscripts
                .iter()
                .map(|s| {
                    let mut lo = s.constant;
                    let mut hi = s.constant;
                    for (k, &c) in s.coeffs.iter().enumerate() {
                        let (a, b) = (c * self.loops[k].lower, c * self.loops[k].upper);
                        lo += a.min(b);
                        hi += a.max(b);
                    }
                    (lo, hi)
                })
                .collect();
            out.entry(r.array.clone())
                .and_modify(|ext| {
                    for (e, n) in ext.iter_mut().zip(&lo_hi) {
                        e.0 = e.0.min(n.0);
                        e.1 = e.1.max(n.1);
                    }
                })
                .or_insert(lo_hi);
        }
        out
    }

    /// Iterate over every point of the iteration space (outermost index
    /// slowest).  Intended for exhaustive validation on small nests.
    pub fn iteration_points(&self) -> Vec<IVec> {
        let l = self.depth();
        let mut out = Vec::new();
        if l == 0 {
            return out;
        }
        let mut i: Vec<i128> = self.loops.iter().map(|lp| lp.lower).collect();
        if self.loops.iter().any(|lp| lp.trip_count() == 0) {
            return out;
        }
        loop {
            out.push(IVec(i.clone()));
            let mut k = l;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                i[k] += 1;
                if i[k] <= self.loops[k].upper {
                    break;
                }
                i[k] = self.loops[k].lower;
                if k == 0 {
                    return out;
                }
            }
        }
    }

    /// Pretty-print in the DSL syntax.
    pub fn display(&self) -> String {
        let names = self.index_names();
        let mut s = String::new();
        let mut indent = 0usize;
        for l in &self.seq_loops {
            s.push_str(&format!(
                "{}doseq ({}, {}, {}) {{\n",
                "  ".repeat(indent),
                l.name,
                l.lower,
                l.upper
            ));
            indent += 1;
        }
        for l in &self.loops {
            s.push_str(&format!(
                "{}doall ({}, {}, {}) {{\n",
                "  ".repeat(indent),
                l.name,
                l.lower,
                l.upper
            ));
            indent += 1;
        }
        for st in &self.body {
            let rhs: Vec<String> = st.rhs.iter().map(|r| r.display(&names)).collect();
            let op = if st.lhs.kind == AccessKind::Accumulate {
                "+="
            } else {
                "="
            };
            s.push_str(&format!(
                "{}{} {} {};\n",
                "  ".repeat(indent),
                st.lhs.display(&names),
                op,
                if rhs.is_empty() {
                    "0".to_string()
                } else {
                    rhs.join(" + ")
                }
            ));
        }
        while indent > 0 {
            indent -= 1;
            s.push_str(&format!("{}}}\n", "  ".repeat(indent)));
        }
        s
    }

    fn validate(&self) -> Result<(), IrError> {
        let mut names = std::collections::HashSet::new();
        for l in self.seq_loops.iter().chain(&self.loops) {
            if l.lower > l.upper {
                return Err(IrError::EmptyLoop {
                    index: l.name.clone(),
                });
            }
            if !names.insert(l.name.as_str()) {
                return Err(IrError::DuplicateIndex {
                    index: l.name.clone(),
                });
            }
        }
        let depth = self.depth();
        let mut dims: HashMap<&str, usize> = HashMap::new();
        for r in self.all_refs() {
            for sub in &r.subscripts {
                if sub.depth() != depth {
                    return Err(IrError::DepthMismatch {
                        depth,
                        found: sub.depth(),
                    });
                }
            }
            match dims.get(r.array.as_str()) {
                Some(&d) if d != r.dim() => {
                    return Err(IrError::DimensionMismatch {
                        array: r.array.clone(),
                        expected: d,
                        found: r.dim(),
                    });
                }
                _ => {
                    dims.insert(&r.array, r.dim());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    fn idx(depth: usize, k: usize) -> AffineExpr {
        AffineExpr::index(depth, k)
    }

    fn example2() -> LoopNest {
        // Example 2 of the paper.
        let i = idx(2, 0);
        let j = idx(2, 1);
        let a = ArrayRef::new("A", vec![i.clone(), j.clone()], AccessKind::Write);
        let b1 = ArrayRef::new(
            "B",
            vec![i.add(&j), i.add(&j.scale(-1)).offset(-1)],
            AccessKind::Read,
        );
        let b2 = ArrayRef::new(
            "B",
            vec![i.add(&j).offset(4), i.add(&j.scale(-1)).offset(3)],
            AccessKind::Read,
        );
        LoopNest::new(
            vec![LoopIndex::new("i", 101, 200), LoopIndex::new("j", 1, 100)],
            vec![Statement::new(a, vec![b1, b2])],
        )
        .unwrap()
    }

    #[test]
    fn basic_shape() {
        let n = example2();
        assert_eq!(n.depth(), 2);
        assert_eq!(n.iteration_count(), 10_000);
        assert_eq!(n.arrays(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(n.all_refs().len(), 3);
        assert_eq!(n.seq_repetitions(), 1);
    }

    #[test]
    fn extents() {
        let n = example2();
        let ext = n.array_extents();
        assert_eq!(ext["A"], vec![(101, 200), (1, 100)]);
        // B subscripts: i+j in [102, 300]; i-j-1 in [0, 198];
        // i+j+4 in [106, 304]; i-j+3 in [4, 202] -> union.
        assert_eq!(ext["B"], vec![(102, 304), (0, 202)]);
    }

    #[test]
    fn iteration_points_order_and_count() {
        let n = LoopNest::new(
            vec![LoopIndex::new("i", 0, 1), LoopIndex::new("j", 5, 7)],
            vec![],
        )
        .unwrap();
        let pts = n.iteration_points();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], IVec::new(&[0, 5]));
        assert_eq!(pts[1], IVec::new(&[0, 6]));
        assert_eq!(pts[5], IVec::new(&[1, 7]));
    }

    #[test]
    fn validation_rejects_empty_loop() {
        let r = LoopNest::new(vec![LoopIndex::new("i", 5, 4)], vec![]);
        assert!(matches!(r, Err(IrError::EmptyLoop { .. })));
    }

    #[test]
    fn validation_rejects_dim_mismatch() {
        let a1 = ArrayRef::new("A", vec![idx(1, 0)], AccessKind::Write);
        let a2 = ArrayRef::new("A", vec![idx(1, 0), idx(1, 0)], AccessKind::Read);
        let r = LoopNest::new(
            vec![LoopIndex::new("i", 0, 9)],
            vec![Statement::new(a1, vec![a2])],
        );
        assert!(matches!(r, Err(IrError::DimensionMismatch { .. })));
    }

    #[test]
    fn validation_rejects_depth_mismatch() {
        let bad = ArrayRef::new("A", vec![idx(3, 0)], AccessKind::Write);
        let r = LoopNest::new(
            vec![LoopIndex::new("i", 0, 9)],
            vec![Statement::new(bad, vec![])],
        );
        assert!(matches!(r, Err(IrError::DepthMismatch { .. })));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let n = example2();
        let text = n.display();
        let reparsed = crate::parse(&text).unwrap();
        assert_eq!(n, reparsed);
    }
}
