//! Loop-nest intermediate representation for the `alp` partitioning
//! analysis.
//!
//! The paper analyses perfectly nested `Doall` loops (Fig. 1) whose array
//! subscripts are affine in the loop indices, `ḡ(ī) = ī·G + ā` (Eq. 1).
//! This crate provides:
//!
//! * [`AffineExpr`] — one affine subscript (a row of `G` plus a component
//!   of `ā` in the making);
//! * [`ArrayRef`] — a full reference `A[ḡ(ī)]` with its access kind
//!   (read / write / fine-grain-synchronized accumulate, cf. Appendix A);
//! * [`LoopNest`] — the nest itself, with optional outer sequential loops
//!   (Fig. 9's `Doseq`), bounds, and a statement list;
//! * a small text DSL ([`parse`]) so the paper's examples can be written
//!   verbatim in tests, examples and benches.
//!
//! This is the `alp` equivalent of the Alewife compiler's WAIF front end
//! (§4): everything downstream consumes only the `(G, ā)` pairs and the
//! iteration-space geometry captured here.

pub mod expr;
pub mod nest;
pub mod parser;
pub mod refs;
pub mod span;

pub use expr::AffineExpr;
pub use nest::{LoopIndex, LoopNest, Statement};
pub use parser::{parse, parse_program, parse_program_with_params, parse_with_params, ParseError};
pub use refs::{AccessKind, ArrayRef};
pub use span::{line_col, line_text, Span};

/// Errors raised while constructing or validating IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An array is used with inconsistent dimensionality.
    DimensionMismatch {
        /// Array name.
        array: String,
        /// Previously seen dimensionality.
        expected: usize,
        /// Conflicting dimensionality.
        found: usize,
    },
    /// A subscript references more loop indices than the nest has.
    DepthMismatch {
        /// Loop-nest depth.
        depth: usize,
        /// Coefficients supplied.
        found: usize,
    },
    /// A loop has `lower > upper`.
    EmptyLoop {
        /// Index name.
        index: String,
    },
    /// The same index name is used by two loops of the nest (counting
    /// both `doseq` and `doall` levels): the inner loop would shadow the
    /// outer and every subscript would be ambiguous.
    DuplicateIndex {
        /// The repeated index name.
        index: String,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::DimensionMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` used with {found} subscripts, previously {expected}"
            ),
            IrError::DepthMismatch { depth, found } => {
                write!(
                    f,
                    "subscript has {found} coefficients in a depth-{depth} nest"
                )
            }
            IrError::EmptyLoop { index } => write!(f, "loop `{index}` has lower > upper"),
            IrError::DuplicateIndex { index } => {
                write!(f, "index `{index}` is declared by more than one loop")
            }
        }
    }
}

impl std::error::Error for IrError {}
