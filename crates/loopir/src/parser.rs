//! A small text DSL for writing the paper's loop nests verbatim.
//!
//! ```text
//! doall (i, 101, 200) {
//!   doall (j, 1, 100) {
//!     A[i, j] = B[i+j, i-j-1] + B[i+j+4, i-j+3];
//!   }
//! }
//! ```
//!
//! * `doseq` loops may wrap the outermost `doall` (Fig. 9).
//! * `lhs += rhs;` or an `l$` prefix marks a fine-grain-synchronized
//!   accumulate (Fig. 11 / Appendix A).
//! * Loop bounds are integer literals or named parameters supplied to
//!   [`parse_with_params`].
//! * An optional fourth header argument gives a stride: `doall (i, lo,
//!   hi, s)` visits `lo, lo+s, …`.  The parser normalizes it away by
//!   substituting `i = lo + s·i′` — bounds become `(0, ⌊(hi−lo)/s⌋)`
//!   and every subscript absorbs the scale and offset — so downstream
//!   analyses only ever see the paper's unit-stride canonical form
//!   (§2.1).

use crate::expr::AffineExpr;
use crate::nest::{LoopIndex, LoopNest, Statement};
use crate::refs::{AccessKind, ArrayRef};
use crate::span::{line_col, Span};
use crate::IrError;
use std::collections::HashMap;

/// Parse failure, with a human-oriented message and source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line of the offset (0 when the position is unknown).
    pub line: usize,
    /// 1-based column of the offset (0 when the position is unknown).
    pub column: usize,
}

impl ParseError {
    /// An error at a byte offset of `src`, with line/column filled in.
    pub fn at(message: impl Into<String>, offset: usize, src: &str) -> Self {
        let offset = offset.min(src.len());
        let (line, column) = line_col(src, offset);
        ParseError {
            message: message.into(),
            offset,
            line,
            column,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "parse error: {}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Lossy fallback for IR errors raised outside the parser: no source is
/// available, so the position is unknown.  The parser itself converts
/// [`IrError`] via [`ParseError::at`] with the offending nest's offset.
impl From<IrError> for ParseError {
    fn from(e: IrError) -> Self {
        ParseError {
            message: e.to_string(),
            offset: 0,
            line: 0,
            column: 0,
        }
    }
}

/// Parse a loop nest with no named parameters.
pub fn parse(src: &str) -> Result<LoopNest, ParseError> {
    parse_with_params(src, &HashMap::new())
}

/// Parse a loop nest, resolving named loop bounds (e.g. `N`) through
/// `params`.
pub fn parse_with_params(
    src: &str,
    params: &HashMap<String, i128>,
) -> Result<LoopNest, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params,
        src,
    };
    let nest = p.parse_nest()?;
    p.expect_eof()?;
    Ok(nest)
}

/// Parse a **program**: a sequence of loop nests executed one after the
/// other (the multi-phase setting of §4 — e.g. an ADI row sweep followed
/// by a column sweep over the same array).
pub fn parse_program(src: &str) -> Result<Vec<LoopNest>, ParseError> {
    parse_program_with_params(src, &HashMap::new())
}

/// [`parse_program`] with named loop-bound parameters.
pub fn parse_program_with_params(
    src: &str,
    params: &HashMap<String, i128>,
) -> Result<Vec<LoopNest>, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params,
        src,
    };
    let mut nests = Vec::new();
    loop {
        nests.push(p.parse_nest()?);
        if p.pos == p.tokens.len() {
            break;
        }
    }
    // Cross-nest validation: arrays keep one dimensionality everywhere.
    let mut dims: HashMap<String, usize> = HashMap::new();
    for nest in &nests {
        for r in nest.all_refs() {
            match dims.get(&r.array) {
                Some(&d) if d != r.dim() => {
                    let offset = r.span.map_or(0, |s| s.start);
                    return Err(ParseError::at(
                        format!(
                            "array `{}` used with {} subscripts here, {} elsewhere",
                            r.array,
                            r.dim(),
                            d
                        ),
                        offset,
                        src,
                    ));
                }
                _ => {
                    dims.insert(r.array.clone(), r.dim());
                }
            }
        }
    }
    Ok(nests)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i128),
    Sym(char),
    PlusEq,
    AccSigil, // `l$`
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
    end: usize,
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i128 = src[start..i]
                    .parse()
                    .map_err(|_| ParseError::at("integer literal out of range", start, src))?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    offset: start,
                    end: i,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // `l$` accumulate sigil.
                if word == "l" && bytes.get(i) == Some(&b'$') {
                    i += 1;
                    out.push(Spanned {
                        tok: Tok::AccSigil,
                        offset: start,
                        end: i,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Ident(word.to_string()),
                        offset: start,
                        end: i,
                    });
                }
            }
            '+' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned {
                    tok: Tok::PlusEq,
                    offset: i,
                    end: i + 2,
                });
                i += 2;
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '=' | '+' | '-' | '*' => {
                out.push(Spanned {
                    tok: Tok::Sym(c),
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            other => {
                return Err(ParseError::at(
                    format!("unexpected character `{other}`"),
                    i,
                    src,
                ))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Spanned>,
    pos: usize,
    params: &'a HashMap<String, i128>,
    src: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.src.len(), |s| s.offset)
    }

    /// Offset one past the end of the most recently bumped token.
    fn prev_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|p| self.tokens.get(p))
            .map_or(self.src.len(), |s| s.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::at(msg, self.offset(), self.src))
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected `{c}`, found {other:?}"))
            }
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("trailing input after loop nest")
        }
    }

    fn parse_nest(&mut self) -> Result<LoopNest, ParseError> {
        let nest_start = self.offset();
        let mut seq_loops: Vec<LoopIndex> = Vec::new();
        let mut seq_strides: Vec<i128> = Vec::new();
        let mut loops: Vec<LoopIndex> = Vec::new();
        let mut strides: Vec<i128> = Vec::new();
        let mut opened = 0usize;
        // Headers: doseq* doall+
        loop {
            match self.peek() {
                Some(Tok::Ident(w)) if w == "doseq" => {
                    if !loops.is_empty() {
                        return self.err("doseq must enclose all doall loops");
                    }
                    self.bump();
                    let (l, s) = self.parse_header()?;
                    seq_loops.push(l);
                    seq_strides.push(s);
                    opened += 1;
                }
                Some(Tok::Ident(w)) if w == "doall" => {
                    self.bump();
                    let (l, s) = self.parse_header()?;
                    loops.push(l);
                    strides.push(s);
                    opened += 1;
                }
                _ => break,
            }
            // Reject shadowed indices at the duplicate's own position.
            let latest = loops
                .last()
                .unwrap_or_else(|| seq_loops.last().expect("just pushed"));
            let earlier = seq_loops
                .iter()
                .chain(&loops)
                .filter(|l| l.name == latest.name);
            if earlier.count() > 1 {
                return Err(ParseError::at(
                    format!("index `{}` is declared by more than one loop", latest.name),
                    latest.span.map_or(nest_start, |s| s.start),
                    self.src,
                ));
            }
        }
        if loops.is_empty() {
            return self.err("expected at least one doall loop");
        }
        // Body statements.
        let index_names: Vec<String> = loops.iter().map(|l| l.name.clone()).collect();
        let mut body = Vec::new();
        while !matches!(self.peek(), Some(Tok::Sym('}')) | None) {
            body.push(self.parse_statement(&index_names)?);
        }
        for _ in 0..opened {
            self.expect_sym('}')?;
        }
        // Normalize non-unit strides: substituting `i = lo + s·i′` turns
        // `doall (i, lo, hi, s)` into the unit-stride `i′ ∈ [0,
        // ⌊(hi−lo)/s⌋]` with each subscript coefficient scaled by `s`
        // and `coeff·lo` folded into the constant — the touched element
        // set is unchanged.
        for (k, s) in strides.iter().copied().enumerate() {
            if s == 1 {
                continue;
            }
            let l = &mut loops[k];
            let at = l.span.map_or(nest_start, |sp| sp.start);
            let lo = l.lower;
            l.upper = l
                .upper
                .checked_sub(lo)
                .map(|w| w.div_euclid(s))
                .ok_or_else(|| {
                    ParseError::at("stride normalization overflows i128", at, self.src)
                })?;
            l.lower = 0;
            for st in &mut body {
                for r in std::iter::once(&mut st.lhs).chain(st.rhs.iter_mut()) {
                    let at = r.span.map_or(at, |sp| sp.start);
                    for sub in &mut r.subscripts {
                        let c = sub.coeffs[k];
                        sub.constant = c
                            .checked_mul(lo)
                            .and_then(|t| sub.constant.checked_add(t))
                            .ok_or_else(|| {
                                ParseError::at("stride normalization overflows i128", at, self.src)
                            })?;
                        sub.coeffs[k] = c.checked_mul(s).ok_or_else(|| {
                            ParseError::at("stride normalization overflows i128", at, self.src)
                        })?;
                    }
                }
            }
        }
        // Sequential indices cannot appear in subscripts, so a strided
        // doseq only renormalizes its trip count.
        for (k, s) in seq_strides.iter().copied().enumerate() {
            if s == 1 {
                continue;
            }
            let l = &mut seq_loops[k];
            let at = l.span.map_or(nest_start, |sp| sp.start);
            l.upper = l
                .upper
                .checked_sub(l.lower)
                .map(|w| w.div_euclid(s))
                .ok_or_else(|| {
                    ParseError::at("stride normalization overflows i128", at, self.src)
                })?;
            l.lower = 0;
        }
        LoopNest::with_seq(seq_loops, loops, body)
            .map_err(|e| ParseError::at(e.to_string(), nest_start, self.src))
    }

    /// `(name, lo, hi[, step]) {` — returns the level plus its stride
    /// (`1` when the optional fourth argument is omitted).
    fn parse_header(&mut self) -> Result<(LoopIndex, i128), ParseError> {
        self.expect_sym('(')?;
        let name_start = self.offset();
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                self.pos -= 1;
                return self.err("expected loop index name");
            }
        };
        let name_span = Span::new(name_start, self.prev_end());
        self.expect_sym(',')?;
        let lower = self.parse_bound()?;
        self.expect_sym(',')?;
        let upper = self.parse_bound()?;
        let stride = if matches!(self.peek(), Some(Tok::Sym(','))) {
            self.bump();
            let at = self.offset();
            let s = self.parse_bound()?;
            if s < 1 {
                return Err(ParseError::at(
                    format!("loop stride must be at least 1, got {s}"),
                    at,
                    self.src,
                ));
            }
            s
        } else {
            1
        };
        self.expect_sym(')')?;
        self.expect_sym('{')?;
        Ok((
            LoopIndex::new(name, lower, upper).with_span(name_span),
            stride,
        ))
    }

    /// Integer literal, optionally negated, or a named parameter.
    fn parse_bound(&mut self) -> Result<i128, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(n),
            Some(Tok::Sym('-')) => match self.bump() {
                Some(Tok::Int(n)) => Ok(-n),
                _ => {
                    self.pos -= 1;
                    self.err("expected integer after `-`")
                }
            },
            Some(Tok::Ident(name)) => match self.params.get(&name) {
                Some(&v) => Ok(v),
                None => {
                    self.pos -= 1;
                    self.err(format!("unbound loop-bound parameter `{name}`"))
                }
            },
            _ => {
                self.pos -= 1;
                self.err("expected loop bound")
            }
        }
    }

    fn parse_statement(&mut self, names: &[String]) -> Result<Statement, ParseError> {
        let stmt_start = self.offset();
        let (mut lhs, _) = self.parse_ref(names, AccessKind::Write)?;
        let acc = match self.bump() {
            Some(Tok::Sym('=')) => false,
            Some(Tok::PlusEq) => true,
            _ => {
                self.pos -= 1;
                return self.err("expected `=` or `+=`");
            }
        };
        if acc || lhs.kind == AccessKind::Accumulate {
            lhs.kind = AccessKind::Accumulate;
        }
        let mut rhs = Vec::new();
        loop {
            // term: optional sign, then int [ '*' ref ] | ref
            let mut negated = false;
            while let Some(Tok::Sym(s)) = self.peek() {
                match s {
                    '+' => {
                        self.bump();
                    }
                    '-' => {
                        negated = !negated;
                        self.bump();
                    }
                    _ => break,
                }
            }
            let _ = negated; // sign is irrelevant to reference structure
            match self.peek() {
                Some(Tok::Int(_)) => {
                    self.bump();
                    if matches!(self.peek(), Some(Tok::Sym('*'))) {
                        self.bump();
                        let (r, _) = self.parse_ref(names, AccessKind::Read)?;
                        rhs.push(r);
                    }
                    // else: pure constant term, no reference
                }
                Some(Tok::Ident(_)) | Some(Tok::AccSigil) => {
                    let (r, _) = self.parse_ref(names, AccessKind::Read)?;
                    rhs.push(r);
                }
                _ => return self.err("expected term on right-hand side"),
            }
            match self.peek() {
                Some(Tok::Sym('+')) | Some(Tok::Sym('-')) => continue,
                Some(Tok::Sym(';')) => {
                    self.bump();
                    break;
                }
                Some(Tok::Sym('*')) => return self.err("unexpected `*`"),
                _ => return self.err("expected `+`, `-` or `;`"),
            }
        }
        // `lhs += rhs` is sugar for `l$lhs = l$lhs + rhs`: make the
        // implicit self-read explicit so both spellings yield one IR.
        if acc {
            let has_self = rhs.iter().any(|r| {
                r.kind == AccessKind::Accumulate
                    && r.array == lhs.array
                    && r.subscripts == lhs.subscripts
            });
            if !has_self {
                rhs.insert(0, lhs.clone());
            }
        }
        Ok(Statement::new(lhs, rhs).with_span(Span::new(stmt_start, self.prev_end())))
    }

    /// `[l$]Name[affine, affine, …]`
    fn parse_ref(
        &mut self,
        names: &[String],
        default_kind: AccessKind,
    ) -> Result<(ArrayRef, usize), ParseError> {
        let ref_start = self.offset();
        let kind = if matches!(self.peek(), Some(Tok::AccSigil)) {
            self.bump();
            AccessKind::Accumulate
        } else {
            default_kind
        };
        let array = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                self.pos -= 1;
                return self.err("expected array name");
            }
        };
        self.expect_sym('[')?;
        let mut subs = Vec::new();
        loop {
            subs.push(self.parse_affine(names)?);
            match self.bump() {
                Some(Tok::Sym(',')) => continue,
                Some(Tok::Sym(']')) => break,
                _ => {
                    self.pos -= 1;
                    return self.err("expected `,` or `]` in subscripts");
                }
            }
        }
        let d = subs.len();
        let span = Span::new(ref_start, self.prev_end());
        Ok((ArrayRef::new(array, subs, kind).with_span(span), d))
    }

    /// Sum of `[int *] index` and integer terms with `+`/`-` signs.
    fn parse_affine(&mut self, names: &[String]) -> Result<AffineExpr, ParseError> {
        let depth = names.len();
        let mut expr = AffineExpr::constant(depth, 0);
        loop {
            let mut sign = 1i128;
            loop {
                match self.peek() {
                    Some(Tok::Sym('+')) => {
                        self.bump();
                    }
                    Some(Tok::Sym('-')) => {
                        sign = -sign;
                        self.bump();
                    }
                    _ => break,
                }
            }
            let term_start = self.offset();
            match self.bump() {
                Some(Tok::Int(n)) => {
                    if matches!(self.peek(), Some(Tok::Sym('*'))) {
                        self.bump();
                        match self.bump() {
                            Some(Tok::Ident(id)) => {
                                let k = self.index_of(&id, names)?;
                                expr.coeffs[k] =
                                    self.add_term(expr.coeffs[k], sign, n, term_start)?;
                            }
                            _ => {
                                self.pos -= 1;
                                return self.err("expected index after `*`");
                            }
                        }
                    } else {
                        expr.constant = self.add_term(expr.constant, sign, n, term_start)?;
                    }
                }
                Some(Tok::Ident(id)) => {
                    let k = self.index_of(&id, names)?;
                    expr.coeffs[k] = self.add_term(expr.coeffs[k], sign, 1, term_start)?;
                }
                _ => {
                    self.pos -= 1;
                    return self.err("expected subscript term");
                }
            }
            match self.peek() {
                Some(Tok::Sym('+')) | Some(Tok::Sym('-')) => continue,
                _ => break,
            }
        }
        Ok(expr)
    }

    /// `acc + sign * n` with overflow reported as a parse error at the
    /// term's source position instead of a panic/wrap.
    fn add_term(&self, acc: i128, sign: i128, n: i128, at: usize) -> Result<i128, ParseError> {
        n.checked_mul(sign)
            .and_then(|t| acc.checked_add(t))
            .ok_or_else(|| ParseError::at("affine subscript term overflows i128", at, self.src))
    }

    fn index_of(&self, id: &str, names: &[String]) -> Result<usize, ParseError> {
        match names.iter().position(|n| n == id) {
            Some(k) => Ok(k),
            None => match self.params.get(id) {
                // A parameter in a subscript acts as a constant — not
                // supported (would make the offset symbolic).
                Some(_) => self.err(format!("parameter `{id}` cannot appear in a subscript")),
                None => self.err(format!("unknown index `{id}`")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_linalg::{IMat, IVec};

    #[test]
    fn parses_example2() {
        let n = parse(
            "doall (i, 101, 200) {
               doall (j, 1, 100) {
                 A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3];
               }
             }",
        )
        .unwrap();
        assert_eq!(n.depth(), 2);
        assert_eq!(n.iteration_count(), 10_000);
        let refs = n.all_refs();
        assert_eq!(refs.len(), 3);
        let b1 = refs[1];
        assert_eq!(b1.g_matrix(), IMat::from_rows(&[&[1, 1], &[1, -1]]));
        assert_eq!(b1.offset(), IVec::new(&[0, -1]));
        let b2 = refs[2];
        assert_eq!(b2.offset(), IVec::new(&[4, 3]));
    }

    #[test]
    fn parses_example8_with_params() {
        let mut params = HashMap::new();
        params.insert("N".to_string(), 32i128);
        let n = parse_with_params(
            "doall (i, 1, N) { doall (j, 1, N) { doall (k, 1, N) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
            &params,
        )
        .unwrap();
        assert_eq!(n.depth(), 3);
        assert_eq!(n.iteration_count(), 32 * 32 * 32);
        let b = &n.body[0].rhs[0];
        assert_eq!(b.g_matrix(), IMat::identity(3));
        assert_eq!(b.offset(), IVec::new(&[-1, 0, 1]));
    }

    #[test]
    fn parses_doseq_wrapper() {
        let n = parse(
            "doseq (t, 1, 10) { doall (i, 1, 4) {
               A[i] = A[i] + B[i];
             } }",
        )
        .unwrap();
        assert_eq!(n.seq_loops.len(), 1);
        assert_eq!(n.seq_repetitions(), 10);
        assert_eq!(n.depth(), 1);
    }

    #[test]
    fn parses_accumulate_matmul() {
        // Fig. 11: l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j]
        let n = parse(
            "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
               l$C[i,j] = l$C[i,j] + A[i,k] * B[k,j];
             } } }",
        );
        // `*` between refs is not part of the sum grammar; use `+` form.
        assert!(n.is_err());
        let n = parse(
            "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        assert_eq!(n.body[0].lhs.kind, AccessKind::Accumulate);
        assert_eq!(n.body[0].rhs[0].kind, AccessKind::Accumulate);
        assert_eq!(n.body[0].rhs.len(), 3);
    }

    #[test]
    fn plus_eq_marks_accumulate() {
        let n = parse("doall (i, 0, 3) { C[i] += A[i]; }").unwrap();
        assert_eq!(n.body[0].lhs.kind, AccessKind::Accumulate);
    }

    #[test]
    fn plus_eq_desugars_to_explicit_self_read() {
        // Both spellings of an accumulate must produce identical IR.
        let sugar = parse("doall (i, 0, 3) { C[i] += A[i]; }").unwrap();
        let explicit = parse("doall (i, 0, 3) { l$C[i] = l$C[i] + A[i]; }").unwrap();
        assert_eq!(sugar, explicit);
        let st = &sugar.body[0];
        assert_eq!(st.rhs.len(), 2);
        assert_eq!(st.rhs[0].kind, AccessKind::Accumulate);
        assert_eq!(st.rhs[0].array, "C");
        assert_eq!(st.rhs[1].array, "A");
    }

    #[test]
    fn plus_eq_self_read_not_duplicated() {
        // An already-explicit accumulate self-read is left alone …
        let n = parse("doall (i, 0, 3) { l$C[i] += l$C[i] + A[i]; }").unwrap();
        assert_eq!(n.body[0].rhs.len(), 2);
        // … but a plain (Read-kind) self reference is a distinct old-value
        // use, so the implicit accumulate read is still inserted.
        let n = parse("doall (i, 0, 3) { C[i] += C[i]; }").unwrap();
        assert_eq!(n.body[0].rhs.len(), 2);
        assert_eq!(n.body[0].rhs[0].kind, AccessKind::Accumulate);
        assert_eq!(n.body[0].rhs[1].kind, AccessKind::Read);
    }

    #[test]
    fn plus_eq_round_trips_through_display() {
        let n = parse("doall (i, 0, 3) { C[i] += A[i]; }").unwrap();
        let reparsed = parse(&n.display()).unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn subscript_overflow_is_error_not_panic() {
        let big = i128::MAX;
        let src = format!("doall (i, 0, 3) {{\n  A[{big} + {big}] = B[i];\n}}");
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("overflows"), "{e}");
        assert_eq!(e.line, 2, "{e:?}");
        assert!(e.column > 1, "{e:?}");

        // Coefficient accumulation overflows the same way.
        let src = format!("doall (i, 0, 3) {{ A[{big}*i + {big}*i] = B[i]; }}");
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("overflows"), "{e}");
    }

    #[test]
    fn scaled_subscripts() {
        let n = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[2*i, i+2*j-1] = A[2*i, i+2*j-1]; } }")
            .unwrap();
        let a = &n.body[0].lhs;
        assert_eq!(a.g_matrix(), IMat::from_rows(&[&[2, 1], &[0, 2]]));
        assert_eq!(a.offset(), IVec::new(&[0, -1]));
    }

    #[test]
    fn negative_bounds_and_comments() {
        let n = parse(
            "// negative lower bound
             doall (i, -5, 5) { A[i] = A[i]; }",
        )
        .unwrap();
        assert_eq!(n.loops[0].lower, -5);
        assert_eq!(n.iteration_count(), 11);
    }

    #[test]
    fn constant_rhs_terms_ignored() {
        let n = parse("doall (i, 0, 3) { A[i] = B[i] + 7; }").unwrap();
        assert_eq!(n.body[0].rhs.len(), 1);
    }

    #[test]
    fn coefficient_times_ref_keeps_ref() {
        let n = parse("doall (i, 0, 3) { A[i] = 2*B[i] - C[i]; }").unwrap();
        assert_eq!(n.body[0].rhs.len(), 2);
    }

    #[test]
    fn error_on_unknown_index() {
        let e = parse("doall (i, 0, 3) { A[q] = A[i]; }").unwrap_err();
        assert!(e.message.contains("unknown index"), "{e}");
    }

    #[test]
    fn error_on_unbound_param() {
        let e = parse("doall (i, 0, N) { A[i] = A[i]; }").unwrap_err();
        assert!(e.message.contains("unbound"), "{e}");
    }

    #[test]
    fn error_on_doseq_inside_doall() {
        let e = parse("doall (i, 0, 3) { doseq (t, 0, 3) { A[i] = A[i]; } }").unwrap_err();
        assert!(e.message.contains("doseq"), "{e}");
    }

    #[test]
    fn error_on_trailing_garbage() {
        let e = parse("doall (i, 0, 3) { A[i] = A[i]; } garbage").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn error_on_empty_nest() {
        assert!(parse("").is_err());
        assert!(parse("doseq (t, 0, 3) { }").is_err());
    }

    #[test]
    fn strided_doall_normalizes_to_unit_stride() {
        // i ∈ {1, 4, 7, 10}: four iterations, subscript i ↦ 3·i′ + 1.
        let n = parse("doall (i, 1, 10, 3) { A[i] = A[i]; }").unwrap();
        assert_eq!((n.loops[0].lower, n.loops[0].upper), (0, 3));
        assert_eq!(n.iteration_count(), 4);
        let manual = parse("doall (i, 0, 3) { A[3*i+1] = A[3*i+1]; }").unwrap();
        assert_eq!(n, manual);
    }

    #[test]
    fn strided_upper_bound_not_hit_exactly() {
        // i ∈ {2, 6}: 9 is not on the lattice, ⌊(9−2)/4⌋ = 1.
        let n = parse("doall (i, 2, 9, 4) { A[i] = A[i]; }").unwrap();
        assert_eq!(n.iteration_count(), 2);
        assert_eq!(n.body[0].lhs.subscripts[0].coeffs, vec![4]);
        assert_eq!(n.body[0].lhs.subscripts[0].constant, 2);
    }

    #[test]
    fn strided_doseq_renormalizes_trip_count_only() {
        // t ∈ {1, 5, 9}: three repetitions.
        let n = parse("doseq (t, 1, 10, 4) { doall (i, 0, 3) { A[i] = A[i]; } }").unwrap();
        assert_eq!(n.seq_repetitions(), 3);
        assert_eq!(n.body[0].lhs.subscripts[0].coeffs, vec![1]);
    }

    #[test]
    fn unit_stride_argument_is_identity() {
        let with_s = parse("doall (i, 5, 9, 1) { A[i] = B[i-1]; }").unwrap();
        let without = parse("doall (i, 5, 9) { A[i] = B[i-1]; }").unwrap();
        assert_eq!(with_s, without);
    }

    #[test]
    fn stride_must_be_positive() {
        for src in [
            "doall (i, 0, 9, 0) { A[i] = A[i]; }",
            "doall (i, 0, 9, -2) { A[i] = A[i]; }",
        ] {
            let e = parse(src).unwrap_err();
            assert!(e.message.contains("stride"), "{e}");
        }
    }

    #[test]
    fn stride_as_named_parameter() {
        let mut params = HashMap::new();
        params.insert("S".to_string(), 2i128);
        let n = parse_with_params("doall (i, 0, 9, S) { A[i] = A[i]; }", &params).unwrap();
        assert_eq!(n.iteration_count(), 5);
        assert_eq!(n.body[0].lhs.subscripts[0].coeffs, vec![2]);
    }

    #[test]
    fn stride_normalization_overflow_is_error_not_panic() {
        let big = i128::MAX;
        let src = format!("doall (i, 0, 7, 2) {{ A[{big}*i] = B[i]; }}");
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("overflow"), "{e}");
    }

    #[test]
    fn strided_display_round_trips() {
        // display() emits the normalized unit-stride form, which must
        // reparse to the identical nest.
        let n = parse("doall (i, 3, 17, 2) { doall (j, 1, 10, 3) { A[i, j] = B[i+j, i-j]; } }")
            .unwrap();
        let reparsed = parse(&n.display()).unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn multiple_statements() {
        let n = parse(
            "doall (i, 0, 3) {
               A[i] = B[i];
               C[i] = B[i+1];
             }",
        )
        .unwrap();
        assert_eq!(n.body.len(), 2);
    }
}
