//! Byte spans into DSL source text.
//!
//! The parser attaches a [`Span`] to every loop header, statement and
//! array reference it produces, so downstream passes (notably
//! `alp-analysis`) can render rustc-style caret diagnostics pointing at
//! the offending source.  Spans are *metadata*: they never participate
//! in equality or hashing of IR nodes, so a hand-built nest (span-less)
//! compares equal to its parsed pretty-printed form.

/// A half-open byte range `[start, end)` into the source the nest was
/// parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span; `end` is clamped to be at least `start`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both operands.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// 1-based `(line, column)` of a byte offset in `src`.
///
/// Columns count bytes from the start of the line (the DSL is ASCII).
/// Offsets past the end of `src` report the position just past the last
/// byte.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for b in src.as_bytes()[..offset].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The full text of the (1-based) line containing `offset`, without its
/// trailing newline, plus the byte offset at which that line starts.
pub fn line_text(src: &str, offset: usize) -> (&str, usize) {
    let offset = offset.min(src.len());
    let start = src[..offset].rfind('\n').map_or(0, |p| p + 1);
    let end = src[start..].find('\n').map_or(src.len(), |p| start + p);
    (&src[start..end], start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "ab\ncd\n";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        // Past the end: clamped.
        assert_eq!(line_col(src, 99), (3, 1));
    }

    #[test]
    fn line_text_extracts_line() {
        let src = "first\nsecond\nthird";
        assert_eq!(line_text(src, 0), ("first", 0));
        assert_eq!(line_text(src, 7), ("second", 6));
        assert_eq!(line_text(src, 14), ("third", 13));
    }

    #[test]
    fn span_union() {
        let s = Span::new(4, 7).to(Span::new(1, 5));
        assert_eq!(s, Span::new(1, 7));
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }
}
