//! Array references `A[ḡ(ī)]` and their `(G, ā)` form.

use crate::expr::AffineExpr;
use crate::span::Span;
use alp_linalg::{IMat, IVec};

/// How a reference touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Fine-grain synchronized accumulate (the paper's `l$` references,
    /// Appendix A): an atomic read-modify-write, treated as a write by the
    /// coherence protocol and modeled as slightly costlier communication.
    Accumulate,
}

impl AccessKind {
    /// True for accesses the coherence protocol treats as writes
    /// (Appendix A: synchronizing reads/writes are both writes to the
    /// protocol).
    pub fn is_write_like(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Accumulate)
    }
}

/// A single array reference with affine subscripts.
///
/// Equality and hashing ignore [`span`](ArrayRef::span), which is pure
/// source metadata: a parsed reference equals the same reference built by
/// hand.
#[derive(Debug, Clone, Eq)]
pub struct ArrayRef {
    /// Array name (aliasing resolved: distinct names are distinct arrays,
    /// §3.3).
    pub array: String,
    /// One affine expression per array dimension.
    pub subscripts: Vec<AffineExpr>,
    /// Access kind.
    pub kind: AccessKind,
    /// Source span when parsed from DSL text (`None` for built IR).
    pub span: Option<Span>,
}

impl PartialEq for ArrayRef {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array && self.subscripts == other.subscripts && self.kind == other.kind
    }
}

impl std::hash::Hash for ArrayRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.array.hash(state);
        self.subscripts.hash(state);
        self.kind.hash(state);
    }
}

impl ArrayRef {
    /// Construct a reference.
    pub fn new(array: impl Into<String>, subscripts: Vec<AffineExpr>, kind: AccessKind) -> Self {
        ArrayRef {
            array: array.into(),
            subscripts,
            kind,
            span: None,
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Array dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.subscripts.len()
    }

    /// Nest depth `l` the subscripts are written against.
    pub fn depth(&self) -> usize {
        self.subscripts.first().map_or(0, AffineExpr::depth)
    }

    /// The reference matrix `G` (`l×d`, Eq. 1): column `k` holds the loop
    /// coefficients of subscript `k`.
    pub fn g_matrix(&self) -> IMat {
        let l = self.depth();
        let d = self.dim();
        let mut g = IMat::zeros(l, d);
        for (k, sub) in self.subscripts.iter().enumerate() {
            for (r, &c) in sub.coeffs.iter().enumerate() {
                g[(r, k)] = c;
            }
        }
        g
    }

    /// The offset vector `ā` (length `d`).
    pub fn offset(&self) -> IVec {
        IVec(self.subscripts.iter().map(|s| s.constant).collect())
    }

    /// Evaluate the data point touched at iteration `i`.
    pub fn eval(&self, i: &IVec) -> IVec {
        IVec(self.subscripts.iter().map(|s| s.eval(i)).collect())
    }

    /// Drop constant subscripts (zero columns of `G`) — Example 1: a
    /// constant subscript pins one array dimension, so the reference
    /// behaves as a reference to a lower-dimensional array.  Returns the
    /// reduced reference and the kept subscript positions.
    pub fn drop_constant_subscripts(&self) -> (ArrayRef, Vec<usize>) {
        let keep: Vec<usize> = (0..self.dim())
            .filter(|&k| !self.subscripts[k].is_constant())
            .collect();
        let reduced = ArrayRef {
            array: self.array.clone(),
            subscripts: keep.iter().map(|&k| self.subscripts[k].clone()).collect(),
            kind: self.kind,
            span: self.span,
        };
        (reduced, keep)
    }

    /// Render with the given index names, e.g. `B[i+j, i-j-1]`.
    pub fn display(&self, names: &[String]) -> String {
        let subs: Vec<String> = self.subscripts.iter().map(|s| s.display(names)).collect();
        let sigil = if self.kind == AccessKind::Accumulate {
            "l$"
        } else {
            ""
        };
        format!("{sigil}{}[{}]", self.array, subs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["i".into(), "j".into(), "k".into()]
    }

    #[test]
    fn g_matrix_example1() {
        // Example 1: A(i3+2, 5, i2-1, 4) in a triply nested loop.
        let r = ArrayRef::new(
            "A",
            vec![
                AffineExpr::new(vec![0, 0, 1], 2),
                AffineExpr::constant(3, 5),
                AffineExpr::new(vec![0, 1, 0], -1),
                AffineExpr::constant(3, 4),
            ],
            AccessKind::Read,
        );
        let g = r.g_matrix();
        assert_eq!(
            g,
            IMat::from_rows(&[&[0, 0, 0, 0], &[0, 0, 1, 0], &[1, 0, 0, 0]])
        );
        assert_eq!(r.offset(), IVec::new(&[2, 5, -1, 4]));
    }

    #[test]
    fn drop_constant_subscripts_example1() {
        let r = ArrayRef::new(
            "A",
            vec![
                AffineExpr::new(vec![0, 0, 1], 2),
                AffineExpr::constant(3, 5),
                AffineExpr::new(vec![0, 1, 0], -1),
                AffineExpr::constant(3, 4),
            ],
            AccessKind::Read,
        );
        let (red, keep) = r.drop_constant_subscripts();
        assert_eq!(keep, vec![0, 2]);
        assert_eq!(red.dim(), 2);
        // Reduced G has no zero columns.
        assert_eq!(red.g_matrix().nonzero_columns().len(), 2);
    }

    #[test]
    fn eval_matches_g_and_a() {
        let r = ArrayRef::new(
            "B",
            vec![
                AffineExpr::new(vec![1, 1], 4),
                AffineExpr::new(vec![1, -1], 2),
            ],
            AccessKind::Read,
        );
        let i = IVec::new(&[10, 3]);
        let via_eval = r.eval(&i);
        let via_mat = r
            .g_matrix()
            .apply_row(&i)
            .unwrap()
            .add(&r.offset())
            .unwrap();
        assert_eq!(via_eval, via_mat);
        assert_eq!(via_eval, IVec::new(&[17, 9]));
    }

    #[test]
    fn write_like() {
        assert!(!AccessKind::Read.is_write_like());
        assert!(AccessKind::Write.is_write_like());
        assert!(AccessKind::Accumulate.is_write_like());
    }

    #[test]
    fn rendering() {
        let r = ArrayRef::new(
            "B",
            vec![
                AffineExpr::new(vec![1, 1, 0], 4),
                AffineExpr::new(vec![1, -1, 0], 0),
            ],
            AccessKind::Read,
        );
        assert_eq!(r.display(&names()), "B[i+j+4, i-j]");
        let acc = ArrayRef::new("C", vec![AffineExpr::index(3, 0)], AccessKind::Accumulate);
        assert_eq!(acc.display(&names()), "l$C[i]");
    }
}
