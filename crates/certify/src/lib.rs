//! Static certification of [`PartitionPlan`]s.
//!
//! A [`Certificate`] records four facts about a plan, each proven here
//! by exact integer reasoning (no floats, no sampling):
//!
//! 1. **Exact coverage** — the plan's rectangular tiles partition the
//!    iteration space with no gap and no overlap.  Pairwise tile
//!    disjointness and per-tile containment in the loop bounds are
//!    Fourier–Motzkin feasibility questions over the tile/bound
//!    inequalities ([`alp_linalg::fm`] + the bounded integer search of
//!    [`alp_analysis::search`]); exactness then follows from an integer
//!    volume count (disjoint + contained + volumes summing to the
//!    space's volume ⇒ partition).
//! 2. **Cross-tile write disjointness** — per array, the write
//!    footprints of distinct tiles are disjoint.  This is the PR-1
//!    Diophantine dependence machinery applied pairwise to *symbolic
//!    tile boxes*: the stacked system `x·M = b` over `x = (ī₁ | ī₂)`
//!    with each half constrained to its own tile box instead of the
//!    whole loop-bound box, and no `ī₁ ≠ ī₂` disequality (iterations
//!    in distinct tiles are distinct once coverage holds).
//! 3. **In-bounds accesses** — every affine reference stays inside its
//!    array's extents for every iteration, checked per subscript
//!    dimension by the infeasibility of `bounds ∧ subscript < lo` and
//!    `bounds ∧ subscript > hi`.
//! 4. **Generalized idempotence** — a dataflow replacement for the
//!    executor's syntactic retry rule: the nest is re-runnable iff no
//!    read of any statement can touch a location any statement writes
//!    (element-precise, via the same Diophantine solve over the full
//!    iteration box, *including* the equal-iteration case: within one
//!    iteration reads happen before writes, so a re-run of `A[i] =
//!    A[i] + A[i]` would observe its own output).
//!
//! [`certify`] computes a certificate (plus human-readable witness
//! notes for every refuted fact); [`recheck`] validates a certificate
//! embedded in a plan against a fresh recomputation, rejecting stale
//! fingerprints and flipped verdict bits — the tamper-evidence the
//! executor's relaxed-store fast path and certified retry rely on.

#![warn(missing_docs)]

use alp_analysis::search::find_integer_point;
use alp_lattice::Lattice;
use alp_linalg::fm::System;
use alp_linalg::{integer_nullspace, solve_integer, IMat, IVec, Rat};
use alp_loopir::{ArrayRef, LoopNest};
use alp_plan::{rect_tiles, Certificate, IterBox, PartitionPlan, PlanError};

/// Why a plan could not be certified, or why an embedded certificate
/// was rejected on re-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The plan carries no certificate but one was required
    /// (`run --require-cert`, [`recheck`]).
    Missing,
    /// The certificate's fingerprint does not match the plan's: it was
    /// computed for a different nest (or tampered with).
    Stale {
        /// Fingerprint the plan records.
        expected: String,
        /// Fingerprint the certificate records.
        found: String,
    },
    /// A recorded verdict disagrees with recomputation — the
    /// certificate was edited after it was issued.
    Mismatch {
        /// Which fact disagrees (`coverage`, `write_disjoint`,
        /// `in_bounds`, or `idempotent`).
        fact: &'static str,
        /// What the embedded certificate claims.
        claimed: bool,
        /// What recomputation proves.
        proven: bool,
    },
    /// The plan itself could not be interpreted (embedded source,
    /// fingerprint, or grid problems).
    Plan(PlanError),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Missing => {
                write!(f, "plan carries no certificate (run `alp-cli certify`)")
            }
            CertifyError::Stale { expected, found } => write!(
                f,
                "certificate is stale: plan fingerprint {expected} but certificate \
                 was issued for {found}"
            ),
            CertifyError::Mismatch {
                fact,
                claimed,
                proven,
            } => write!(
                f,
                "certificate tampered: `{fact}` claims {claimed} but recomputation \
                 proves {proven}"
            ),
            CertifyError::Plan(e) => write!(f, "cannot certify plan: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CertifyError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for CertifyError {
    fn from(e: PlanError) -> Self {
        CertifyError::Plan(e)
    }
}

/// A computed certificate plus a deterministic witness note for every
/// refuted fact (empty when all four facts are proven).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyReport {
    /// The four verdicts, bound to the plan's fingerprint.
    pub certificate: Certificate,
    /// One human-readable line per refuted fact, with a concrete
    /// counterexample (tile indices, iterations, array elements).
    pub notes: Vec<String>,
}

impl CertifyReport {
    /// True when every fact needed for the relaxed-store fast path is
    /// proven (coverage and cross-tile write disjointness).
    pub fn unlocks_fastpath(&self) -> bool {
        self.certificate.coverage && self.certificate.write_disjoint
    }
}

/// Compute a certificate for a plan from scratch.
///
/// Never fails on a *refutable* fact — a refuted fact is recorded as
/// `false` with a witness note.  Fails only when the plan itself cannot
/// be interpreted (bad embedded source, fingerprint mismatch, grid that
/// does not fit the nest).
pub fn certify(plan: &PartitionPlan) -> Result<CertifyReport, CertifyError> {
    let nest = plan.nest()?;
    let mut notes = Vec::new();
    let (coverage, write_disjoint) = match &plan.transform {
        None => {
            let (tiles, _) = rect_tiles(&nest, &plan.proc_grid)?;
            let boxes: Vec<Box128> = tiles.iter().map(box128).collect();
            let coverage = prove_coverage(&nest, &boxes, &mut notes);
            let writes: Vec<ArrayRef> = nest.body.iter().map(|st| st.lhs.clone()).collect();
            let wd = prove_write_disjoint(&writes, &boxes, &mut notes);
            (coverage, wd)
        }
        Some(t) => {
            // Skewed plan: coverage and write-disjointness are proven in
            // the transformed j = i·U coordinates, where the tiles are
            // rectangular again.  In-bounds and idempotence below stay
            // in i-space — the transform is a bijection of the
            // iteration set, so those facts are coordinate-free.
            let (tiles, _, domain) = alp_plan::transformed_tiles(&nest, t, &plan.proc_grid)?;
            let jboxes: Vec<Box128> = tiles.iter().map(box128).collect();
            let coverage = prove_skewed_coverage(&nest, &domain, &tiles, &jboxes, &mut notes);
            // Write refs composed with V = U⁻¹ address the same
            // elements from j-points that the originals address from
            // their pre-images; solving over the *unclipped* j-boxes
            // over-approximates each tile's iterations, which can only
            // refute (never spuriously prove) disjointness.
            let writes: Vec<ArrayRef> = nest
                .body
                .iter()
                .map(|st| transformed_ref(&st.lhs, t.v()))
                .collect();
            let wd = prove_write_disjoint(&writes, &jboxes, &mut notes);
            (coverage, wd)
        }
    };
    let in_bounds = prove_in_bounds(&nest, &mut notes);
    let idempotent = prove_idempotent(&nest, &mut notes);
    Ok(CertifyReport {
        certificate: Certificate {
            fingerprint: plan.fingerprint.clone(),
            coverage,
            write_disjoint,
            in_bounds,
            idempotent,
        },
        notes,
    })
}

/// Validate the certificate embedded in a plan: recompute all four
/// facts and require exact agreement (a certificate claiming *less*
/// than is provable is just as tampered as one claiming more).
///
/// Returns the freshly proven certificate on success, so callers gate
/// the fast path on what was *re-proven*, never on the stored bits.
pub fn recheck(plan: &PartitionPlan) -> Result<Certificate, CertifyError> {
    let cert = plan.certificate.as_ref().ok_or(CertifyError::Missing)?;
    if cert.fingerprint != plan.fingerprint {
        return Err(CertifyError::Stale {
            expected: plan.fingerprint.clone(),
            found: cert.fingerprint.clone(),
        });
    }
    let fresh = certify(plan)?.certificate;
    for (fact, claimed, proven) in [
        ("coverage", cert.coverage, fresh.coverage),
        ("write_disjoint", cert.write_disjoint, fresh.write_disjoint),
        ("in_bounds", cert.in_bounds, fresh.in_bounds),
        ("idempotent", cert.idempotent, fresh.idempotent),
    ] {
        if claimed != proven {
            return Err(CertifyError::Mismatch {
                fact,
                claimed,
                proven,
            });
        }
    }
    Ok(fresh)
}

/// An inclusive per-dimension iteration box in exact `i128` arithmetic
/// (tile boxes arrive as `i64` [`IterBox`]es; loop-bound boxes are
/// native `i128`).
type Box128 = Vec<(i128, i128)>;

fn box128(b: &IterBox) -> Box128 {
    b.lo.iter()
        .zip(&b.hi)
        .map(|(&l, &h)| (i128::from(l), i128::from(h)))
        .collect()
}

fn box_is_empty(b: &Box128) -> bool {
    b.iter().any(|&(l, h)| l > h)
}

fn box_volume(b: &Box128) -> u128 {
    b.iter()
        .map(|&(l, h)| if h < l { 0 } else { (h - l + 1) as u128 })
        .product()
}

/// Fact 1: the tiles partition the iteration space exactly.
///
/// * pairwise disjointness: the conjunction of two tile boxes has no
///   integer point (FM feasibility over the 2·`l` inequalities);
/// * containment: a tile point violating a loop bound is infeasible;
/// * exactness: disjoint + contained tiles whose volumes sum to the
///   space's volume leave no gap.
fn prove_coverage(nest: &LoopNest, boxes: &[Box128], notes: &mut Vec<String>) -> bool {
    let l = nest.depth();
    let mut ok = true;
    for a in 0..boxes.len() {
        if box_is_empty(&boxes[a]) {
            continue;
        }
        for b in (a + 1)..boxes.len() {
            if box_is_empty(&boxes[b]) {
                continue;
            }
            let mut sys = System::new(l);
            constrain_box(&mut sys, &boxes[a], identity_coeffs(l));
            constrain_box(&mut sys, &boxes[b], identity_coeffs(l));
            if let Some(p) = find_integer_point(&sys) {
                notes.push(format!(
                    "coverage: tiles {a} and {b} both contain iteration {p:?}"
                ));
                ok = false;
            }
        }
    }
    for (t, bx) in boxes.iter().enumerate() {
        if box_is_empty(bx) {
            continue;
        }
        for (k, lp) in nest.loops.iter().enumerate() {
            for (bound, side) in [(lp.lower - 1, "below"), (lp.upper + 1, "above")] {
                let mut sys = System::new(l);
                constrain_box(&mut sys, bx, identity_coeffs(l));
                let mut coeffs = vec![Rat::int(0); l];
                coeffs[k] = Rat::int(1);
                if side == "below" {
                    sys.le(coeffs, Rat::int(bound));
                } else {
                    sys.ge(coeffs, Rat::int(bound));
                }
                if let Some(p) = find_integer_point(&sys) {
                    notes.push(format!(
                        "coverage: tile {t} escapes the `{}` bounds {side} at iteration {p:?}",
                        lp.name
                    ));
                    ok = false;
                }
            }
        }
    }
    let covered: u128 = boxes.iter().map(box_volume).sum();
    let space = nest.iteration_count().max(0) as u128;
    if covered != space {
        notes.push(format!(
            "coverage: tile volumes sum to {covered} but the iteration space has \
             {space} points — the tiling leaves a gap"
        ));
        ok = false;
    }
    ok
}

/// Fact 1, skewed form: the rectangular `j`-space tiles, each clipped
/// against the transformed domain, partition the iteration space
/// exactly.
///
/// * pairwise disjointness of the (unclipped) `j`-boxes is the same FM
///   feasibility question as the rectangular case — disjoint boxes have
///   disjoint clippings;
/// * exactness is an integer count: row clipping is exact
///   (every emitted row contains precisely the in-domain points, see
///   [`TransformedDomain`](alp_plan::TransformedDomain)), and `U` is a
///   bijection, so the clipped counts summing to the `i`-space volume
///   means no gap and — with disjointness — no overlap.
fn prove_skewed_coverage(
    nest: &LoopNest,
    domain: &alp_plan::TransformedDomain,
    tiles: &[alp_plan::IterBox],
    jboxes: &[Box128],
    notes: &mut Vec<String>,
) -> bool {
    let l = nest.depth();
    let mut ok = true;
    for a in 0..jboxes.len() {
        if box_is_empty(&jboxes[a]) {
            continue;
        }
        for b in (a + 1)..jboxes.len() {
            if box_is_empty(&jboxes[b]) {
                continue;
            }
            let mut sys = System::new(l);
            constrain_box(&mut sys, &jboxes[a], identity_coeffs(l));
            constrain_box(&mut sys, &jboxes[b], identity_coeffs(l));
            if let Some(p) = find_integer_point(&sys) {
                notes.push(format!(
                    "coverage: transformed tiles {a} and {b} both contain j-point {p:?}"
                ));
                ok = false;
            }
        }
    }
    let covered: i128 = tiles.iter().map(|t| domain.count(t)).sum();
    let space = nest.iteration_count();
    if covered != space {
        notes.push(format!(
            "coverage: clipped transformed tiles hold {covered} points but the \
             iteration space has {space} — the skewed tiling leaves a gap"
        ));
        ok = false;
    }
    ok
}

/// Rewrite a reference's subscripts from original coordinates `ī` to
/// transformed coordinates `j̄ = ī·U` by composing with `V = U⁻¹`
/// (`ī = j̄·V`): the coefficient on `j_k` becomes `Σ_d V[k][d]·c_d`,
/// constants unchanged.  `ref'(j̄) = ref(j̄·V)` exactly.
fn transformed_ref(r: &ArrayRef, v: &IMat) -> ArrayRef {
    let mut out = r.clone();
    for sub in &mut out.subscripts {
        let n = sub.coeffs.len();
        sub.coeffs = (0..n)
            .map(|k| (0..n).map(|d| v[(k, d)] * sub.coeffs[d]).sum())
            .collect();
    }
    out
}

/// Fact 2: per array, the write footprints of distinct tiles are
/// disjoint.  Every ordered pair of write references is tested across
/// every unordered pair of non-empty tiles; a cheap exact interval
/// reject (axis-aligned footprint boxes) filters pairs whose footprints
/// cannot meet, and the Diophantine solve settles the rest.  `writes`
/// and `boxes` must share one coordinate system (original `i`-space for
/// rectangular plans, transformed `j`-space for skewed ones).
fn prove_write_disjoint(writes: &[ArrayRef], boxes: &[Box128], notes: &mut Vec<String>) -> bool {
    for a in 0..boxes.len() {
        if box_is_empty(&boxes[a]) {
            continue;
        }
        for b in (a + 1)..boxes.len() {
            if box_is_empty(&boxes[b]) {
                continue;
            }
            for w1 in writes {
                for w2 in writes {
                    if w1.array != w2.array
                        || footprint_boxes_disjoint(w1, &boxes[a], w2, &boxes[b])
                    {
                        continue;
                    }
                    if let Some((i1, i2)) = box_conflict(w1, &boxes[a], w2, &boxes[b]) {
                        notes.push(format!(
                            "write-disjoint: tiles {a} and {b} both write {}{:?} \
                             (iterations {:?} and {:?})",
                            w1.array,
                            w1.eval(&i1).0,
                            i1.0,
                            i2.0
                        ));
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Fact 3: every reference stays inside its array's extents for all
/// in-bounds iterations, one FM feasibility question per subscript
/// dimension per side.
fn prove_in_bounds(nest: &LoopNest, notes: &mut Vec<String>) -> bool {
    let l = nest.depth();
    let extents = nest.array_extents();
    let full: Box128 = nest.loops.iter().map(|lp| (lp.lower, lp.upper)).collect();
    let mut ok = true;
    for r in nest.all_refs() {
        let Some(ext) = extents.get(&r.array) else {
            continue;
        };
        for (d, sub) in r.subscripts.iter().enumerate() {
            let (lo, hi) = ext[d];
            let coeffs: Vec<Rat> = sub.coeffs.iter().map(|&c| Rat::int(c)).collect();
            for (escape, side) in [(lo - 1, "below"), (hi + 1, "above")] {
                let mut sys = System::new(l);
                constrain_box(&mut sys, &full, identity_coeffs(l));
                if side == "below" {
                    sys.le(coeffs.clone(), Rat::int(escape - sub.constant));
                } else {
                    sys.ge(coeffs.clone(), Rat::int(escape - sub.constant));
                }
                if let Some(p) = find_integer_point(&sys) {
                    notes.push(format!(
                        "in-bounds: {} subscript {d} escapes [{lo}, {hi}] {side} at \
                         iteration {p:?}",
                        r.array
                    ));
                    ok = false;
                }
            }
        }
    }
    ok
}

/// Fact 4: no read can touch a location any statement writes, so
/// re-running any tile (at any repetition) recomputes identical values.
/// Element-precise: `A[i] = A[i+N]` certifies when the bounds keep the
/// read and write regions apart, where the syntactic array-name rule
/// cannot.
fn prove_idempotent(nest: &LoopNest, notes: &mut Vec<String>) -> bool {
    let full: Box128 = nest.loops.iter().map(|lp| (lp.lower, lp.upper)).collect();
    let writes: Vec<&ArrayRef> = nest.body.iter().map(|st| &st.lhs).collect();
    for st in &nest.body {
        for r in &st.rhs {
            for w in &writes {
                if r.array != w.array {
                    continue;
                }
                if let Some((i1, i2)) = box_conflict(r, &full, w, &full) {
                    notes.push(format!(
                        "idempotence: iteration {:?} reads {}{:?}, which iteration \
                         {:?} writes — a re-run could observe partial output",
                        i1.0,
                        r.array,
                        r.eval(&i1).0,
                        i2.0
                    ));
                    return false;
                }
            }
        }
    }
    true
}

/// The PR-1 stacked Diophantine solve over symbolic boxes: is there
/// `ī₁ ∈ box1`, `ī₂ ∈ box2` with `r1(ī₁) == r2(ī₂)`?  `x·M = b` with
/// `M = [G₁; −G₂]`, particular solution + reduced nullspace basis, then
/// a bounded integer search of the solution lattice inside the two
/// boxes.  No disequality: equal iterations count as a conflict here
/// (the callers that need distinctness pass disjoint boxes).
fn box_conflict(
    r1: &ArrayRef,
    box1: &Box128,
    r2: &ArrayRef,
    box2: &Box128,
) -> Option<(IVec, IVec)> {
    let l = box1.len();
    debug_assert_eq!(box2.len(), l, "boxes of one nest have equal rank");
    let d = r1.dim();
    if d != r2.dim() {
        return None; // malformed pairing; other layers diagnose it
    }
    let g1 = r1.g_matrix();
    let g2 = r2.g_matrix();
    let mut m = IMat::zeros(2 * l, d);
    for r in 0..l {
        for c in 0..d {
            m[(r, c)] = g1[(r, c)];
            m[(l + r, c)] = -g2[(r, c)];
        }
    }
    let b = r2.offset().sub(&r1.offset()).expect("dims match");
    let x0 = solve_integer(&m, &b)?;
    let null = integer_nullspace(&m);
    let basis = if null.is_empty() {
        Vec::new()
    } else {
        Lattice::new(IMat::from_row_vecs(&null))
            .reduced_basis()
            .row_vecs()
    };
    let mut sys = System::new(basis.len());
    for k in 0..2 * l {
        let (lo, hi) = if k < l { box1[k] } else { box2[k - l] };
        let coeffs: Vec<Rat> = basis.iter().map(|n| Rat::int(n[k])).collect();
        sys.le(coeffs.clone(), Rat::int(hi - x0[k]));
        sys.ge(coeffs, Rat::int(lo - x0[k]));
    }
    let c = find_integer_point(&sys)?;
    let mut x: Vec<i128> = x0.0.clone();
    for (r, n) in basis.iter().enumerate() {
        for (k, xv) in x.iter_mut().enumerate() {
            *xv += c[r] * n[k];
        }
    }
    Some((IVec(x[..l].to_vec()), IVec(x[l..].to_vec())))
}

/// Exact interval image of each subscript over each box; disjoint in
/// some dimension ⇒ the footprints cannot meet (sound fast reject
/// before the Diophantine solve).
fn footprint_boxes_disjoint(r1: &ArrayRef, b1: &Box128, r2: &ArrayRef, b2: &Box128) -> bool {
    if r1.dim() != r2.dim() {
        return true;
    }
    for d in 0..r1.dim() {
        let (lo1, hi1) = affine_range(&r1.subscripts[d], b1);
        let (lo2, hi2) = affine_range(&r2.subscripts[d], b2);
        if hi1 < lo2 || hi2 < lo1 {
            return true;
        }
    }
    false
}

/// `[min, max]` of an affine form over an inclusive box.
fn affine_range(expr: &alp_loopir::AffineExpr, b: &Box128) -> (i128, i128) {
    let mut lo = expr.constant;
    let mut hi = expr.constant;
    for (k, &c) in expr.coeffs.iter().enumerate() {
        let (a, z) = (c * b[k].0, c * b[k].1);
        lo += a.min(z);
        hi += a.max(z);
    }
    (lo, hi)
}

/// Coefficient rows selecting each variable in turn (`x_k` alone).
fn identity_coeffs(l: usize) -> Vec<Vec<Rat>> {
    (0..l)
        .map(|k| {
            let mut row = vec![Rat::int(0); l];
            row[k] = Rat::int(1);
            row
        })
        .collect()
}

/// Add `lo_k ≤ selector_k(x) ≤ hi_k` for every dimension of a box.
fn constrain_box(sys: &mut System, b: &Box128, selectors: Vec<Vec<Rat>>) {
    for (k, coeffs) in selectors.into_iter().enumerate() {
        sys.le(coeffs.clone(), Rat::int(b[k].1));
        sys.ge(coeffs, Rat::int(b[k].0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;
    use alp_plan::LegalityVerdict;

    fn plan_for(src: &str, processors: i128) -> PartitionPlan {
        let nest = parse(src).unwrap();
        PartitionPlan::build(&nest, processors, None, LegalityVerdict::Unchecked).unwrap()
    }

    fn plan_with_grid(src: &str, grid: Vec<i128>) -> PartitionPlan {
        let nest = parse(src).unwrap();
        let (_, chunks) = rect_tiles(&nest, &grid).unwrap();
        let partition = alp_partition_stub(grid, chunks);
        PartitionPlan::build_with_partition(
            &nest,
            partition.proc_grid.iter().product(),
            None,
            LegalityVerdict::Unchecked,
            partition,
            "test-fixed-grid",
        )
        .unwrap()
    }

    fn alp_partition_stub(proc_grid: Vec<i128>, chunks: Vec<i128>) -> alp_partition::RectPartition {
        alp_partition::RectPartition {
            tile_extents: chunks.iter().map(|c| c - 1).collect(),
            proc_grid,
            cost: Rat::int(0),
        }
    }

    #[test]
    fn stencil_certifies_all_but_nothing_spurious() {
        // Identity writes, disjoint read array: everything proven.
        let plan = plan_for(
            "doall (i, 0, 31) { doall (j, 0, 31) { A[i,j] = B[i,j] + B[i+1,j]; } }",
            4,
        );
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage);
        assert!(report.certificate.write_disjoint);
        assert!(report.certificate.in_bounds);
        assert!(report.certificate.idempotent);
        assert!(report.notes.is_empty(), "{:?}", report.notes);
        assert!(report.unlocks_fastpath());
    }

    #[test]
    fn accumulate_matmul_ij_blocks_are_write_disjoint_but_not_idempotent() {
        let src = "doall (i, 0, 15) { doall (j, 0, 15) { doall (k, 0, 15) {
                     l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
                   } } }";
        let plan = plan_with_grid(src, vec![2, 2, 1]);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage);
        // Each (i, j) block owns its C elements: k does not address C.
        assert!(report.certificate.write_disjoint);
        assert!(report.certificate.in_bounds);
        // The accumulate reads its own old value: replay is unsafe.
        assert!(!report.certificate.idempotent);
        assert!(report.unlocks_fastpath());
    }

    #[test]
    fn accumulate_matmul_k_split_is_refuted() {
        let src = "doall (i, 0, 15) { doall (j, 0, 15) { doall (k, 0, 15) {
                     l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
                   } } }";
        let plan = plan_with_grid(src, vec![1, 1, 4]);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage);
        // Every k-tile writes every C[i, j]: the Diophantine solve must
        // produce a concrete colliding pair.
        assert!(!report.certificate.write_disjoint);
        assert!(!report.unlocks_fastpath());
        assert!(
            report.notes.iter().any(|n| n.contains("write-disjoint")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn parity_strided_writes_need_the_diophantine_solve() {
        // A[2i] from one tile vs A[2i+1] from another: footprint boxes
        // overlap but the lattices never meet — interval arithmetic
        // alone cannot prove this disjoint.
        let src = "doall (i, 0, 15) { A[2*i] = B[i]; A[2*i+1] = B[i+1]; }";
        let plan = plan_with_grid(src, vec![4]);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage, "{:?}", report.notes);
        assert!(report.certificate.write_disjoint, "{:?}", report.notes);
    }

    #[test]
    fn elementwise_self_copy_beyond_bounds_is_idempotent() {
        // A[i] = A[i+32] on i ∈ [0, 15]: reads [32, 47], writes [0, 15].
        // The syntactic rule (array-name granularity) refuses this; the
        // dataflow proof certifies it.
        let plan = plan_for("doall (i, 0, 15) { A[i] = A[i+32]; }", 4);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.idempotent, "{:?}", report.notes);
    }

    #[test]
    fn self_doubling_is_not_idempotent() {
        // A[i] = A[i] + A[i]: the equal-iteration read/write overlap
        // matters — a re-run doubles again.
        let plan = plan_for("doall (i, 0, 15) { A[i] = A[i] + A[i]; }", 4);
        let report = certify(&plan).unwrap();
        assert!(!report.certificate.idempotent);
        assert!(
            report.notes.iter().any(|n| n.contains("idempotence")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn in_bounds_holds_on_ragged_tiles() {
        // 13 iterations on 4 processors: the last tile is short, the
        // one before is clamped.
        let plan = plan_with_grid("doall (i, 0, 12) { A[i] = B[3*i+2]; }", vec![4]);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage, "{:?}", report.notes);
        assert!(report.certificate.in_bounds, "{:?}", report.notes);
    }

    #[test]
    fn recheck_accepts_honest_and_rejects_tampered_certificates() {
        let plan = plan_for(
            "doall (i, 0, 31) { doall (j, 0, 31) { A[i,j] = B[i,j]; } }",
            4,
        );
        let report = certify(&plan).unwrap();
        let certified = plan.clone().with_certificate(report.certificate.clone());
        assert_eq!(recheck(&certified).unwrap(), report.certificate);

        // Flipped verdict bit.
        let mut flipped = report.certificate.clone();
        flipped.write_disjoint = false;
        let bad = plan.clone().with_certificate(flipped);
        assert!(matches!(
            recheck(&bad),
            Err(CertifyError::Mismatch {
                fact: "write_disjoint",
                claimed: false,
                proven: true,
            })
        ));

        // Stale fingerprint.
        let mut stale = report.certificate.clone();
        stale.fingerprint = "deadbeefdeadbeef".into();
        let bad = plan.clone().with_certificate(stale);
        assert!(matches!(recheck(&bad), Err(CertifyError::Stale { .. })));

        // No certificate at all.
        assert!(matches!(recheck(&plan), Err(CertifyError::Missing)));
    }

    #[test]
    fn empty_boundary_tiles_do_not_break_coverage() {
        // 3 iterations on 4 processors: tile 3 is empty but numbering
        // and exact coverage still hold.
        let plan = plan_with_grid("doall (i, 0, 2) { A[i] = B[i]; }", vec![4]);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage, "{:?}", report.notes);
        assert!(report.certificate.write_disjoint, "{:?}", report.notes);
    }

    #[test]
    fn coverage_refutes_a_mismatched_grid() {
        // Hand-build a plan whose recorded grid leaves iterations
        // uncovered relative to a *different* nest… not possible via
        // rect_tiles (it always partitions), so corrupt the grid after
        // the fact: an extra processor axis entry makes rect_tiles
        // fail, surfacing as a Plan error rather than a panic.
        let mut plan = plan_for("doall (i, 0, 15) { A[i] = B[i]; }", 4);
        plan.proc_grid = vec![4, 4];
        assert!(matches!(certify(&plan), Err(CertifyError::Plan(_))));
    }

    fn skewed_plan_for(src: &str, processors: i128) -> PartitionPlan {
        let nest = parse(src).unwrap();
        let cands = alp_plan::skewed_candidates(
            &nest,
            processors,
            &alp_partition::ParaSearchConfig::default(),
        )
        .unwrap();
        assert!(!cands.is_empty(), "no skewed candidate for:\n{src}");
        PartitionPlan::build_skewed(
            &nest,
            processors,
            None,
            LegalityVerdict::Unchecked,
            &cands[0],
            "test-skewed",
        )
        .unwrap()
    }

    #[test]
    fn skewed_plan_certifies_in_transformed_coordinates() {
        // A genuinely skewed (H ≠ I) plan re-proves all four facts:
        // coverage and write-disjointness over the clipped j-space
        // tiles, in-bounds and idempotence in the original coordinates.
        let plan = skewed_plan_for(
            "doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = B[i,j] + B[i+1,j+1]; } }",
            4,
        );
        assert!(plan.transform.is_some());
        assert!(!plan.transform.as_ref().unwrap().is_identity());
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage, "{:?}", report.notes);
        assert!(report.certificate.write_disjoint, "{:?}", report.notes);
        assert!(report.certificate.in_bounds, "{:?}", report.notes);
        assert!(report.certificate.idempotent, "{:?}", report.notes);
        assert!(report.unlocks_fastpath());

        // And the certificate survives the embed → recheck round trip.
        let certified = plan.clone().with_certificate(report.certificate.clone());
        assert_eq!(recheck(&certified).unwrap(), report.certificate);
    }

    #[test]
    fn skewed_k_split_accumulate_is_still_refuted() {
        // Transform-space reasoning must not weaken the refutation
        // machinery: an accumulate whose tiles share destination
        // elements is refuted in j-space exactly as in i-space.
        let src = "doall (i, 0, 7) { doall (k, 0, 7) {
                     l$C[i] = l$C[i] + A[i,k];
                   } }";
        let nest = parse(src).unwrap();
        let u = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        let t = alp_plan::Transform::new(u, alp_plan::fingerprint_hex(&nest)).unwrap();
        let plan = plan_with_grid(src, vec![1, 4]).with_transform(t);
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage, "{:?}", report.notes);
        // Splitting k across tiles makes distinct tiles write the same
        // C[i] — refuted with a concrete witness.
        assert!(!report.certificate.write_disjoint);
        assert!(
            report.notes.iter().any(|n| n.contains("write-disjoint")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn doseq_wrapper_certifies_like_the_inner_doall() {
        let plan = plan_for(
            "doseq (t, 0, 3) { doall (i, 0, 15) { A[i] = B[i] + B[i+1]; } }",
            4,
        );
        let report = certify(&plan).unwrap();
        assert!(report.certificate.coverage);
        assert!(report.certificate.write_disjoint);
        assert!(report.certificate.idempotent);
    }
}
