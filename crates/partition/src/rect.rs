//! Rectangular loop partitioning (§3.6, §3.7; Examples 8–10).

use alp_footprint::CostModel;
use alp_linalg::{max_independent_columns, solve_rational, Rat};
use alp_loopir::LoopNest;

/// A rectangular partition of the iteration space among `P` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RectPartition {
    /// Processors along each loop dimension (`Π = P`, up to the divisor
    /// structure of `P`).
    pub proc_grid: Vec<i128>,
    /// Tile extent `λ_k` per dimension (inclusive; a tile spans
    /// `λ_k + 1` iterations, clipped at the iteration-space boundary).
    pub tile_extents: Vec<i128>,
    /// The model cost (estimated cumulative footprint) of one tile.
    pub cost: Rat,
}

impl RectPartition {
    /// Total number of tiles.
    pub fn tiles(&self) -> i128 {
        self.proc_grid.iter().product()
    }
}

/// The closed-form (continuous) optimal aspect ratio of §3.6.
///
/// When every shape-dependent class reduces (§3.4.1) to a square
/// nonsingular `G`, Theorem 4 makes the footprint
/// `V + Σ_i c_i·Π_{j≠i}(λ_j+1)` with `c_i = Σ_classes |u_i|`, and Lagrange
/// multipliers give `λ_i ∝ c_i` (Example 8's `L_i:L_j:L_k :: 2:3:4`).
///
/// Returns `None` when some active class is rank-deficient (no product
/// form — the caller should fall back to the discrete search of
/// [`partition_rect`]) or when every class is shape-invariant (any shape
/// is optimal).  Dimensions with `c_i = 0` attract no traffic; they are
/// reported as `0` and should be given as much extent as possible.
pub fn optimal_aspect_ratio(model: &CostModel) -> Option<Vec<Rat>> {
    aspect_ratio_with_spread(model, SpreadKind::MaxMin)
}

/// Which spread formulation drives the coefficients (Def. 8 vs
/// footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpreadKind {
    /// `â = max − min` — the cache formulation: data between the extremes
    /// is dynamically cached, so only the envelope costs.
    MaxMin,
    /// `a⁺ = Σ |offset − median|` — the data-partitioning formulation
    /// (footnote 2): without caching, every reference displaced from the
    /// home tile pays on every access.
    Cumulative,
}

/// [`optimal_aspect_ratio`] generalized over the spread formulation.
///
/// `SpreadKind::Cumulative` gives the tile aspect ratio for **data
/// partitioning** on machines whose remote accesses are never cached
/// locally (footnote 2 of the paper).
pub fn aspect_ratio_with_spread(model: &CostModel, kind: SpreadKind) -> Option<Vec<Rat>> {
    let l = model.depth();
    let mut coeffs = vec![Rat::ZERO; l];
    let mut any_active = false;
    for cc in model.active_classes() {
        any_active = true;
        let g = &cc.class.g;
        let keep = max_independent_columns(g);
        let g_red = g.select_columns(&keep);
        if g_red.rows() != g_red.cols() || !g_red.is_nonsingular() {
            return None;
        }
        let spread = match kind {
            SpreadKind::MaxMin => cc.class.spread(),
            SpreadKind::Cumulative => cc.class.cumulative_spread(),
        };
        let spread_red = alp_linalg::IVec(keep.iter().map(|&k| spread[k]).collect());
        let u = solve_rational(&g_red, &spread_red)?;
        for (i, ui) in u.iter().enumerate() {
            coeffs[i] = coeffs[i] + ui.abs();
        }
    }
    if !any_active {
        return None;
    }
    Some(coeffs)
}

/// §2.2's small-cache adjustment: keep the optimal aspect *ratio* but
/// shrink the block a processor executes at one time until its modeled
/// footprint fits the cache.
///
/// Returns the largest extents `λ` with `λ_k + 1 ≈ scale · ratio_k`,
/// clipped to `max_extents`, whose `model.cost_rect` does not exceed
/// `capacity` (in cache lines / elements).  Dimensions with zero ratio
/// coefficient get their full extent (traffic-free directions are free
/// to keep).  Returns `None` if even the 1-iteration block overflows.
///
/// # Panics
/// Panics on dimension mismatches or `capacity < 1`.
pub fn cache_blocked_extents(
    model: &CostModel,
    ratio: &[Rat],
    capacity: i128,
    max_extents: &[i128],
) -> Option<Vec<i128>> {
    assert!(capacity >= 1, "capacity must be positive");
    assert_eq!(ratio.len(), max_extents.len(), "dimension mismatch");
    assert_eq!(ratio.len(), model.depth(), "model depth mismatch");
    let l = ratio.len();
    let extents_for = |scale: f64| -> Vec<i128> {
        (0..l)
            .map(|k| {
                let r = ratio[k].to_f64();
                if r <= 0.0 {
                    max_extents[k]
                } else {
                    (((r * scale).floor() as i128) - 1).clamp(0, max_extents[k])
                }
            })
            .collect()
    };
    // Binary search the largest feasible scale.
    let fits = |scale: f64| model.cost_rect(&extents_for(scale)) <= Rat::int(capacity);
    if !fits(
        1.0 / ratio
            .iter()
            .map(|r| r.to_f64())
            .fold(f64::INFINITY, f64::min)
            .max(1e-9),
    ) {
        // Even the smallest nonzero block may overflow; check the unit block.
        let unit = vec![0i128; l];
        if model.cost_rect(&unit) > Rat::int(capacity) {
            return None;
        }
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while fits(hi) && extents_for(hi) != max_extents.to_vec() {
        lo = hi;
        hi *= 2.0;
        if hi > 1e9 {
            break;
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let ext = extents_for(lo);
    if model.cost_rect(&ext) <= Rat::int(capacity) {
        Some(ext)
    } else {
        let unit = vec![0i128; l];
        (model.cost_rect(&unit) <= Rat::int(capacity)).then_some(unit)
    }
}

/// All ordered factorizations of `p` into `dims` positive factors.
pub fn factorizations(p: i128, dims: usize) -> Vec<Vec<i128>> {
    fn rec(p: i128, dims: usize, acc: &mut Vec<i128>, out: &mut Vec<Vec<i128>>) {
        if dims == 1 {
            acc.push(p);
            out.push(acc.clone());
            acc.pop();
            return;
        }
        let mut d = 1;
        while d * d <= p {
            if p % d == 0 {
                for f in [d, p / d] {
                    acc.push(f);
                    rec(p / f, dims - 1, acc, out);
                    acc.pop();
                    if d * d == p {
                        break; // avoid the duplicate (d, p/d) pair
                    }
                }
            }
            d += 1;
        }
        out.sort();
        out.dedup();
    }
    let mut out = Vec::new();
    if p >= 1 && dims >= 1 {
        rec(p, dims, &mut Vec::new(), &mut out);
    }
    out
}

/// The discrete rectangular partitioner implemented in the Alewife
/// compiler subset (§4): enumerate every factorization of `P` into a
/// processor grid, derive the tile extents from the loop bounds, evaluate
/// the Theorem-4 cost model, and keep the cheapest.
///
/// # Panics
/// Panics if `p < 1` or the nest has no parallel loops.
pub fn partition_rect(nest: &LoopNest, p: i128) -> RectPartition {
    partition_rect_with_model(nest, p, &CostModel::from_nest(nest))
}

/// [`partition_rect`] with a caller-supplied cost model — e.g. one
/// carrying an Appendix-A synchronization weight
/// ([`CostModel::with_sync_weight`]) or other customizations.
///
/// # Panics
/// Panics if `p < 1`, the nest has no parallel loops, or the model was
/// built for a different depth.
pub fn partition_rect_with_model(nest: &LoopNest, p: i128, model: &CostModel) -> RectPartition {
    assert!(p >= 1, "need at least one processor");
    let l = nest.depth();
    assert!(l >= 1, "nest has no parallel loops");
    assert_eq!(model.depth(), l, "model depth mismatch");
    let trips: Vec<i128> = nest.loops.iter().map(|lp| lp.trip_count()).collect();

    let mut best: Option<RectPartition> = None;
    for grid in factorizations(p, l) {
        // Processors must not outnumber iterations along a dimension.
        if grid.iter().zip(&trips).any(|(&g, &n)| g > n) {
            continue;
        }
        // Tile spans ceil(n/g) iterations -> extent λ = ceil(n/g) - 1.
        let extents: Vec<i128> = grid
            .iter()
            .zip(&trips)
            .map(|(&g, &n)| (n + g - 1) / g - 1)
            .collect();
        let cost = model.cost_rect(&extents);
        let cand = RectPartition {
            proc_grid: grid,
            tile_extents: extents,
            cost,
        };
        match &best {
            Some(b) if b.cost <= cand.cost => {}
            _ => best = Some(cand),
        }
    }
    best.expect("at least the trivial factorization survives")
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn factorizations_basics() {
        let mut f = factorizations(12, 2);
        f.sort();
        assert_eq!(
            f,
            vec![
                vec![1, 12],
                vec![2, 6],
                vec![3, 4],
                vec![4, 3],
                vec![6, 2],
                vec![12, 1]
            ]
        );
        assert_eq!(factorizations(7, 1), vec![vec![7]]);
        assert_eq!(factorizations(1, 3), vec![vec![1, 1, 1]]);
        assert_eq!(factorizations(8, 3).len(), 10);
    }

    #[test]
    fn example8_aspect_ratio_2_3_4() {
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        )
        .unwrap();
        let model = CostModel::from_nest(&nest);
        let ratio = optimal_aspect_ratio(&model).unwrap();
        // L_i : L_j : L_k :: 2 : 3 : 4 (Example 8, matching Abraham-Hudak).
        assert_eq!(ratio, vec![Rat::int(2), Rat::int(3), Rat::int(4)]);
    }

    #[test]
    fn example9_aspect_ratio() {
        // Example 9: two active classes.  B contributes |u| = (2,1), C
        // contributes |u| = (2,3)... in det form the traffic is
        // 4L11 + 4L22 (the memo's printed 4L11 = 6L22 does not match
        // exact enumeration; see EXPERIMENTS.md).  Our coefficients:
        // B: u = (2,1); C: u solves u·[[1,0],[1,1]] = (1,3) -> u = (-2,3),
        // |u| = (2,3).  c = (4,4) -> square tiles.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3];
             } }",
        )
        .unwrap();
        let model = CostModel::from_nest(&nest);
        let ratio = optimal_aspect_ratio(&model).unwrap();
        assert_eq!(ratio, vec![Rat::int(4), Rat::int(4)]);
    }

    #[test]
    fn example10_aspect_ratio() {
        // Example 10: B class u = (3,1); C pair class (reduced) u = (0,1).
        // c = (3, 2): minimize 3(L_j+1) + 2(L_i+1)... the paper phrases
        // the optimum as 2L_i = 3L_j + 1 via the +1-corrected products;
        // the continuous ratio is λ_i : λ_j :: 3 : 2.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                      + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
             } }",
        )
        .unwrap();
        let model = CostModel::from_nest(&nest);
        let ratio = optimal_aspect_ratio(&model).unwrap();
        assert_eq!(ratio, vec![Rat::int(3), Rat::int(2)]);
    }

    #[test]
    fn partition_rect_example8() {
        // 64^3 iterations over 64 processors: the discrete optimizer
        // should pick a grid whose tiles are close to 2:3:4.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        )
        .unwrap();
        let part = partition_rect(&nest, 64);
        assert_eq!(part.tiles(), 64);
        // The best grid concentrates processors along i (smallest tile
        // side on the dimension with the smallest spread coefficient).
        let (gi, gj, gk) = (part.proc_grid[0], part.proc_grid[1], part.proc_grid[2]);
        assert!(gi >= gj && gj >= gk, "grid {:?}", part.proc_grid);
        // Sanity: beats the worst (slab) partition.
        let model = CostModel::from_nest(&nest);
        let slab = model.cost_rect(&[0, 63, 63]);
        assert!(part.cost < slab);
    }

    #[test]
    fn partition_rect_example2_matches_paper() {
        // Example 2: 100 processors, 100x100 iterations.  The paper's
        // partition a (strips along i) wins with 104 B-misses.
        let nest = parse(
            "doall (i, 101, 200) { doall (j, 1, 100) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap();
        let part = partition_rect(&nest, 100);
        assert_eq!(part.proc_grid, vec![1, 100], "full i-extent strips");
        assert_eq!(part.tile_extents, vec![99, 0]);
    }

    #[test]
    fn single_processor_takes_everything() {
        let nest = parse("doall (i, 0, 9) { A[i] = A[i+1]; }").unwrap();
        let part = partition_rect(&nest, 1);
        assert_eq!(part.proc_grid, vec![1]);
        assert_eq!(part.tile_extents, vec![9]);
    }

    #[test]
    fn more_processors_than_iterations_in_one_dim() {
        // 4 iterations of i, 8 processors: grid (4, 2) is forced over
        // (8, 1).
        let nest = parse("doall (i, 0, 3) { doall (j, 0, 63) { A[i,j] = A[i,j+1]; } }").unwrap();
        let part = partition_rect(&nest, 8);
        assert!(part.proc_grid[0] <= 4);
        assert_eq!(part.tiles(), 8);
    }

    #[test]
    fn aspect_ratio_none_for_rank_deficient() {
        let nest = parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i+j] = A[i+j+2]; } }").unwrap();
        let model = CostModel::from_nest(&nest);
        assert!(optimal_aspect_ratio(&model).is_none());
        // The discrete search still works: prefer tiles stretched along
        // the diagonal-collapsing direction... both dims symmetric here,
        // so just check it runs.
        let part = partition_rect(&nest, 4);
        assert_eq!(part.tiles(), 4);
    }

    #[test]
    fn cache_blocking_respects_capacity_and_ratio() {
        // Example 8's stencil: ratio 2:3:4.  Ask for blocks fitting 1000
        // elements.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        )
        .unwrap();
        let model = CostModel::from_nest(&nest);
        let ratio = optimal_aspect_ratio(&model).unwrap();
        let ext = cache_blocked_extents(&model, &ratio, 1000, &[63, 63, 63]).unwrap();
        assert!(model.cost_rect(&ext) <= alp_linalg::Rat::int(1000));
        // Near-maximal: doubling any dimension must overflow.
        for k in 0..3 {
            let mut bigger = ext.clone();
            bigger[k] = (2 * (ext[k] + 1) - 1).min(63);
            if bigger[k] > ext[k] {
                assert!(
                    model.cost_rect(&bigger) > alp_linalg::Rat::int(1000),
                    "dim {k}: {ext:?} -> {bigger:?} still fits"
                );
            }
        }
        // Shape follows the 2:3:4 ratio approximately.
        assert!(ext[0] <= ext[1] && ext[1] <= ext[2], "{ext:?}");
    }

    #[test]
    fn cache_blocking_huge_capacity_takes_everything() {
        let nest = parse("doall (i, 0, 31) { doall (j, 0, 31) { A[i,j] = A[i+1,j+2]; } }").unwrap();
        let model = CostModel::from_nest(&nest);
        let ratio = optimal_aspect_ratio(&model).unwrap();
        let ext = cache_blocked_extents(&model, &ratio, 1_000_000, &[31, 31]).unwrap();
        assert_eq!(ext, vec![31, 31]);
    }

    #[test]
    fn cache_blocking_impossible_capacity() {
        let nest = parse("doall (i, 0, 31) { doall (j, 0, 31) { A[i,j] = B[i,j]; } }").unwrap();
        let model = CostModel::from_nest(&nest);
        // Even one iteration touches 2 elements: capacity 1 is infeasible.
        assert_eq!(
            cache_blocked_extents(&model, &[Rat::ONE, Rat::ONE], 1, &[31, 31]),
            None
        );
    }

    #[test]
    fn sync_weight_keeps_matmul_reduction_private() {
        // Fig. 11 matmul: the pure footprint objective tolerates
        // splitting k (C's footprint shrinks), but the accumulated C then
        // ping-pongs.  An Appendix-A sync weight > 1 makes the optimizer
        // keep k whole.
        let nest = parse(
            "doall (i, 1, 32) { doall (j, 1, 32) { doall (k, 1, 32) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        let pure = partition_rect(&nest, 16);
        assert!(
            pure.proc_grid[2] > 1,
            "pure footprint splits k: {:?}",
            pure.proc_grid
        );

        let weighted = CostModel::from_nest(&nest).with_sync_weight(alp_linalg::Rat::int(4));
        let part = partition_rect_with_model(&nest, 16, &weighted);
        assert_eq!(
            part.proc_grid[2], 1,
            "weighted model keeps k whole: {:?}",
            part.proc_grid
        );
        assert_eq!(part.proc_grid, vec![4, 4, 1]);
    }

    #[test]
    #[should_panic(expected = "sync weight must be >= 1")]
    fn sync_weight_validated() {
        let nest = parse("doall (i, 0, 3) { l$C[i] = l$C[i]; }").unwrap();
        let _ = CostModel::from_nest(&nest).with_sync_weight(alp_linalg::Rat::new(1, 2));
    }

    #[test]
    fn data_partitioning_spread_differs_from_cache_spread() {
        // Four references spaced 0, 1, 2, 3 along i: â_i = 3 but
        // a⁺_i = |0-2| + |1-2| + |2-2| + |3-2| = 4.  Along j a single pair
        // 0/2: â_j = 2, a⁺_j = 2.  Cache ratio 3:2, data ratio 4:2.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = A[i+1,j] + A[i+2,j] + A[i+3,j+2];
             } }",
        )
        .unwrap();
        let model = CostModel::from_nest(&nest);
        let cache = aspect_ratio_with_spread(&model, SpreadKind::MaxMin).unwrap();
        let data = aspect_ratio_with_spread(&model, SpreadKind::Cumulative).unwrap();
        assert_eq!(cache, vec![Rat::int(3), Rat::int(2)]);
        assert_eq!(data, vec![Rat::int(4), Rat::int(2)]);
    }

    #[test]
    fn aspect_ratio_none_when_everything_invariant() {
        let nest = parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = B[j,i]; } }").unwrap();
        let model = CostModel::from_nest(&nest);
        assert!(optimal_aspect_ratio(&model).is_none());
    }
}
