//! Data partitioning, alignment and placement (§4's other two compiler
//! phases).
//!
//! * **Data partitioning & alignment** — arrays are tiled with the same
//!   aspect ratio as the loop tiles that touch them, aligned so that the
//!   tile a processor's iterations mostly reference is the tile stored in
//!   its local memory module.  The alignment offset per class is the
//!   component-wise median of the offsets — the minimizer of the
//!   cumulative spread `a⁺` (footnote 2).
//! * **Placement** — virtual processors (grid coordinates) are embedded
//!   in Alewife's 2-D mesh; neighbouring tiles exchange boundary data,
//!   so the embedding should keep grid neighbours at small hop distance.

use alp_footprint::classify;
use alp_linalg::{max_independent_columns, IVec};
use alp_loopir::LoopNest;
use std::collections::HashMap;

/// The data-space tiling chosen for one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayPartition {
    /// Array name.
    pub array: String,
    /// Extents of one data tile per (kept) array dimension.
    pub tile_extents: Vec<i128>,
    /// Which array dimensions the extents apply to (others are
    /// replicated/sequential — constant subscripts).
    pub dims: Vec<usize>,
    /// Alignment offset added before tiling: data element `x` goes to the
    /// tile of `x − offset`.
    pub offset: IVec,
}

/// Derive aligned data partitions from a rectangular loop partition
/// (tile extents `lambda`, one loop tile per processor).
///
/// For each array we use its *first* uniformly intersecting class (the
/// one carrying most reuse) to map the loop tile into the data space:
/// dimension `k` of the array gets extent `Σ_r λ_r·|G_{r,k}|` (the image
/// of the loop tile edge lengths), and the alignment offset is the
/// median member offset.
pub fn align_arrays(nest: &LoopNest, lambda: &[i128]) -> Vec<ArrayPartition> {
    let mut seen: HashMap<String, ArrayPartition> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for class in classify(nest) {
        if seen.contains_key(&class.array) {
            continue;
        }
        let keep = max_independent_columns(&class.g);
        let d = class.g.cols();
        // Image extents: loop tile edge r has length λ_r along iteration
        // axis r; its data-space image along array dim k is λ_r·|G_{r,k}|.
        let extents: Vec<i128> = keep
            .iter()
            .map(|&k| {
                (0..class.g.rows())
                    .map(|r| lambda[r].abs() * class.g[(r, k)].abs())
                    .sum()
            })
            .collect();
        // Median offset per dimension (minimizes a⁺).
        let offset = IVec(
            (0..d)
                .map(|k| {
                    let mut col: Vec<i128> = class.offsets.iter().map(|a| a[k]).collect();
                    col.sort_unstable();
                    col[col.len() / 2]
                })
                .collect(),
        );
        order.push(class.array.clone());
        seen.insert(
            class.array.clone(),
            ArrayPartition {
                array: class.array.clone(),
                tile_extents: extents,
                dims: keep,
                offset,
            },
        );
    }
    order
        .into_iter()
        .map(|a| seen.remove(&a).expect("inserted"))
        .collect()
}

/// An embedding of virtual processors (grid coordinates) into a 2-D mesh.
#[derive(Debug, Clone)]
pub struct MeshPlacement {
    /// Mesh width and height.
    pub mesh: (usize, usize),
    /// Processor-grid shape being embedded.
    pub grid: Vec<i128>,
    /// `coords[p] = (x, y)` mesh position of virtual processor `p`
    /// (row-major over the grid).
    pub coords: Vec<(usize, usize)>,
}

impl MeshPlacement {
    /// Manhattan distance between two virtual processors.
    pub fn hops(&self, p: usize, q: usize) -> usize {
        let (ax, ay) = self.coords[p];
        let (bx, by) = self.coords[q];
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Average hop distance between grid neighbours, weighted per grid
    /// dimension (weights = per-dimension boundary traffic, e.g. the
    /// spread coefficients).  Lower is better; the communication latency
    /// on the mesh is proportional to this.
    pub fn weighted_neighbor_hops(&self, weights: &[f64]) -> f64 {
        let dims = self.grid.len();
        assert_eq!(weights.len(), dims, "one weight per grid dimension");
        let total: i128 = self.grid.iter().product();
        let mut sum = 0.0;
        let mut count = 0.0;
        for p in 0..total as usize {
            let gp = self.grid_coords(p);
            for k in 0..dims {
                if (gp[k] + 1) < self.grid[k] {
                    let mut gq = gp.clone();
                    gq[k] += 1;
                    let q = self.linear(&gq);
                    sum += weights[k] * self.hops(p, q) as f64;
                    count += weights[k];
                }
            }
        }
        if count == 0.0 {
            0.0
        } else {
            sum / count
        }
    }

    /// Grid coordinates of virtual processor `p` (row-major).
    pub fn grid_coords(&self, p: usize) -> Vec<i128> {
        let mut rem = p as i128;
        let mut out = vec![0i128; self.grid.len()];
        for k in (0..self.grid.len()).rev() {
            out[k] = rem % self.grid[k];
            rem /= self.grid[k];
        }
        out
    }

    /// Linear id of grid coordinates.
    pub fn linear(&self, g: &[i128]) -> usize {
        let mut p = 0i128;
        for (k, &gk) in g.iter().enumerate() {
            p = p * self.grid[k] + gk;
        }
        p as usize
    }
}

/// Embed an l-dimensional processor grid into a `mesh_w × mesh_h` mesh.
///
/// 1-D and 2-D grids embed directly (2-D grids must fit the mesh after
/// an optional transpose); higher-dimensional grids are linearized in
/// row-major order and laid out boustrophedon (snake) so consecutive
/// virtual processors — which share the most boundary — are mesh
/// neighbours.
///
/// # Panics
/// Panics if the mesh is too small for the processor count.
pub fn mesh_placement(grid: &[i128], mesh: (usize, usize)) -> MeshPlacement {
    let total: i128 = grid.iter().product();
    let cap = (mesh.0 * mesh.1) as i128;
    assert!(
        total <= cap,
        "mesh {mesh:?} too small for {total} processors"
    );

    // Direct 2-D embedding when the grid matches the mesh orientation.
    let active: Vec<i128> = grid.iter().copied().filter(|&g| g > 1).collect();
    if active.len() == 2 {
        let (a, b) = (active[0] as usize, active[1] as usize);
        let fits = |w: usize, h: usize| a <= w && b <= h;
        let transpose = if fits(mesh.0, mesh.1) {
            Some(false)
        } else if fits(mesh.1, mesh.0) {
            Some(true)
        } else {
            None
        };
        if let Some(t) = transpose {
            let mut coords = Vec::with_capacity(total as usize);
            for p in 0..total as usize {
                // Recover the 2-D coordinates from the full grid.
                let mut rem = p as i128;
                let mut full = vec![0i128; grid.len()];
                for k in (0..grid.len()).rev() {
                    full[k] = rem % grid[k];
                    rem /= grid[k];
                }
                let mut it = grid.iter().enumerate().filter(|(_, &g)| g > 1);
                let (i0, _) = it.next().expect("two active dims");
                let (i1, _) = it.next().expect("two active dims");
                let (x, y) = (full[i0] as usize, full[i1] as usize);
                coords.push(if t { (y, x) } else { (x, y) });
            }
            return MeshPlacement {
                mesh,
                grid: grid.to_vec(),
                coords,
            };
        }
    }

    // Snake layout of the linearized order.
    let mut coords = Vec::with_capacity(total as usize);
    for p in 0..total as usize {
        let row = p / mesh.0;
        let col = if row.is_multiple_of(2) {
            p % mesh.0
        } else {
            mesh.0 - 1 - (p % mesh.0)
        };
        coords.push((col, row));
    }
    MeshPlacement {
        mesh,
        grid: grid.to_vec(),
        coords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn align_stencil() {
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1];
             } }",
        )
        .unwrap();
        let parts = align_arrays(&nest, &[7, 15]);
        assert_eq!(parts.len(), 1);
        let a = &parts[0];
        assert_eq!(
            a.tile_extents,
            vec![7, 15],
            "same aspect ratio as loop tiles"
        );
        assert_eq!(
            a.offset,
            IVec::new(&[0, 0]),
            "median of {{-1,0,0,0,1}} per dim"
        );
    }

    #[test]
    fn align_skewed_reference() {
        // B[i+j, j]: loop tile (λi, λj) images to (λi+λj, λj).
        let nest = parse("doall (i, 1, 64) { doall (j, 1, 64) { A[i,j] = B[i+j,j]; } }").unwrap();
        let parts = align_arrays(&nest, &[8, 4]);
        let b = parts.iter().find(|p| p.array == "B").unwrap();
        assert_eq!(b.tile_extents, vec![12, 4]);
    }

    #[test]
    fn align_offset_median() {
        let nest = parse("doall (i, 1, 64) { A[i] = A[i+4] + A[i+6]; }").unwrap();
        let parts = align_arrays(&nest, &[15]);
        assert_eq!(parts[0].offset, IVec::new(&[4]), "median of 0,4,6");
    }

    #[test]
    fn mesh_direct_2d() {
        let pl = mesh_placement(&[4, 4], (4, 4));
        // Grid neighbours are mesh neighbours: average weighted hops = 1.
        assert!((pl.weighted_neighbor_hops(&[1.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_transposed_2d() {
        let pl = mesh_placement(&[8, 2], (2, 8));
        assert!((pl.weighted_neighbor_hops(&[1.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_snake_1d() {
        let pl = mesh_placement(&[16], (4, 4));
        // Snake keeps consecutive processors adjacent.
        assert!((pl.weighted_neighbor_hops(&[1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_3d_grid_snakes() {
        let pl = mesh_placement(&[2, 2, 4], (4, 4));
        // Not all neighbours can be adjacent; hops stay bounded.
        let h = pl.weighted_neighbor_hops(&[1.0, 1.0, 1.0]);
        assert!((1.0..=4.0).contains(&h), "hops {h}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn mesh_capacity_checked() {
        mesh_placement(&[8, 8], (4, 4));
    }

    #[test]
    fn grid_coords_roundtrip() {
        let pl = mesh_placement(&[3, 4], (4, 4));
        for p in 0..12usize {
            assert_eq!(pl.linear(&pl.grid_coords(p)), p);
        }
    }
}
