//! Program-level partitioning: several loop nests over shared arrays.
//!
//! The paper partitions one nest at a time, but §4's compiler has to
//! handle whole programs, where consecutive phases may prefer
//! *conflicting* tile shapes over the same array (the classic case is an
//! ADI-style row sweep followed by a column sweep).  Two strategies
//! compete:
//!
//! * **common grid** — one processor grid for every phase; each phase
//!   pays a possibly sub-optimal footprint, but data never moves;
//! * **per-phase optima** — each phase gets its own best grid; between
//!   phases, every shared array whose layout changed must be
//!   redistributed (cost ≈ the array's size in elements — each element
//!   crosses the network once).
//!
//! [`partition_program`] evaluates both and picks the cheaper total,
//! which is exactly the loop-vs-data-partitioning interplay the paper's
//! §4 alludes to.

use crate::rect::{factorizations, partition_rect, RectPartition};
use alp_footprint::CostModel;
use alp_linalg::Rat;
use alp_loopir::LoopNest;
use std::collections::HashMap;

/// Which strategy won.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramStrategy {
    /// One grid shared by every phase; zero redistribution.
    CommonGrid,
    /// Each phase uses its own optimum and pays redistribution.
    PerPhase,
}

/// The chosen program partition.
#[derive(Debug, Clone)]
pub struct ProgramPartition {
    /// Per-phase partitions (all equal grids under `CommonGrid`).
    pub phases: Vec<RectPartition>,
    /// The winning strategy.
    pub strategy: ProgramStrategy,
    /// Modeled total footprint cost of the winner (per processor,
    /// summed over phases, including redistribution).
    pub total_cost: Rat,
    /// Total cost the losing strategy would have paid.
    pub alternative_cost: Rat,
    /// Elements redistributed between phases under `PerPhase`.
    pub redistribution: i128,
}

/// Size (in elements) of every array touched by a nest.
fn array_sizes(nest: &LoopNest) -> HashMap<String, i128> {
    nest.array_extents()
        .into_iter()
        .map(|(a, ext)| {
            (
                a,
                ext.iter().map(|&(lo, hi)| (hi - lo + 1).max(0)).product(),
            )
        })
        .collect()
}

/// Redistribution cost between consecutive phases: each shared array
/// whose grid changed moves once (its full size).
fn redistribution_cost(nests: &[LoopNest], parts: &[RectPartition]) -> i128 {
    let mut total = 0i128;
    for w in 0..nests.len().saturating_sub(1) {
        if parts[w].proc_grid == parts[w + 1].proc_grid {
            continue;
        }
        let a = array_sizes(&nests[w]);
        let b = array_sizes(&nests[w + 1]);
        for (name, size) in &a {
            if b.contains_key(name) {
                total += size;
            }
        }
    }
    total
}

/// Partition a multi-phase program for `p` processors.
///
/// # Panics
/// Panics if `nests` is empty or `p < 1`.
pub fn partition_program(nests: &[LoopNest], p: i128) -> ProgramPartition {
    assert!(!nests.is_empty(), "empty program");
    assert!(p >= 1, "need at least one processor");

    // Strategy A: per-phase optima + redistribution.
    let per_phase: Vec<RectPartition> = nests.iter().map(|n| partition_rect(n, p)).collect();
    let per_phase_footprint: Rat = per_phase
        .iter()
        .fold(Rat::ZERO, |acc, part| acc + part.cost);
    let redistribution = redistribution_cost(nests, &per_phase);
    // Redistribution moves whole arrays; amortize per processor to stay
    // in the same per-tile units as the footprint model.
    let per_phase_total = per_phase_footprint + Rat::new(redistribution, p);

    // Strategy B: a single common grid (only when all depths agree).
    let depth = nests[0].depth();
    let common = if nests.iter().all(|n| n.depth() == depth) {
        let models: Vec<CostModel> = nests.iter().map(CostModel::from_nest).collect();
        let mut best: Option<(Vec<i128>, Rat, Vec<RectPartition>)> = None;
        'grids: for grid in factorizations(p, depth) {
            let mut phases = Vec::with_capacity(nests.len());
            let mut total = Rat::ZERO;
            for (nest, model) in nests.iter().zip(&models) {
                let trips: Vec<i128> = nest.loops.iter().map(|l| l.trip_count()).collect();
                if grid.iter().zip(&trips).any(|(&g, &n)| g > n) {
                    continue 'grids;
                }
                let extents: Vec<i128> = grid
                    .iter()
                    .zip(&trips)
                    .map(|(&g, &n)| (n + g - 1) / g - 1)
                    .collect();
                let cost = model.cost_rect(&extents);
                total = total + cost;
                phases.push(RectPartition {
                    proc_grid: grid.clone(),
                    tile_extents: extents,
                    cost,
                });
            }
            match &best {
                Some((_, t, _)) if *t <= total => {}
                _ => best = Some((grid, total, phases)),
            }
        }
        best
    } else {
        None
    };

    match common {
        Some((_, common_total, phases)) if common_total <= per_phase_total => ProgramPartition {
            phases,
            strategy: ProgramStrategy::CommonGrid,
            total_cost: common_total,
            alternative_cost: per_phase_total,
            redistribution,
        },
        Some((_, common_total, _)) => ProgramPartition {
            phases: per_phase,
            strategy: ProgramStrategy::PerPhase,
            total_cost: per_phase_total,
            alternative_cost: common_total,
            redistribution,
        },
        None => ProgramPartition {
            phases: per_phase,
            strategy: ProgramStrategy::PerPhase,
            total_cost: per_phase_total,
            alternative_cost: per_phase_total,
            redistribution,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse_program;

    #[test]
    fn single_phase_degenerates_to_partition_rect() {
        let nests =
            parse_program("doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+2,j]; } }").unwrap();
        let prog = partition_program(&nests, 16);
        let solo = partition_rect(&nests[0], 16);
        assert_eq!(prog.phases[0].proc_grid, solo.proc_grid);
        assert_eq!(prog.redistribution, 0);
    }

    #[test]
    fn adi_phases_prefer_common_grid_for_small_conflict() {
        // Phase 1 spreads along j, phase 2 along i — mild conflict over a
        // large array: redistribution (4096 elements each way) dwarfs the
        // footprint differences, so the common square grid wins.
        let nests = parse_program(
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+1]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i+1,j]; } }",
        )
        .unwrap();
        assert_eq!(nests.len(), 2);
        let prog = partition_program(&nests, 16);
        assert_eq!(prog.strategy, ProgramStrategy::CommonGrid);
        assert_eq!(prog.phases[0].proc_grid, prog.phases[1].proc_grid);
        assert!(prog.total_cost <= prog.alternative_cost);
    }

    #[test]
    fn disjoint_arrays_allow_per_phase() {
        // Phases over different arrays: redistribution is zero, so the
        // per-phase optima always (weakly) win or tie the common grid.
        let nests = parse_program(
            "doall (i, 0, 63) { doall (j, 0, 63) { A[i,j] = A[i,j+3]; } }
             doall (i, 0, 63) { doall (j, 0, 63) { B[i,j] = B[i+3,j]; } }",
        )
        .unwrap();
        let prog = partition_program(&nests, 16);
        assert_eq!(prog.redistribution, 0);
        // Each phase's grid is its solo optimum under PerPhase; under
        // CommonGrid the costs must still be minimal-total.
        let s0 = partition_rect(&nests[0], 16);
        let s1 = partition_rect(&nests[1], 16);
        let solo_total = s0.cost + s1.cost;
        assert!(prog.total_cost <= solo_total + Rat::int(1));
    }

    #[test]
    fn mixed_depth_programs_fall_back() {
        let nests = parse_program(
            "doall (i, 0, 63) { A[i] = A[i+1]; }
             doall (i, 0, 63) { doall (j, 0, 63) { B[i,j] = B[i+1,j]; } }",
        )
        .unwrap();
        let prog = partition_program(&nests, 8);
        assert_eq!(prog.strategy, ProgramStrategy::PerPhase);
        assert_eq!(prog.phases.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_program_panics() {
        partition_program(&[], 4);
    }
}
