//! Hyperparallelepiped (parallelogram) partitioning (§3.2, §3.6;
//! Examples 3 & 6).
//!
//! The search strategy: enumerate candidate tile *bases* `U` — small
//! unimodular integer matrices whose rows give the tile's edge
//! directions — and for each basis find the optimal edge lengths by the
//! same Lagrange argument as the rectangular case (the Theorem-2 cost of
//! `L = diag(λ)·U` is multilinear in `λ`).  Keep the basis/lengths pair
//! with the smallest modeled cumulative footprint.
//!
//! Candidate bases are generated in parallel with crossbeam scoped
//! threads when the candidate set is large (depth 3).

use alp_footprint::{CostModel, Tile};
use alp_linalg::IMat;
use alp_loopir::LoopNest;

/// Search configuration for the parallelepiped optimizer.
#[derive(Debug, Clone)]
pub struct ParaSearchConfig {
    /// Entries of candidate basis matrices range over `-max_entry..=max_entry`.
    pub max_entry: i128,
    /// Number of worker threads for the basis sweep.
    pub threads: usize,
}

impl Default for ParaSearchConfig {
    fn default() -> Self {
        ParaSearchConfig {
            max_entry: 2,
            threads: 4,
        }
    }
}

/// Result of the parallelepiped search.
#[derive(Debug, Clone)]
pub struct ParaPartition {
    /// The chosen tile (rows of `L` are scaled basis vectors).
    pub tile: Tile,
    /// Modeled cumulative footprint of the tile.
    pub cost: i128,
    /// The unscaled basis that won.
    pub basis: IMat,
    /// The integer edge lengths λ: row `i` of `L` is `λ_i · basis_i`.
    pub lambda: Vec<i128>,
}

/// Enumerate unimodular `n×n` integer matrices with entries in
/// `-max..=max`.  Deduplicates row permutations/sign flips by requiring a
/// canonical form (first nonzero of each row positive, rows
/// lexicographically sorted) — those variants describe the same tiling.
pub fn unimodular_bases(n: usize, max: i128) -> Vec<IMat> {
    let range: Vec<i128> = (-max..=max).collect();
    let total = range.len().pow((n * n) as u32);
    let mut out = Vec::new();
    'outer: for code in 0..total {
        let mut c = code;
        let mut entries = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            entries.push(range[c % range.len()]);
            c /= range.len();
        }
        let m = IMat::from_vec(n, n, entries);
        // Canonical form: each row's first nonzero entry positive, rows
        // sorted.
        let rows = m.row_vecs();
        for r in rows.iter() {
            match r.0.iter().find(|&&x| x != 0) {
                Some(&x) if x > 0 => {}
                _ => continue 'outer,
            }
        }
        let sorted = {
            let mut s = rows.clone();
            s.sort_by(|a, b| b.cmp(a)); // descending keeps the identity canonical
            s == rows
        };
        if !sorted {
            continue;
        }
        if m.is_unimodular() {
            out.push(m);
        }
    }
    out
}

/// Optimize a hyperparallelepiped partition for `p` processors.
///
/// Returns the best tile found over all candidate bases, including the
/// rectangular basis (identity), so the result is never worse than the
/// best rectangle the same λ-rounding would produce.
pub fn optimize_parallelepiped(
    nest: &LoopNest,
    p: i128,
    config: &ParaSearchConfig,
) -> ParaPartition {
    assert!(p >= 1, "need at least one processor");
    let model = CostModel::from_nest(nest);
    let l = nest.depth();
    let volume_target = (nest.iteration_count() / p).max(1);
    let bases = unimodular_bases(l, config.max_entry);
    assert!(!bases.is_empty(), "identity basis always qualifies");

    let evaluate = |basis: &IMat| -> Option<ParaPartition> {
        best_scaling_for_basis(&model, basis, volume_target)
    };

    let best = if bases.len() > 64 && config.threads > 1 {
        // Parallel sweep over candidate bases.
        let chunks: Vec<&[IMat]> = bases.chunks(bases.len().div_ceil(config.threads)).collect();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move |_| chunk.iter().filter_map(evaluate).min_by_key(|c| c.cost))
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("sweep worker panicked"))
                .min_by_key(|c| c.cost)
        })
        .expect("crossbeam scope")
    } else {
        bases.iter().filter_map(evaluate).min_by_key(|c| c.cost)
    };
    best.expect("identity basis evaluates")
}

/// Evaluate *every* candidate basis and return the full field, best
/// first — the hook a downstream ranker (the plan crate's skewed-tile
/// enumerator, the calibrated hybrid re-ranking) uses to score the
/// whole `(H, γ, λ)` candidate class instead of just the analytic
/// winner.  Ties break toward earlier bases (the canonical enumeration
/// order, which lists the identity first), so the order is
/// deterministic.
pub fn para_candidates(nest: &LoopNest, p: i128, config: &ParaSearchConfig) -> Vec<ParaPartition> {
    assert!(p >= 1, "need at least one processor");
    let model = CostModel::from_nest(nest);
    let volume_target = (nest.iteration_count() / p).max(1);
    let mut out: Vec<ParaPartition> = unimodular_bases(nest.depth(), config.max_entry)
        .iter()
        .filter_map(|basis| best_scaling_for_basis(&model, basis, volume_target))
        .collect();
    out.sort_by_key(|c| c.cost);
    out
}

/// For a fixed basis `U`, choose integer scalings `λ` with
/// `Π λ ≈ volume` minimizing the Theorem-2 cost of `diag(λ)·U`.
///
/// The cost is `|det ΛUG'| + Σ_i |det (ΛUG')_{i→â}|`; the `i`-th spread
/// term is independent of `λ_i` and proportional to `Π_{j≠i} λ_j`, so the
/// Lagrange optimum is `λ_i ∝ c_i` with `c_i` the summed spread
/// determinants.  We form the continuous optimum, then search a small
/// neighbourhood of integer roundings that meet the volume target.
fn best_scaling_for_basis(model: &CostModel, basis: &IMat, volume: i128) -> Option<ParaPartition> {
    let l = basis.rows();
    // Spread coefficients c_i: evaluate the cost with unit λ and with
    // λ_i = 2 to finite-difference the multilinear form... simpler and
    // exact: cost(diag(λ)U) = V·b0 + Σ_i c_i Π_{j≠i} λ_j  where b0 and
    // c_i come from determinants that do not depend on λ.  Extract them
    // by evaluating at the 2^l corners λ ∈ {1,2}^l — but a direct
    // per-class determinant pass is cheaper and exact:
    let mut c = vec![0i128; l];
    let mut b0 = 0i128;
    for cc in model.classes() {
        let g = &cc.class.g;
        let keep = alp_linalg::max_independent_columns(g);
        if keep.is_empty() {
            continue;
        }
        let g_red = g.select_columns(&keep);
        let ug = basis.mul(&g_red).ok()?;
        if ug.rows() == ug.cols() {
            b0 += ug.det().ok()?.abs();
            let spread = cc.class.spread();
            let spread_red = alp_linalg::IVec(keep.iter().map(|&k| spread[k]).collect());
            if !spread_red.is_zero() {
                for (i, ci) in c.iter_mut().enumerate() {
                    *ci += ug.with_row(i, &spread_red).det().ok()?.abs();
                }
            }
        } else {
            // Rank-deficient class: no clean multilinear split; skip the
            // closed form and let the final exact evaluation decide.
        }
    }
    if b0 == 0 {
        return None; // degenerate basis for this nest
    }

    // Continuous optimum: λ_i ∝ c_i (dims with c_i = 0 get the remaining
    // volume evenly).
    let lam_real = continuous_lambda(&c, volume);
    // Integer neighbourhood search.
    let mut best: Option<ParaPartition> = None;
    let mut candidates: Vec<Vec<i128>> = vec![vec![]];
    for &x in &lam_real {
        let lo = (x.floor() as i128).max(1);
        let opts = [lo, lo + 1];
        candidates = candidates
            .into_iter()
            .flat_map(|v| {
                opts.iter().map(move |&o| {
                    let mut w = v.clone();
                    w.push(o);
                    w
                })
            })
            .collect();
    }
    for lam in candidates {
        let vol: i128 = lam.iter().product();
        if vol < volume {
            continue; // must cover at least its share of iterations
        }
        let mut rows = Vec::with_capacity(l);
        for (i, &li) in lam.iter().enumerate() {
            rows.push(basis.row(i).scale(li));
        }
        let lmat = IMat::from_row_vecs(&rows);
        let cost = model.cost_general(&lmat);
        let cand = ParaPartition {
            tile: Tile::general(lmat),
            cost,
            basis: basis.clone(),
            lambda: lam.clone(),
        };
        match &best {
            Some(b) if b.cost <= cand.cost => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// Solve `min Σ c_i V/λ_i` s.t. `Π λ_i = volume` over the positive reals;
/// zero-coefficient dimensions share the leftover volume equally.
fn continuous_lambda(c: &[i128], volume: i128) -> Vec<f64> {
    let l = c.len();
    let v = volume as f64;
    let pos: Vec<usize> = (0..l).filter(|&i| c[i] > 0).collect();
    if pos.is_empty() {
        let each = v.powf(1.0 / l as f64);
        return vec![each; l];
    }
    // λ_i = c_i · s for active dims; inactive dims share the rest as t.
    // Π over active (c_i s) · t^(inactive) = V.
    let inactive = l - pos.len();
    let prod_c: f64 = pos.iter().map(|&i| c[i] as f64).product();
    // Give inactive dims a "virtual coefficient" equal to the geometric
    // mean of the active ones (they are traffic-free, so stretching them
    // is free; but bounded tiles still need finite extents — the even
    // share keeps the search near sane roundings).
    let gm = prod_c.powf(1.0 / pos.len() as f64);
    let all_c: Vec<f64> = (0..l)
        .map(|i| if c[i] > 0 { c[i] as f64 } else { gm })
        .collect();
    let prod_all: f64 = all_c.iter().product();
    let s = (v / prod_all).powf(1.0 / l as f64);
    let _ = inactive;
    all_c.iter().map(|&ci| ci * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_footprint::classify;
    use alp_footprint::cumulative_footprint_exact;
    use alp_loopir::parse;

    #[test]
    fn unimodular_bases_contain_identity() {
        let bases = unimodular_bases(2, 1);
        assert!(bases.contains(&IMat::identity(2)));
        for b in &bases {
            assert!(b.is_unimodular());
        }
        // 3x3 generation stays tractable.
        let bases3 = unimodular_bases(3, 1);
        assert!(bases3.contains(&IMat::identity(3)));
        assert!(bases3.len() > 10);
    }

    #[test]
    fn example3_parallelogram_beats_rectangles() {
        // Example 3: A[i,j] = B[i,j] + B[i+1,j+3].  The translation
        // (1,3) can be internalized by skewed tiles; every rectangle
        // pays for it.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i,j] + B[i+1,j+3];
             } }",
        )
        .unwrap();
        let p = 16;
        let para = optimize_parallelepiped(
            &nest,
            p,
            &ParaSearchConfig {
                max_entry: 3,
                threads: 2,
            },
        );
        let rect = crate::rect::partition_rect(&nest, p);
        // Model costs: parallelogram strictly cheaper.
        assert!(
            rat_lt(para.cost, rect.cost),
            "para {:?} rect {:?}",
            para.cost,
            rect.cost
        );
        // The winning basis internalizes (1,3): some row proportional to it.
        let b = &para.basis;
        let internalizes = (0..2).any(|r| {
            let row = b.row(r);
            row[0] * 3 == row[1] // parallel to (1,3)
        });
        assert!(internalizes, "basis {b}");
    }

    fn rat_lt(a: i128, b: alp_linalg::Rat) -> bool {
        alp_linalg::Rat::int(a) < b
    }

    #[test]
    fn identity_basis_recovers_rectangle() {
        // A pure stencil with â = (2,2) is symmetric: the parallelepiped
        // search should not do worse than the rectangle.
        let nest = parse(
            "doall (i, 1, 32) { doall (j, 1, 32) {
               A[i,j] = A[i+2,j+2] + A[i-0,j] ;
             } }",
        )
        .unwrap();
        let para = optimize_parallelepiped(&nest, 4, &ParaSearchConfig::default());
        let rect = crate::rect::partition_rect(&nest, 4);
        assert!(alp_linalg::Rat::int(para.cost) <= rect.cost + alp_linalg::Rat::int(64));
    }

    #[test]
    fn modeled_cost_tracks_exact_for_winner() {
        let nest = parse(
            "doall (i, 1, 32) { doall (j, 1, 32) {
               A[i,j] = B[i,j] + B[i+1,j+3];
             } }",
        )
        .unwrap();
        let para = optimize_parallelepiped(&nest, 16, &ParaSearchConfig::default());
        let classes = classify(&nest);
        let exact: usize = classes
            .iter()
            .map(|c| cumulative_footprint_exact(&para.tile, c))
            .sum();
        let modeled = para.cost;
        // Exact includes boundary points: modeled volume estimate is a
        // lower bound within perimeter slack.
        assert!(modeled as usize <= exact);
        assert!(
            exact - modeled as usize <= 200,
            "exact {exact} modeled {modeled}"
        );
    }

    #[test]
    fn volume_covers_processor_share() {
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i,j] + B[i+1,j+3];
             } }",
        )
        .unwrap();
        let p = 8;
        let para = optimize_parallelepiped(&nest, p, &ParaSearchConfig::default());
        assert!(para.tile.volume() >= nest.iteration_count() / p);
    }
}
