//! Communication-free partitions (Ramanujam & Sadayappan \[7\], recovered
//! by the footprint framework — §5, Examples 2 & 10).
//!
//! A hyperplane family `h·ī = const` yields a communication-free loop
//! partition when every pair of uniformly intersecting references has its
//! footprint overlap *internalized*: the iteration-space translation `t̄`
//! that maps one reference's accesses onto the other's (`t̄·G = ā₂ − ā₁`)
//! must be parallel to the tile slabs, i.e. `h·t̄ = 0`.  Collecting the
//! translation vectors of every class and taking the integer nullspace
//! gives all valid normals; an empty nullspace means no communication-free
//! partition exists, and the optimizer of [`crate::rect`] /
//! [`crate::para`] takes over (the case \[7\] does not handle).

use alp_footprint::{classify, CostModel};
use alp_linalg::{integer_nullspace, solve_rational, IMat, IVec, Rat};
use alp_loopir::LoopNest;

/// Iteration-space translation vectors for every offset pair of every
/// class (rational in general; scaled to integer vectors).
fn translation_vectors(nest: &LoopNest) -> Vec<IVec> {
    let mut out = Vec::new();
    for class in classify(nest) {
        if class.len() < 2 {
            continue;
        }
        let base = &class.offsets[0];
        for a in &class.offsets[1..] {
            let diff = a.sub(base).expect("dim");
            if diff.is_zero() {
                continue;
            }
            // Solve t·G = diff over the rationals, then clear
            // denominators: only the direction of t matters for h·t = 0.
            if let Some(t) = solve_rational(&class.g, &diff) {
                let lcm = t.iter().fold(1i128, |acc, r| alp_linalg::lcm(acc, r.den()));
                let ivec = IVec(t.iter().map(|r| r.num() * (lcm / r.den())).collect());
                if !ivec.is_zero() {
                    out.push(ivec.primitive());
                }
            }
            // No rational solution means the two references never overlap
            // in the direction of any iteration translation — they only
            // intersect through lattice coincidences that classify()
            // already ruled in; conservatively they impose no constraint.
        }
    }
    out
}

/// All independent hyperplane normals `h` that give a communication-free
/// partition of the nest (empty if none exists).
///
/// Each returned vector is a primitive integer normal; tiling the
/// iteration space into slabs `γ ≤ h·ī < γ + λ` (or intersecting several
/// returned normals) internalizes every footprint overlap.
pub fn communication_free_normals(nest: &LoopNest) -> Vec<IVec> {
    let ts = translation_vectors(nest);
    if ts.is_empty() {
        // No cross-reference reuse at all: every hyperplane is
        // communication-free; return the coordinate normals.
        return (0..nest.depth())
            .map(|k| {
                let mut v = vec![0; nest.depth()];
                v[k] = 1;
                IVec(v)
            })
            .collect();
    }
    // h must satisfy h·t = 0 for all t: left-nullspace of the matrix with
    // the t's as columns, i.e. x·Tᵗ = 0.
    let t_mat = IMat::from_row_vecs(&ts).transpose();
    integer_nullspace(&t_mat)
        .into_iter()
        .map(|h| h.primitive())
        .collect()
}

/// Does a communication-free (non-trivial) partition exist?
pub fn is_communication_free(nest: &LoopNest) -> bool {
    !communication_free_normals(nest).is_empty()
}

/// Check a claimed normal: slab tiles orthogonal to `h` must have
/// shape-independent traffic, i.e. the model traffic of a slab tile along
/// `h` is zero.  (Used by tests and the `exp_comm_free` experiment.)
pub fn normal_internalizes_all_overlap(nest: &LoopNest, h: &IVec) -> bool {
    let ts = translation_vectors(nest);
    ts.iter().all(|t| t.dot(h).expect("depth") == 0)
}

/// Model coherence traffic of the slab partition along `h` for `p`
/// processors (0 for a true communication-free normal).  Returns `None`
/// when `h` is not axis-aligned and the rectangular model cannot express
/// the slab (callers then verify by simulation instead).
pub fn slab_traffic_rect(nest: &LoopNest, h: &IVec, p: i128) -> Option<Rat> {
    let k = (0..h.len()).find(|&k| h[k] != 0)?;
    if h.0.iter().enumerate().any(|(i, &x)| i != k && x != 0) {
        return None; // not axis-aligned
    }
    let model = CostModel::from_nest(nest);
    let mut lambda: Vec<i128> = nest.loops.iter().map(|l| l.trip_count() - 1).collect();
    let n = nest.loops[k].trip_count();
    lambda[k] = (n + p - 1) / p - 1;
    Some(model.coherence_traffic_rect(&lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn example2_strips_along_i() {
        // Example 2: translation t = (4, 0) -> normals orthogonal to i,
        // i.e. h = (0, 1): slabs of constant j, full i extent.
        let nest = parse(
            "doall (i, 101, 200) { doall (j, 1, 100) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap();
        let normals = communication_free_normals(&nest);
        assert_eq!(normals, vec![IVec::new(&[0, 1])]);
        assert!(is_communication_free(&nest));
        assert!(normal_internalizes_all_overlap(&nest, &normals[0]));
        // The slab partition along h has zero model traffic.
        assert_eq!(slab_traffic_rect(&nest, &normals[0], 100), Some(Rat::ZERO));
    }

    #[test]
    fn full_rank_stencil_has_no_comm_free_partition() {
        // A stencil whose offset translations span all of Z^3: no nonzero
        // normal annihilates them all.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i,j,k] + B[i+1,j,k] + B[i,j+1,k] + B[i,j,k+1];
             } } }",
        )
        .unwrap();
        assert!(!is_communication_free(&nest));
    }

    #[test]
    fn example8_is_comm_free_with_skewed_slabs() {
        // A result the paper's rectangular treatment of Example 8 leaves
        // on the table: the two translation vectors (1,1,-1) and
        // (2,-2,-4) only span a 2-D subspace, so the skewed normal
        // h = (3,-1,2) internalizes all reuse (see EXPERIMENTS.md, E6).
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        )
        .unwrap();
        let normals = communication_free_normals(&nest);
        assert_eq!(normals.len(), 1);
        let h = &normals[0];
        assert_eq!(h.dot(&IVec::new(&[1, 1, -1])).unwrap(), 0);
        assert_eq!(h.dot(&IVec::new(&[1, -1, -2])).unwrap(), 0);
    }

    #[test]
    fn example3_diagonal_normal() {
        // Example 3: B[i,j] and B[i+1,j+3]: t = (1,3); normals h with
        // h·(1,3) = 0: h = (3,-1) — the parallelogram direction.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i,j] + B[i+1,j+3];
             } }",
        )
        .unwrap();
        let normals = communication_free_normals(&nest);
        assert_eq!(normals.len(), 1);
        let h = &normals[0];
        assert_eq!(h.dot(&IVec::new(&[1, 3])).unwrap(), 0);
        assert!(normal_internalizes_all_overlap(&nest, h));
    }

    #[test]
    fn no_reuse_means_all_normals() {
        let nest = parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = B[j,i]; } }").unwrap();
        let normals = communication_free_normals(&nest);
        assert_eq!(normals.len(), 2);
    }

    #[test]
    fn example10_not_comm_free() {
        // Example 10 is the paper's showcase of a case [7] cannot handle:
        // B's translation (solve t·G = (4,2) with G=[[1,1],[1,-1]]) is
        // t = (3,1); C pair gives t·G' = (0,0,2) -> t = (?, 1)... the two
        // directions differ, so no common normal.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                      + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
             } }",
        )
        .unwrap();
        assert!(!is_communication_free(&nest));
    }

    #[test]
    fn two_compatible_classes_share_a_normal() {
        // A[i,j]/A[i+1,j+1] and B[i,j]/B[i+2,j+2]: translations (1,1) and
        // (2,2) are parallel -> normal (1,-1) internalizes both.
        let nest = parse(
            "doall (i, 0, 31) { doall (j, 0, 31) {
               A[i,j] = A[i+1,j+1] + B[i,j] + B[i+2,j+2];
             } }",
        )
        .unwrap();
        let normals = communication_free_normals(&nest);
        assert_eq!(normals.len(), 1);
        assert_eq!(normals[0].dot(&IVec::new(&[1, 1])).unwrap(), 0);
    }
}
