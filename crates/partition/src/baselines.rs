//! Baseline partitioners for the comparison experiments.
//!
//! * [`abraham_hudak_rect`] — an independent implementation of Abraham &
//!   Hudak's compile-time rectangular partitioner \[6\] for their program
//!   class (every reference of the form `A[i₁+c₁, …, i_d+c_d]` to a
//!   single array).  The paper proves (Example 8) that the footprint
//!   framework reproduces its answers; the agreement test lives in
//!   `tests/` and the `exp_example8` experiment.
//! * [`naive_partition`] — the by-rows / by-columns / square-blocks
//!   strawmen of §1 and Example 2.

use crate::rect::{factorizations, RectPartition};
use alp_footprint::CostModel;
use alp_linalg::Rat;
use alp_loopir::LoopNest;

/// Abraham & Hudak's restrictions: offset-only references (`G = I`) to a
/// single array.  Returns `None` when the nest is outside their domain.
///
/// Their cost for a tile `(λ₁+1)…(λ_l+1)` is the number of boundary
/// elements communicated per tile: `Σ_k D_k Π_{j≠k}(λ_j+1)` where `D_k`
/// is the spread of the offsets in dimension `k`; the partition chooses
/// the processor grid minimizing it.
pub fn abraham_hudak_rect(nest: &LoopNest, p: i128) -> Option<RectPartition> {
    let l = nest.depth();
    let refs = nest.all_refs();
    // Domain check: single array, G = identity.
    let array = &refs.first()?.array;
    let identity = alp_linalg::IMat::identity(l);
    for r in &refs {
        if &r.array != array || r.dim() != l || r.g_matrix() != identity {
            return None;
        }
    }
    // D_k: spread of offsets per dimension.
    let d: Vec<i128> = (0..l)
        .map(|k| {
            let os: Vec<i128> = refs.iter().map(|r| r.offset()[k]).collect();
            os.iter().max().unwrap() - os.iter().min().unwrap()
        })
        .collect();
    let trips: Vec<i128> = nest.loops.iter().map(|lp| lp.trip_count()).collect();

    let mut best: Option<RectPartition> = None;
    for grid in factorizations(p, l) {
        if grid.iter().zip(&trips).any(|(&g, &n)| g > n) {
            continue;
        }
        let extents: Vec<i128> = grid
            .iter()
            .zip(&trips)
            .map(|(&g, &n)| (n + g - 1) / g - 1)
            .collect();
        // A&H objective: boundary traffic only.
        let mut cost = Rat::ZERO;
        for (k, &dk) in d.iter().enumerate() {
            let mut term = Rat::int(dk);
            for (j, &lam) in extents.iter().enumerate() {
                if j != k {
                    term = term * Rat::int(lam + 1);
                }
            }
            cost = cost + term;
        }
        let cand = RectPartition {
            proc_grid: grid,
            tile_extents: extents,
            cost,
        };
        match &best {
            Some(b) if b.cost <= cand.cost => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// The naive partition shapes of §1/Example 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveShape {
    /// Split the outermost loop only (`P × 1 × …` grid).
    ByRows,
    /// Split the innermost loop only.
    ByColumns,
    /// As close to an equal split in every dimension as the divisor
    /// structure of `P` allows.
    SquareBlocks,
}

/// Build a naive rectangular partition and evaluate it under the
/// footprint model (so it is comparable with [`crate::partition_rect`]).
///
/// Returns `None` if the shape is infeasible (more processors than
/// iterations along the split dimension).
pub fn naive_partition(nest: &LoopNest, p: i128, shape: NaiveShape) -> Option<RectPartition> {
    let l = nest.depth();
    let trips: Vec<i128> = nest.loops.iter().map(|lp| lp.trip_count()).collect();
    let grid: Vec<i128> = match shape {
        NaiveShape::ByRows => {
            let mut g = vec![1; l];
            g[0] = p;
            g
        }
        NaiveShape::ByColumns => {
            let mut g = vec![1; l];
            g[l - 1] = p;
            g
        }
        NaiveShape::SquareBlocks => factorizations(p, l).into_iter().min_by_key(|g| {
            // most balanced: minimize max/min ratio via max-min spread
            let mx = *g.iter().max().expect("nonempty");
            let mn = *g.iter().min().expect("nonempty");
            (mx - mn, g.clone())
        })?,
    };
    if grid.iter().zip(&trips).any(|(&g, &n)| g > n) {
        return None;
    }
    let extents: Vec<i128> = grid
        .iter()
        .zip(&trips)
        .map(|(&g, &n)| (n + g - 1) / g - 1)
        .collect();
    let model = CostModel::from_nest(nest);
    let cost = model.cost_rect(&extents);
    Some(RectPartition {
        proc_grid: grid,
        tile_extents: extents,
        cost,
    })
}

/// True when the nest fits Abraham & Hudak's program class (used by the
/// experiment harness to label rows).
pub fn in_abraham_hudak_domain(nest: &LoopNest) -> bool {
    let l = nest.depth();
    let identity = alp_linalg::IMat::identity(l);
    let refs = nest.all_refs();
    match refs.first() {
        None => false,
        Some(first) => refs
            .iter()
            .all(|r| r.array == first.array && r.dim() == l && r.g_matrix() == identity),
    }
}

/// Count of write-like references (used by experiments to report
/// invalidation-heavy nests).
pub fn write_reference_count(nest: &LoopNest) -> usize {
    nest.all_refs()
        .iter()
        .filter(|r| r.kind.is_write_like())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::partition_rect;
    use alp_loopir::parse;

    #[test]
    fn ah_domain_check() {
        let stencil = parse(
            "doall (i, 1, 32) { doall (j, 1, 32) {
               A[i,j] = A[i+1,j] + A[i,j+2];
             } }",
        )
        .unwrap();
        assert!(in_abraham_hudak_domain(&stencil));
        assert!(abraham_hudak_rect(&stencil, 16).is_some());

        let two_arrays =
            parse("doall (i, 1, 32) { doall (j, 1, 32) { A[i,j] = B[i,j]; } }").unwrap();
        assert!(!in_abraham_hudak_domain(&two_arrays));
        assert!(abraham_hudak_rect(&two_arrays, 16).is_none());

        let affine =
            parse("doall (i, 1, 32) { doall (j, 1, 32) { A[i+j,j] = A[i+j,j]; } }").unwrap();
        assert!(!in_abraham_hudak_domain(&affine));
    }

    #[test]
    fn ah_agrees_with_framework_on_example8() {
        // Example 8 rewritten as a single-array stencil (the agreement
        // claim): both partitioners pick the same processor grid.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = A[i-1,j,k+1] + A[i,j+1,k] + A[i+1,j-2,k-3];
             } } }",
        )
        .unwrap();
        let ours = partition_rect(&nest, 64);
        let ah = abraham_hudak_rect(&nest, 64).unwrap();
        assert_eq!(ours.proc_grid, ah.proc_grid);
        assert_eq!(ours.tile_extents, ah.tile_extents);
    }

    #[test]
    fn naive_shapes() {
        let nest = parse("doall (i, 1, 64) { doall (j, 1, 64) { A[i,j] = A[i+1,j]; } }").unwrap();
        let rows = naive_partition(&nest, 8, NaiveShape::ByRows).unwrap();
        assert_eq!(rows.proc_grid, vec![8, 1]);
        let cols = naive_partition(&nest, 8, NaiveShape::ByColumns).unwrap();
        assert_eq!(cols.proc_grid, vec![1, 8]);
        let sq = naive_partition(&nest, 16, NaiveShape::SquareBlocks).unwrap();
        assert_eq!(sq.proc_grid, vec![4, 4]);
        // Spread is along i only: splitting j is free, splitting i costs.
        assert!(cols.cost < rows.cost);
    }

    #[test]
    fn naive_infeasible() {
        let nest = parse("doall (i, 0, 3) { doall (j, 0, 63) { A[i,j] = A[i+1,j]; } }").unwrap();
        assert!(naive_partition(&nest, 8, NaiveShape::ByRows).is_none());
        assert!(naive_partition(&nest, 8, NaiveShape::ByColumns).is_some());
    }

    #[test]
    fn optimizer_never_loses_to_naive() {
        for src in [
            "doall (i, 1, 64) { doall (j, 1, 64) { A[i,j] = A[i+1,j] + A[i,j+3]; } }",
            "doall (i, 1, 64) { doall (j, 1, 64) { A[i,j] = B[i+j,i-j] + B[i+j+2,i-j+2]; } }",
        ] {
            let nest = parse(src).unwrap();
            let ours = partition_rect(&nest, 16);
            for shape in [
                NaiveShape::ByRows,
                NaiveShape::ByColumns,
                NaiveShape::SquareBlocks,
            ] {
                if let Some(n) = naive_partition(&nest, 16, shape) {
                    assert!(ours.cost <= n.cost, "{src} lost to {shape:?}");
                }
            }
        }
    }

    #[test]
    fn write_counts() {
        let nest = parse("doall (i, 0, 9) { l$C[i] = l$C[i] + A[i]; }").unwrap();
        assert_eq!(write_reference_count(&nest), 2);
    }
}
