//! Loop and data partitioning (§3.6–3.7 and §4 of Agarwal, Kranz &
//! Natarajan).
//!
//! Consumes the cost model of `alp-footprint` and produces the tile shape
//! that minimizes communication:
//!
//! * [`rect`] — rectangular partitions: the closed-form Lagrange aspect
//!   ratio (Examples 8–10) and the integer search over processor-grid
//!   factorizations that the Alewife compiler implements;
//! * [`para`] — hyperparallelepiped partitions: a search over small
//!   unimodular bases with per-basis Lagrange scaling (Examples 3 & 6);
//! * [`commfree`] — Ramanujam & Sadayappan-style communication-free
//!   partitions, recovered here as the integer nullspace of the
//!   iteration-space translation vectors (Example 2);
//! * [`baselines`] — Abraham & Hudak's rectangular algorithm and naive
//!   row/column/square partitions, for the comparison experiments;
//! * [`data`] — data partitioning, alignment and 2-D mesh placement
//!   (§4's other two compiler phases).

pub mod baselines;
pub mod commfree;
pub mod data;
pub mod para;
pub mod program;
pub mod rect;

pub use baselines::{abraham_hudak_rect, naive_partition, NaiveShape};
pub use commfree::{communication_free_normals, is_communication_free};
pub use data::{align_arrays, mesh_placement, ArrayPartition, MeshPlacement};
pub use para::{optimize_parallelepiped, para_candidates, ParaPartition, ParaSearchConfig};
pub use program::{partition_program, ProgramPartition, ProgramStrategy};
pub use rect::{
    aspect_ratio_with_spread, cache_blocked_extents, optimal_aspect_ratio, partition_rect,
    partition_rect_with_model, RectPartition, SpreadKind,
};
