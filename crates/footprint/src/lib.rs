//! Data footprints of loop tiles — the core analysis of Agarwal, Kranz &
//! Natarajan (ICPP 1993).
//!
//! Given a loop nest and a candidate iteration-space tile, this crate
//! answers: *how many distinct data elements does one tile touch?*  That
//! count (the **cumulative footprint**, §3.3–3.5 of the paper) is the
//! paper's proxy for the cache misses and coherence traffic a processor
//! generates, and minimizing it over tile shapes is the loop-partitioning
//! problem solved in `alp-partition`.
//!
//! The pipeline:
//!
//! 1. [`classify`] groups the body's references into **uniformly
//!    intersecting classes** (Defs. 4–6): same `G`, offsets differing by
//!    a vector of the image lattice of `G`.
//! 2. Each class gets a **spread** vector `â` (Def. 8) — or the
//!    cumulative spread `a⁺` for data partitioning (footnote 2).
//! 3. [`cumulative`] sizes the union of the class's footprints with
//!    Theorem 2 (general hyperparallelepiped tiles) or Theorem 4
//!    (rectangular tiles, via bounded lattices), and
//!    [`size`] sizes single-reference footprints (Eq. 2, Theorems 1 & 5,
//!    the §3.4.1 column reduction, and the exact counts of §3.8).
//! 4. [`model::CostModel`] sums the classes into one objective function
//!    of the tile shape, flagging classes that cannot affect the optimum
//!    (Example 10, case 3).
//!
//! Every estimate has an exact-by-enumeration counterpart used in tests
//! and in the `model_accuracy` experiment.

pub mod class;
pub mod cumulative;
pub mod model;
pub mod size;
pub mod tile;

pub use class::{classify, cumulative_spread, spread, RefClass};
pub use cumulative::{
    cumulative_footprint_exact, cumulative_footprint_general, cumulative_footprint_rect,
    cumulative_footprint_rect_exact_lattice,
};
pub use model::{ClassCost, CostModel};
pub use size::{single_footprint_estimate, single_footprint_exact, single_footprint_exact_l2};
pub use tile::Tile;
