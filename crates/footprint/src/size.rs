//! Size of the footprint of a single reference (§3.4, Theorems 1 & 5,
//! §3.4.1, §3.8).

use crate::tile::Tile;
use alp_linalg::{max_independent_columns, smith_normal_form, IMat, IVec};
use alp_loopir::ArrayRef;
use std::collections::HashSet;

/// Exact footprint size: the number of distinct data elements
/// `{ī·G + ā : ī ∈ tile}`, by enumeration of the tile's iterations.
///
/// The offset `ā` never changes the count (it translates the footprint,
/// Prop. 1), so only `G` matters here.
pub fn single_footprint_exact(tile: &Tile, g: &IMat) -> usize {
    let mut seen: HashSet<IVec> = HashSet::new();
    for i in tile.points() {
        seen.insert(g.apply_row(&i).expect("depth"));
    }
    seen.len()
}

/// Exact footprint of a concrete reference (enumerates actual data
/// points, offset included — used by the simulator cross-checks).
pub fn reference_footprint_exact(tile: &Tile, r: &ArrayRef) -> HashSet<IVec> {
    tile.points().iter().map(|i| r.eval(i)).collect()
}

/// The paper's determinant estimate of a footprint size (Eq. 2,
/// generalized).
///
/// Pipeline:
/// 1. drop zero columns of `G` (Example 1);
/// 2. keep a maximal independent column set `G'` (§3.4.1, Example 7);
/// 3. the footprint lies in `S(L·G')`; its size is estimated by the
///    volume of that region.
///
/// When `L·G'` is square this is `|det L·G'|` — exactly Eq. 2.  When `G`
/// has more rows than its rank (dependent *rows*, e.g. `A[i+j]`), the
/// region `S(L·G')` is a **zonotope** with `l` generators in
/// rank-dimensional space, and its volume is the sum of `|det|` over all
/// maximal row subsets — which reproduces the paper's §3.8 closed forms
/// for the low-dimensional special cases.
pub fn single_footprint_estimate(tile: &Tile, g: &IMat) -> i128 {
    let keep = max_independent_columns(g);
    if keep.is_empty() {
        return 1; // constant reference: one element
    }
    let g_red = g.select_columns(&keep);
    let lg = tile.l_matrix().mul(&g_red).expect("depth");
    zonotope_volume(&lg)
}

/// Lattice-corrected footprint estimate: the determinant estimate divided
/// by the index of `G`'s image lattice in its span.
///
/// Theorem 1 warns that for non-unimodular `G` (e.g. `A[2i]`) not every
/// integer point of `S(LG)` is touched; the image lattice has density
/// `1/index`, so dividing by the Smith-invariant product (the index)
/// recovers an asymptotically exact count.  This is the "exact footprint
/// lattice" refinement benchmarked in the `model_accuracy` experiment.
pub fn single_footprint_lattice_corrected(tile: &Tile, g: &IMat) -> i128 {
    let keep = max_independent_columns(g);
    if keep.is_empty() {
        return 1;
    }
    let g_red = g.select_columns(&keep);
    let vol = single_footprint_estimate(tile, g);
    let index: i128 = smith_normal_form(&g_red).invariants.iter().product();
    if index == 0 {
        vol
    } else {
        vol / index
    }
}

/// Exact footprint size for a **rectangular** tile and a depth-2 nest
/// with *any* reference matrix `G` — §3.8's claim that "the size of the
/// footprint can be computed precisely ... \[when\] the loop nesting
/// l = 2", in closed or semi-closed form (no data-space enumeration):
///
/// * rank 2 (independent rows): `(λ₁+1)(λ₂+1)` — Theorem 5;
/// * rank 1: the image lies on a line `c·v̄` with `v̄` primitive, row `r`
///   of `G` equal to `c_r·v̄`; distinct points = distinct values of
///   `c₁·i + c₂·j` over the box, counted by
///   [`alp_lattice::count_distinct_affine_values`];
/// * rank 0: a single element.
///
/// # Panics
/// Panics unless `g` has exactly 2 rows and `lambda` 2 entries.
pub fn single_footprint_exact_l2(lambda: &[i128], g: &IMat) -> i128 {
    assert_eq!(g.rows(), 2, "depth-2 form");
    assert_eq!(lambda.len(), 2, "depth-2 form");
    match g.rank() {
        0 => 1,
        2 => (lambda[0] + 1) * (lambda[1] + 1),
        _ => {
            // Rank 1: both rows are integer multiples of one primitive
            // direction.
            let r0 = g.row(0);
            let r1 = g.row(1);
            let base = if r0.is_zero() { r1.clone() } else { r0.clone() };
            let v = base.primitive();
            let k0 = (0..v.len()).find(|&k| v[k] != 0).expect("nonzero row");
            let c = [r0[k0] / v[k0], r1[k0] / v[k0]];
            debug_assert_eq!(r0, v.scale(c[0]));
            debug_assert_eq!(r1, v.scale(c[1]));
            alp_lattice::count_distinct_affine_values(&c, lambda)
        }
    }
}

/// Volume of the zonotope spanned by the rows of `q` (m generators in
/// n-space, m ≥ n): `Σ |det Q_S|` over all n-row subsets `S`.
///
/// For square `q` this is `|det q|`.
///
/// # Panics
/// Panics if `q` has fewer rows than columns (not a full-dimensional
/// zonotope; callers reduce columns first).
pub fn zonotope_volume(q: &IMat) -> i128 {
    let (m, n) = (q.rows(), q.cols());
    assert!(m >= n, "zonotope needs at least n generators");
    let mut total = 0i128;
    for subset in combinations(m, n) {
        let rows: Vec<IVec> = subset.iter().map(|&r| q.row(r)).collect();
        let sub = IMat::from_row_vecs(&rows);
        total += sub.det().expect("square").abs();
    }
    total
}

/// All `k`-subsets of `0..m`, lexicographic.
pub(crate) fn combinations(m: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > m {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + m - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn combinations_basics() {
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(2, 2), vec![vec![0, 1]]);
        assert_eq!(combinations(4, 1).len(), 4);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn estimate_identity_reference() {
        // A[i,j] with a rect tile: footprint volume = tile volume.
        let tile = Tile::rect(&[10, 20]);
        let g = IMat::identity(2);
        assert_eq!(single_footprint_estimate(&tile, &g), 200);
        // Exact counts the closed box: 11*21.
        assert_eq!(single_footprint_exact(&tile, &g), 11 * 21);
    }

    #[test]
    fn example6_skewed_footprint() {
        // Example 6: L = [[L1,L1],[L2,0]], G = [[1,0],[1,1]],
        // estimate |det LG| = L1*L2; exact = L1*L2 + L1 + L2 + 1.
        let (l1, l2) = (5i128, 4i128);
        let tile = Tile::general(IMat::from_rows(&[&[l1, l1], &[l2, 0]]));
        let g = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        assert_eq!(single_footprint_estimate(&tile, &g), l1 * l2);
        let exact = single_footprint_exact(&tile, &g) as i128;
        assert_eq!(exact, l1 * l2 + l1 + l2 + 1);
    }

    #[test]
    fn theorem5_independent_rows_count_tile_points() {
        // G = [[1,1],[1,-1]] nonsingular: footprint size == #tile points,
        // even though |det G| = 2 (the estimate would double-count).
        let tile = Tile::rect(&[6, 9]);
        let g = IMat::from_rows(&[&[1, 1], &[1, -1]]);
        assert_eq!(single_footprint_exact(&tile, &g) as i128, 7 * 10);
        // Lattice-corrected estimate: |det LG|/2 = (2*6*9)/2 = 54 ≈ 70-boundary.
        assert_eq!(single_footprint_lattice_corrected(&tile, &g), 54);
        assert_eq!(single_footprint_estimate(&tile, &g), 108);
    }

    #[test]
    fn a2i_density_correction() {
        // A[2i]: tile 0..=9 -> exact 10 distinct elements; det estimate 20;
        // corrected 10.
        let tile = Tile::rect(&[9]);
        let g = IMat::from_rows(&[&[2]]);
        assert_eq!(single_footprint_exact(&tile, &g), 10);
        assert_eq!(single_footprint_estimate(&tile, &g), 18);
        assert_eq!(single_footprint_lattice_corrected(&tile, &g), 9);
    }

    #[test]
    fn dependent_rows_zonotope() {
        // A[i+j]: zonotope generators (λ1), (λ2) in 1-D: volume λ1+λ2;
        // exact λ1+λ2+1.
        let tile = Tile::rect(&[7, 5]);
        let g = IMat::from_rows(&[&[1], &[1]]);
        assert_eq!(single_footprint_estimate(&tile, &g), 12);
        assert_eq!(single_footprint_exact(&tile, &g), 13);
    }

    #[test]
    fn example7_dependent_columns() {
        // A[i,2i,i+j]: G = [[1,2,1],[0,0,1]]; keep cols {0,2} -> G'
        // unimodular; estimate = |det(L·G')| = tile volume.
        let tile = Tile::rect(&[4, 6]);
        let g = IMat::from_rows(&[&[1, 2, 1], &[0, 0, 1]]);
        assert_eq!(single_footprint_estimate(&tile, &g), 24);
        assert_eq!(single_footprint_exact(&tile, &g), 5 * 7);
    }

    #[test]
    fn constant_reference() {
        let tile = Tile::rect(&[4, 4]);
        let g = IMat::zeros(2, 3);
        assert_eq!(single_footprint_estimate(&tile, &g), 1);
        assert_eq!(single_footprint_exact(&tile, &g), 1);
    }

    #[test]
    fn ferrante_comparison_reference() {
        // §5 claims the framework "yields better estimates for references
        // of the form A[i+j+k, 2i+3j+4k]" than Ferrante/Sarkar/Thrash.
        // G = [[1,2],[1,3],[1,4]] (rank 2, three dependent rows): the
        // zonotope estimate handles it directly.
        let g = IMat::from_rows(&[&[1, 2], &[1, 3], &[1, 4]]);
        let tile = Tile::rect(&[7, 7, 7]);
        let est = single_footprint_estimate(&tile, &g);
        let exact = single_footprint_exact(&tile, &g) as i128;
        // Zonotope volume: |det [[7,14],[7,21]]| + |det [[7,14],[7,28]]|
        // + |det [[7,21],[7,28]]| = 49 + 98 + 49 = 196.
        assert_eq!(est, 196);
        // The estimate is within boundary slack of the exact count and
        // FAR better than the naive dense-bounding-box count
        // ((7+7+7+1) x (14+21+28+1)) = 1408.
        let bbox = (7 + 7 + 7 + 1) * (14 + 21 + 28 + 1);
        assert!(
            (est - exact).abs() * 4 < exact,
            "est {est} vs exact {exact}"
        );
        assert!(bbox > 5 * exact, "bbox {bbox} vs exact {exact}");
    }

    #[test]
    fn zonotope_volume_3_generators_2d() {
        // Rows (2,0), (0,3), (1,1): vol = |det[[2,0],[0,3]]| +
        // |det[[2,0],[1,1]]| + |det[[0,3],[1,1]]| = 6 + 2 + 3 = 11.
        let q = IMat::from_rows(&[&[2, 0], &[0, 3], &[1, 1]]);
        assert_eq!(zonotope_volume(&q), 11);
    }

    #[test]
    fn exact_l2_cases() {
        // Rank 2.
        assert_eq!(
            single_footprint_exact_l2(&[4, 6], &IMat::from_rows(&[&[1, 1], &[1, -1]])),
            5 * 7
        );
        // Rank 1: A[i+j] -> values 0..λ1+λ2.
        assert_eq!(
            single_footprint_exact_l2(&[4, 6], &IMat::from_rows(&[&[1], &[1]])),
            11
        );
        // Rank 1 with a gap structure: A[2i+3j, 4i+6j] (both rows
        // multiples of (2... direction (1, ...)): rows (2,4) and (3,6)
        // are multiples of (1,2): c = (2, 3).
        let g = IMat::from_rows(&[&[2, 4], &[3, 6]]);
        assert_eq!(
            single_footprint_exact_l2(&[5, 5], &g),
            single_footprint_exact(&Tile::rect(&[5, 5]), &g) as i128
        );
        // Rank 0.
        assert_eq!(single_footprint_exact_l2(&[3, 3], &IMat::zeros(2, 2)), 1);
    }

    proptest! {
        #[test]
        fn exact_l2_matches_enumeration(
            e in proptest::collection::vec(-3i128..=3, 4),
            l1 in 0i128..=6, l2 in 0i128..=6,
        ) {
            let g = IMat::from_vec(2, 2, e);
            let fast = single_footprint_exact_l2(&[l1, l2], &g);
            let slow = single_footprint_exact(&Tile::rect(&[l1, l2]), &g) as i128;
            prop_assert_eq!(fast, slow, "G = {}", g);
        }

        #[test]
        fn exact_l2_matches_enumeration_1d(
            e in proptest::collection::vec(-4i128..=4, 2),
            l1 in 0i128..=6, l2 in 0i128..=6,
        ) {
            let g = IMat::from_vec(2, 1, e);
            let fast = single_footprint_exact_l2(&[l1, l2], &g);
            let slow = single_footprint_exact(&Tile::rect(&[l1, l2]), &g) as i128;
            prop_assert_eq!(fast, slow, "G = {}", g);
        }

        #[test]
        fn estimate_vs_exact_error_is_boundary_order(
            l1 in 3i128..=10, l2 in 3i128..=10,
            a in -2i128..=2, b in -2i128..=2, flip in proptest::bool::ANY,
        ) {
            // Build a unimodular G as a product of shears (optionally
            // mirrored) so the strategy never rejects.
            let shear1 = IMat::from_rows(&[&[1, a], &[0, 1]]);
            let shear2 = IMat::from_rows(&[&[1, 0], &[b, 1]]);
            let mirror = IMat::from_rows(&[&[1, 0], &[0, if flip { -1 } else { 1 }]]);
            let g = shear1.mul(&shear2).unwrap().mul(&mirror).unwrap();
            assert!(g.is_unimodular());
            let tile = Tile::rect(&[l1, l2]);
            let exact = single_footprint_exact(&tile, &g) as i128;
            let est = single_footprint_estimate(&tile, &g);
            // For unimodular G (Theorem 1), the exact count is the integer
            // points of S(LG): volume + O(perimeter).
            prop_assert!(exact >= est, "exact {} < estimate {}", exact, est);
            let slack = 4 * (l1 + l2) + 4;
            prop_assert!(exact - est <= slack, "error too large: {} vs {}", exact, est);
        }

        #[test]
        fn exact_injective_iff_rows_independent(
            e in proptest::collection::vec(-2i128..=2, 4),
            l1 in 1i128..=5, l2 in 1i128..=5,
        ) {
            let g = IMat::from_vec(2, 2, e);
            let tile = Tile::rect(&[l1, l2]);
            let exact = single_footprint_exact(&tile, &g) as i128;
            if g.rank() == 2 {
                prop_assert_eq!(exact, (l1 + 1) * (l2 + 1));
            } else {
                prop_assert!(exact <= (l1 + 1) * (l2 + 1));
            }
        }
    }
}
