//! The per-loop cost model: total cumulative footprint as a function of
//! tile shape (§3.5–3.6).

use crate::class::{classify, RefClass};
use crate::cumulative::{
    cumulative_footprint_exact, cumulative_footprint_general, cumulative_footprint_rect,
};
use crate::tile::Tile;
use alp_linalg::{IMat, Rat};
use alp_loopir::LoopNest;

/// One uniformly intersecting class together with its optimization
/// status.
#[derive(Debug, Clone)]
pub struct ClassCost {
    /// The class.
    pub class: RefClass,
    /// True when this class's footprint is the same for every tile of a
    /// given volume, so it cannot influence the optimal shape (Example 10,
    /// case 3: single-reference classes whose `G` has independent rows —
    /// their footprint is exactly the iteration count by Theorem 5).
    pub shape_invariant: bool,
}

/// Total cumulative footprint of a loop nest as a function of the tile.
///
/// The value `cost(tile)` estimates `Σ_classes |cumulative footprint|` —
/// the number of distinct data elements one processor touches, i.e. its
/// cold misses (§3.3).  For a nest wrapped in a sequential loop (Fig. 9)
/// the interesting quantity is [`CostModel::traffic_rect`]: the part of
/// the footprint shared with neighbouring tiles, which is re-communicated
/// every outer iteration.
#[derive(Debug, Clone)]
pub struct CostModel {
    classes: Vec<ClassCost>,
    depth: usize,
    trips: Vec<i128>,
    sync_weight: Rat,
}

impl CostModel {
    /// Build the model: classify references and mark shape-invariant
    /// classes.
    pub fn from_nest(nest: &LoopNest) -> Self {
        let depth = nest.depth();
        let trips = nest.loops.iter().map(|l| l.trip_count()).collect();
        let classes = classify(nest)
            .into_iter()
            .map(|class| {
                let rows_independent = class.g.rank() == class.g.rows();
                let zero_spread = class.spread().is_zero();
                ClassCost {
                    shape_invariant: rows_independent && zero_spread,
                    class,
                }
            })
            .collect();
        CostModel {
            classes,
            depth,
            trips,
            sync_weight: Rat::ONE,
        }
    }

    /// Weight fine-grain-synchronized (`l$`/accumulate) classes by
    /// `weight ≥ 1` — Appendix A's "approximately modeled as slightly
    /// more expensive communication than usual".
    ///
    /// With weight 1 (the default) the model is the paper's pure
    /// footprint objective; weights > 1 make the optimizer keep
    /// accumulated data private (e.g. matmul avoids splitting the
    /// reduction dimension).  Shape-invariant accumulate classes become
    /// shape-*dependent* under a weight, because their (constant-volume)
    /// footprint now costs more than other classes' — we conservatively
    /// keep them marked invariant since a uniform scale of a constant
    /// term still cannot change the argmin.
    ///
    /// # Panics
    /// Panics if `weight < 1`.
    pub fn with_sync_weight(mut self, weight: Rat) -> Self {
        assert!(weight >= Rat::ONE, "sync weight must be >= 1");
        self.sync_weight = weight;
        self
    }

    fn class_weight(&self, cc: &ClassCost) -> Rat {
        if cc.class.kinds.contains(&alp_loopir::AccessKind::Accumulate) {
            self.sync_weight
        } else {
            Rat::ONE
        }
    }

    /// Trip count of each parallel loop.
    pub fn trips(&self) -> &[i128] {
        &self.trips
    }

    /// Loop-nest depth (tiles must match it).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// All classes with their status.
    pub fn classes(&self) -> &[ClassCost] {
        &self.classes
    }

    /// Classes that can influence the optimal tile shape.
    pub fn active_classes(&self) -> impl Iterator<Item = &ClassCost> {
        self.classes.iter().filter(|c| !c.shape_invariant)
    }

    /// Total estimated footprint for a rectangular tile with extents
    /// `lambda` (Theorem 4 per class).
    pub fn cost_rect(&self, lambda: &[i128]) -> Rat {
        assert_eq!(lambda.len(), self.depth, "tile depth mismatch");
        let mut total = Rat::ZERO;
        for cc in &self.classes {
            total = total + cumulative_footprint_rect(lambda, &cc.class) * self.class_weight(cc);
        }
        total
    }

    /// Total estimated footprint for a general tile (Theorem 2 per
    /// class).  (Accumulate weighting rounds down to stay integral.)
    pub fn cost_general(&self, l: &IMat) -> i128 {
        assert_eq!(l.rows(), self.depth, "tile depth mismatch");
        let tile = Tile::general(l.clone());
        self.classes
            .iter()
            .map(|cc| {
                let base = cumulative_footprint_general(&tile, &cc.class);
                (Rat::int(base) * self.class_weight(cc)).floor()
            })
            .sum()
    }

    /// The **shape-dependent traffic** for a rectangular tile: the
    /// footprint minus each class's base volume term.  For the Fig. 9
    /// pattern (doall nest inside a sequential loop) this is the
    /// per-outer-iteration coherence traffic: `2LjLk + 3LiLk + 4LiLj` in
    /// Example 8's notation.
    pub fn traffic_rect(&self, lambda: &[i128]) -> Rat {
        assert_eq!(lambda.len(), self.depth, "tile depth mismatch");
        let mut base_all = Rat::ZERO;
        for cc in &self.classes {
            // Base term of Theorem 4: Π(λ+1) for full-rank classes; for
            // rank-deficient classes the whole footprint scales with the
            // boundary, so the base is the spread-free footprint.
            let mut zero_spread_class = cc.class.clone();
            let first = zero_spread_class.offsets[0].clone();
            for o in zero_spread_class.offsets.iter_mut() {
                *o = first.clone();
            }
            base_all = base_all + cumulative_footprint_rect(lambda, &zero_spread_class);
        }
        self.cost_rect(lambda) - base_all
    }

    /// Estimated **coherence traffic** of a rectangular tile: the spread
    /// terms of Theorem 4, but only along dimensions where neighbouring
    /// tiles exist (`λ_i + 1 <` trip count).
    ///
    /// A spread term along a dimension the tile spans completely is
    /// boundary data with no owner on the other side — extra *cold*
    /// misses but no sharing.  This is why Example 2's strip partition
    /// (104 misses per tile) still has **zero coherence traffic**: its
    /// only spread term points along the fully-spanned `i` dimension.
    /// Rank-deficient classes (no per-dimension decomposition) fall back
    /// to their full shape-dependent traffic, an upper bound.
    pub fn coherence_traffic_rect(&self, lambda: &[i128]) -> Rat {
        assert_eq!(lambda.len(), self.depth, "tile depth mismatch");
        use alp_linalg::{max_independent_columns, solve_rational, IVec};
        let mut total = Rat::ZERO;
        for cc in self.active_classes() {
            let g = &cc.class.g;
            let keep = max_independent_columns(g);
            let g_red = g.select_columns(&keep);
            let spread = cc.class.spread();
            let spread_red = IVec(keep.iter().map(|&k| spread[k]).collect());
            let decomposed = (g_red.rows() == g_red.cols() && g_red.is_nonsingular())
                .then(|| solve_rational(&g_red, &spread_red))
                .flatten();
            match decomposed {
                Some(u) => {
                    for (i, ui) in u.iter().enumerate().take(self.depth) {
                        if lambda[i] + 1 >= self.trips[i] {
                            continue; // tile spans the dimension: no neighbour
                        }
                        let mut term = ui.abs();
                        for (j, &lam) in lambda.iter().enumerate() {
                            if j != i {
                                term = term * Rat::int(lam + 1);
                            }
                        }
                        total = total + term;
                    }
                }
                None => {
                    // Fallback: whole shape-dependent excess of this class.
                    let mut zero_spread_class = cc.class.clone();
                    let first = zero_spread_class.offsets[0].clone();
                    for o in zero_spread_class.offsets.iter_mut() {
                        *o = first.clone();
                    }
                    let full = cumulative_footprint_rect(lambda, &cc.class);
                    let base = cumulative_footprint_rect(lambda, &zero_spread_class);
                    total = total + (full - base);
                }
            }
        }
        total
    }

    /// Exact total footprint by enumeration (validation path; cost is
    /// `O(classes × tile points)`).
    pub fn cost_exact(&self, tile: &Tile) -> usize {
        self.classes
            .iter()
            .map(|cc| cumulative_footprint_exact(tile, &cc.class))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn model(src: &str) -> CostModel {
        CostModel::from_nest(&parse(src).unwrap())
    }

    #[test]
    fn example8_model() {
        let m = model(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        );
        assert_eq!(m.classes().len(), 2);
        // A is shape-invariant (single ref, G = I), B is active.
        let a = m.classes().iter().find(|c| c.class.array == "A").unwrap();
        let b = m.classes().iter().find(|c| c.class.array == "B").unwrap();
        assert!(a.shape_invariant);
        assert!(!b.shape_invariant);
        assert_eq!(m.active_classes().count(), 1);

        // cost = 2·Π(λ+1) + spread terms.
        let (li, lj, lk) = (5i128, 5i128, 5i128);
        let p = 6i128;
        let expected = 2 * p * p * p + 2 * p * p + 3 * p * p + 4 * p * p;
        assert_eq!(m.cost_rect(&[li, lj, lk]), Rat::int(expected));

        // traffic = spread terms only.
        assert_eq!(m.traffic_rect(&[li, lj, lk]), Rat::int((2 + 3 + 4) * p * p));
    }

    #[test]
    fn example10_invariant_classes() {
        let m = model(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
                      + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1];
             } }",
        );
        assert_eq!(m.classes().len(), 4);
        // A and the lone C reference are shape-invariant; B and the C pair
        // are active (Example 10's case 3).
        assert_eq!(m.active_classes().count(), 2);
    }

    #[test]
    fn cost_exact_vs_estimate_example2() {
        // Example 2 with partition a (rows of 100): tile 0 x 99 in (i, j).
        let m = model(
            "doall (i, 101, 200) { doall (j, 1, 100) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        );
        // Partition a: strips of 100 iterations of i, single j
        // -> λ = (99, 0).  The paper's per-tile miss counts (104 vs 140)
        // are the B-class cumulative footprints; A adds a constant 100.
        let t_a = Tile::rect(&[99, 0]);
        let exact_a = m.cost_exact(&t_a);
        assert_eq!(exact_a, 100 + 104);
        // Partition b: 10x10 tiles -> λ = (9, 9).
        let t_b = Tile::rect(&[9, 9]);
        let exact_b = m.cost_exact(&t_b);
        assert_eq!(exact_b, 100 + 140);
        // a beats b, as the paper says.
        assert!(exact_a < exact_b);
    }

    #[test]
    #[should_panic(expected = "tile depth mismatch")]
    fn cost_rect_depth_checked() {
        let m = model("doall (i, 0, 9) { A[i] = A[i]; }");
        m.cost_rect(&[1, 2]);
    }

    #[test]
    fn rank_deficient_class_is_active_even_single_ref() {
        // Single reference A[i+j]: footprint depends on the tile shape
        // (λ1 + λ2 + 1), so it must stay active.
        let m = model("doall (i, 0, 9) { doall (j, 0, 9) { A[i+j] = A[i+j]; } }");
        assert_eq!(m.active_classes().count(), 1);
    }
}
