//! Cumulative footprints of uniformly intersecting classes (§3.5,
//! Theorems 2 & 4).

use crate::class::RefClass;
use crate::size::zonotope_volume;
use crate::tile::Tile;
use alp_linalg::{max_independent_columns, solve_rational, IMat, IVec, Rat};
use std::collections::HashSet;

/// Exact cumulative footprint: `|⋃_r F(r)|` counted by enumerating every
/// iteration of the tile against every member reference's offset.
pub fn cumulative_footprint_exact(tile: &Tile, class: &RefClass) -> usize {
    let mut seen: HashSet<IVec> = HashSet::new();
    let points = tile.points();
    for a in &class.offsets {
        for i in &points {
            let d = class.g.apply_row(i).expect("depth").add(a).expect("dim");
            seen.insert(d);
        }
    }
    seen.len()
}

/// Theorem 2 (generalized): cumulative footprint of a class for a general
/// hyperparallelepiped tile `L`:
///
/// ```text
/// |det LG| + Σᵢ |det LG_{i→â}|
/// ```
///
/// Implemented as the volume of the zonotope spanned by the rows of
/// `L·G'` **plus the spread vector `â`** as an extra generator — for a
/// square nonsingular `L·G'` the subset expansion of that volume is
/// literally the theorem's formula (the subsets omitting one row of `LG`
/// contribute the `i→â` determinants), and the zonotope form extends it
/// to rank-deficient `G` (e.g. `A[i+j]`-style references), which the
/// paper leaves to §3.8.
pub fn cumulative_footprint_general(tile: &Tile, class: &RefClass) -> i128 {
    let keep = max_independent_columns(&class.g);
    if keep.is_empty() {
        return 1; // constant references: a single element
    }
    let g_red = class.g.select_columns(&keep);
    let lg = tile.l_matrix().mul(&g_red).expect("depth");
    let spread_red = restrict(&class.spread(), &keep);
    if spread_red.is_zero() {
        return zonotope_volume(&lg);
    }
    let mut rows = lg.row_vecs();
    rows.push(spread_red);
    zonotope_volume(&IMat::from_row_vecs(&rows))
}

/// Theorem 4: cumulative footprint of a class for a **rectangular** tile
/// with extents `λ` and nonsingular (after column reduction) `G`:
///
/// ```text
/// Π (λⱼ+1)  +  Σᵢ |uᵢ| · Π_{j≠i} (λⱼ+1)      with  â = Σᵢ uᵢ·ḡᵢ
/// ```
///
/// The `uᵢ` solve `u·G = â` over the rationals (Theorem 4 derives them
/// from the bounded-lattice union size, Lemma 3).  Falls back to the
/// zonotope form of [`cumulative_footprint_general`] when `â` is not in
/// the row space of the reduced `G` (possible when the per-component
/// max/min of Def. 8 come from different references) or when the reduced
/// `G` is not square.
pub fn cumulative_footprint_rect(lambda: &[i128], class: &RefClass) -> Rat {
    let keep = max_independent_columns(&class.g);
    if keep.is_empty() {
        return Rat::ONE;
    }
    let g_red = class.g.select_columns(&keep);
    let spread_red = restrict(&class.spread(), &keep);
    let l = lambda.len();
    if g_red.rows() == g_red.cols() && g_red.is_nonsingular() {
        if let Some(u) = solve_rational(&g_red, &spread_red) {
            let mut total = Rat::ZERO;
            // Base term: Π (λⱼ+1).
            let mut base = Rat::ONE;
            for &lam in lambda {
                base = base * Rat::int(lam + 1);
            }
            total = total + base;
            for (i, ui) in u.iter().enumerate().take(l) {
                let mut term = ui.abs();
                for (j, &lam) in lambda.iter().enumerate() {
                    if j != i {
                        term = term * Rat::int(lam + 1);
                    }
                }
                total = total + term;
            }
            return total;
        }
    }
    let tile = Tile::rect(lambda);
    Rat::int(cumulative_footprint_general(&tile, class))
}

/// Keep only the listed components of a vector.
fn restrict(v: &IVec, keep: &[usize]) -> IVec {
    IVec(keep.iter().map(|&k| v[k]).collect())
}

/// **Exact** cumulative footprint for a rectangular tile and a class
/// whose reduced `G` is nonsingular, via inclusion–exclusion on the
/// coefficient lattice — no enumeration of data points.
///
/// Rationale: with independent rows of `G`, each member footprint is the
/// bounded lattice `{u·G : 0 ≤ u_k ≤ λ_k}` translated by coefficients
/// `c_r` solving `c_r·G = ā_r` (Theorem 3 machinery).  In coefficient
/// space each footprint is an axis-aligned **box**, an intersection of
/// shifted boxes is again a box, and `G` maps coefficient points 1-to-1
/// to data points (Lemma 1) — so
///
/// ```text
/// |⋃_r F_r| = Σ_{∅≠S} (−1)^{|S|+1} |⋂_{r∈S} box(c_r)|
/// ```
///
/// costs `O(2^refs · l)` instead of `O(Π λ)` — exact at analysis speed.
/// Returns `None` when the class does not reduce to a nonsingular `G` or
/// some member offset is not an *integer* lattice translate of the first
/// (then members do not share the coefficient grid and the caller should
/// fall back to [`cumulative_footprint_exact`]).
pub fn cumulative_footprint_rect_exact_lattice(lambda: &[i128], class: &RefClass) -> Option<i128> {
    use alp_linalg::solve_integer;
    let keep = max_independent_columns(&class.g);
    if keep.is_empty() {
        return Some(1);
    }
    let g_red = class.g.select_columns(&keep);
    if g_red.rows() != g_red.cols() || !g_red.is_nonsingular() {
        return None;
    }
    let base = restrict(&class.offsets[0], &keep);
    // Coefficient translate of each member relative to member 0.
    let mut shifts: Vec<IVec> = Vec::with_capacity(class.offsets.len());
    for a in &class.offsets {
        let diff = restrict(a, &keep).sub(&base).expect("dim");
        shifts.push(solve_integer(&g_red, &diff)?);
    }
    let l = lambda.len();
    let n = shifts.len();
    let mut total = 0i128;
    for mask in 1u32..(1 << n) {
        // Intersection of the boxes [shift_r, shift_r + λ] over r ∈ mask.
        let mut vol = 1i128;
        for k in 0..l {
            let mut lo = i128::MIN;
            let mut hi = i128::MAX;
            for (r, s) in shifts.iter().enumerate() {
                if mask & (1 << r) != 0 {
                    lo = lo.max(s[k]);
                    hi = hi.min(s[k] + lambda[k]);
                }
            }
            vol *= (hi - lo + 1).max(0);
            if vol == 0 {
                break;
            }
        }
        if mask.count_ones() % 2 == 1 {
            total += vol;
        } else {
            total -= vol;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::classify;
    use alp_loopir::parse;
    use proptest::prelude::*;

    fn class_of(src: &str, array: &str) -> RefClass {
        let nest = parse(src).unwrap();
        classify(&nest)
            .into_iter()
            .find(|c| c.array == array)
            .expect("array class")
    }

    #[test]
    fn theorem2_example_section35() {
        // §3.5's worked example: B[i+j,j] and B[i+j+1,j+2], â = (1,2),
        // L = [[L11,L12],[L21,L22]], LG = [[L11+L12, L12],[L21+L22, L22]].
        // Cumulative = |det LG| + |det [â over row2]| + |det [row1 over â]|.
        let class = class_of(
            "doall (i, 0, 99) { doall (j, 0, 99) {
               A[i,j] = B[i+j,j] + B[i+j+1,j+2];
             } }",
            "B",
        );
        assert_eq!(class.spread(), IVec::new(&[1, 2]));
        let l = IMat::from_rows(&[&[10, 4], &[2, 8]]);
        let tile = Tile::general(l.clone());
        let lg = l.mul(&class.g).unwrap();
        let expected = lg.det().unwrap().abs()
            + lg.with_row(0, &IVec::new(&[1, 2])).det().unwrap().abs()
            + lg.with_row(1, &IVec::new(&[1, 2])).det().unwrap().abs();
        assert_eq!(cumulative_footprint_general(&tile, &class), expected);
    }

    #[test]
    fn example8_cumulative_formula() {
        // Example 8: B stencil, â = (2,3,4), rect tile (Li,Lj,Lk):
        // footprint ≈ LiLjLk + 2LjLk + 3LiLk + 4LiLj (continuous form).
        // Theorem 4's +1 form: Π(λ+1) + 2(λj+1)(λk+1) + 3(λi+1)(λk+1)
        // + 4(λi+1)(λj+1).
        let class = class_of(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
            "B",
        );
        assert_eq!(class.spread(), IVec::new(&[2, 3, 4]));
        let (li, lj, lk) = (6i128, 9i128, 12i128);
        let got = cumulative_footprint_rect(&[li, lj, lk], &class);
        let p = |x: i128| x + 1;
        let expected =
            p(li) * p(lj) * p(lk) + 2 * p(lj) * p(lk) + 3 * p(li) * p(lk) + 4 * p(li) * p(lj);
        assert_eq!(got, Rat::int(expected));
    }

    #[test]
    fn example10_class_b() {
        // Example 10 class 1: G = [[1,1],[1,-1]], â = (4,2) = 3ḡ₁ + 1ḡ₂.
        // Footprint = (Li+1)(Lj+1) + 3(Lj+1) + (Li+1).
        let class = class_of(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2];
             } }",
            "B",
        );
        let (li, lj) = (8i128, 5i128);
        let got = cumulative_footprint_rect(&[li, lj], &class);
        assert_eq!(got, Rat::int((li + 1) * (lj + 1) + 3 * (lj + 1) + (li + 1)));
    }

    #[test]
    fn example10_class_c_pair() {
        // Example 10 class 2: C(i,2i,i+2j-1), C(i,2i,i+2j+1): singular G,
        // keep cols {0,2}; â reduced = (0,2) = 0·(1,1) + 1·(0,2):
        // footprint = (Li+1)(Lj+1) + (Li+1).
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = C[i,2*i,i+2*j-1] + C[i,2*i,i+2*j+1];
             } }",
        )
        .unwrap();
        let class = classify(&nest)
            .into_iter()
            .find(|c| c.array == "C")
            .unwrap();
        assert_eq!(class.len(), 2);
        let (li, lj) = (8i128, 5i128);
        let got = cumulative_footprint_rect(&[li, lj], &class);
        assert_eq!(got, Rat::int((li + 1) * (lj + 1) + (li + 1)));
    }

    #[test]
    fn single_ref_class_has_no_spread_terms() {
        let class = class_of(
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[i,j]; } }",
            "A",
        );
        let got = cumulative_footprint_rect(&[4, 4], &class);
        assert_eq!(got, Rat::int(25));
    }

    #[test]
    fn exact_union_matches_manual_small_case() {
        // A[i] and A[i+3] on tile 0..=4: union {0..4} ∪ {3..7} = 8.
        let class = class_of("doall (i, 0, 9) { A[i] = A[i+3]; }", "A");
        let tile = Tile::rect(&[4]);
        assert_eq!(cumulative_footprint_exact(&tile, &class), 8);
        // Theorem 4: (4+1) + 3 = 8 exactly.
        assert_eq!(cumulative_footprint_rect(&[4], &class), Rat::int(8));
    }

    #[test]
    fn rank_deficient_class_falls_back() {
        // A[i+j] with offsets 0 and 2: exact = λ1+λ2+1+2.
        let class = class_of(
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i+j] = A[i+j+2]; } }",
            "A",
        );
        let tile = Tile::rect(&[5, 3]);
        assert_eq!(cumulative_footprint_exact(&tile, &class), 5 + 3 + 1 + 2);
        // Zonotope fallback: generators (5), (3), spread (2) -> 10.
        assert_eq!(cumulative_footprint_rect(&[5, 3], &class), Rat::int(10));
    }

    #[test]
    fn exact_lattice_matches_enumeration_stencil() {
        // Example 8's B class: three offsets, G = I.
        let class = class_of(
            "doall (i, 1, 20) { doall (j, 1, 20) { doall (k, 1, 20) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
            "B",
        );
        let lam = [5i128, 6, 7];
        let fast = cumulative_footprint_rect_exact_lattice(&lam, &class).unwrap();
        let slow = cumulative_footprint_exact(&Tile::rect(&lam), &class) as i128;
        assert_eq!(fast, slow);
    }

    #[test]
    fn exact_lattice_matches_enumeration_skewed() {
        // Example 10's B class: nonsingular non-unimodular G, offsets an
        // integer lattice translate apart.
        let class = class_of(
            "doall (i, 1, 20) { doall (j, 1, 20) {
               A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2];
             } }",
            "B",
        );
        for lam in [[4i128, 4], [9, 5], [3, 11]] {
            let fast = cumulative_footprint_rect_exact_lattice(&lam, &class).unwrap();
            let slow = cumulative_footprint_exact(&Tile::rect(&lam), &class) as i128;
            assert_eq!(fast, slow, "λ = {lam:?}");
        }
    }

    #[test]
    fn exact_lattice_declines_rank_deficient() {
        let class = class_of(
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i+j] = A[i+j+2]; } }",
            "A",
        );
        assert_eq!(
            cumulative_footprint_rect_exact_lattice(&[5, 3], &class),
            None
        );
    }

    #[test]
    fn exact_lattice_single_ref_is_box() {
        let class = class_of(
            "doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = A[i,j]; } }",
            "A",
        );
        assert_eq!(
            cumulative_footprint_rect_exact_lattice(&[4, 6], &class),
            Some(5 * 7)
        );
    }

    proptest! {
        #[test]
        fn exact_lattice_equals_enumeration_random(
            li in 2i128..=7, lj in 2i128..=7,
            o1 in -3i128..=3, o2 in -3i128..=3,
            o3 in -3i128..=3, o4 in -3i128..=3,
        ) {
            // Three-member class with G = I.
            let fmt = |v: i128| format!("{}{}", if v >= 0 { "+" } else { "" }, v);
            let src = format!(
                "doall (i, 4, 24) {{ doall (j, 4, 24) {{
                   A[i,j] = A[i{}, j{}] + A[i{}, j{}];
                 }} }}",
                fmt(o1), fmt(o2), fmt(o3), fmt(o4),
            );
            let nest = parse(&src).unwrap();
            // All three refs share G = I and integer offsets: one class.
            let classes = classify(&nest);
            for class in &classes {
                let lam = [li, lj];
                if let Some(fast) = cumulative_footprint_rect_exact_lattice(&lam, class) {
                    let slow = cumulative_footprint_exact(&Tile::rect(&lam), class) as i128;
                    prop_assert_eq!(fast, slow, "class {} λ {:?}", class.array, lam);
                }
            }
        }

        #[test]
        fn theorem4_tracks_exact_for_stencils(
            li in 2i128..=8, lj in 2i128..=8,
            o1 in -2i128..=2, o2 in -2i128..=2,
        ) {
            // Class: A[i,j] and A[i+o1, j+o2] (G = I).
            let src = format!(
                "doall (i, 0, 20) {{ doall (j, 0, 20) {{
                   A[i,j] = A[i{}{}, j{}{}];
                 }} }}",
                if o1 >= 0 { "+" } else { "" }, o1,
                if o2 >= 0 { "+" } else { "" }, o2,
            );
            let class = class_of(&src, "A");
            let tile = Tile::rect(&[li, lj]);
            let exact = cumulative_footprint_exact(&tile, &class) as i128;
            let thm4 = cumulative_footprint_rect(&[li, lj], &class);
            // With G = I, Theorem 4 comes from Lemma 3 dropping the
            // Π|uᵢ| corner term, so it over-counts by at most that corner
            // and matches otherwise.
            let corner = o1.abs() * o2.abs();
            let diff = thm4 - Rat::int(exact);
            prop_assert!(diff >= Rat::ZERO && diff <= Rat::int(corner),
                "thm4 {:?} exact {} corner {}", thm4, exact, corner);
        }

        #[test]
        fn general_estimate_close_to_exact_unimodular(
            li in 3i128..=7, lj in 3i128..=7,
            a1 in 0i128..=2, a2 in 0i128..=2,
        ) {
            // Class with G = [[1,0],[1,1]] (Example 6 family).
            let src = format!(
                "doall (i, 0, 20) {{ doall (j, 0, 20) {{
                   A[i,j] = B[i+j,j] + B[i+j+{a1},j+{a2}];
                 }} }}"
            );
            let class = class_of(&src, "B");
            let tile = Tile::rect(&[li, lj]);
            let exact = cumulative_footprint_exact(&tile, &class) as i128;
            let est = cumulative_footprint_general(&tile, &class);
            // Volume estimate is below the closed count, within boundary
            // slack.
            prop_assert!(est <= exact);
            prop_assert!(exact - est <= 6 * (li + lj + a1 + a2) + 6,
                "est {} exact {}", est, exact);
        }
    }
}
