//! Iteration-space tiles (Defs. 1–2, Props. 2–3).

use alp_lattice::Parallelepiped;
use alp_linalg::{IMat, IVec};

/// A hyperparallelepiped loop tile, represented by the paper's `L` matrix
/// (Def. 2): the rows of `L` are the edge vectors of the tile at the
/// origin, so the tile's iterations are the integer points of `S(L)`
/// (Def. 7) and its volume is `|det L|` (Prop. 2).
///
/// A rectangular tile (Example 4) is the special case `L = Λ = diag(λ)`;
/// its iterations are the box `0 ≤ i_k ≤ λ_k` and their number is
/// `Π(λ_k + 1)` (Prop. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    l: IMat,
}

impl Tile {
    /// Rectangular tile with inclusive extents `λ` (side `λ_k` spans
    /// `λ_k + 1` iterations).
    ///
    /// # Panics
    /// Panics if any extent is negative.
    pub fn rect(lambda: &[i128]) -> Self {
        assert!(lambda.iter().all(|&x| x >= 0), "negative tile extent");
        Tile {
            l: IMat::diag(lambda),
        }
    }

    /// General hyperparallelepiped tile from its `L` matrix (rows = edge
    /// vectors).
    ///
    /// # Panics
    /// Panics if `l` is not square.
    pub fn general(l: IMat) -> Self {
        assert!(l.is_square(), "tile matrix must be square");
        Tile { l }
    }

    /// The `L` matrix.
    pub fn l_matrix(&self) -> &IMat {
        &self.l
    }

    /// Loop-nest depth this tile partitions.
    pub fn depth(&self) -> usize {
        self.l.rows()
    }

    /// True when `L` is diagonal (rectangular partition).
    pub fn is_rect(&self) -> bool {
        let n = self.l.rows();
        (0..n).all(|i| (0..n).all(|j| i == j || self.l[(i, j)] == 0))
    }

    /// The diagonal extents, if rectangular.
    pub fn rect_extents(&self) -> Option<Vec<i128>> {
        self.is_rect()
            .then(|| (0..self.l.rows()).map(|i| self.l[(i, i)]).collect())
    }

    /// Continuous tile volume `|det L|` (Prop. 2).
    pub fn volume(&self) -> i128 {
        self.l.det().expect("square").abs()
    }

    /// Number of iterations in the tile, counted exactly: integer points
    /// of the closed parallelepiped `S(L)` (for a rectangular tile this is
    /// `Π(λ_k + 1)`, Prop. 3).
    pub fn iteration_count_exact(&self) -> i128 {
        if let Some(ext) = self.rect_extents() {
            return ext.iter().map(|&x| x + 1).product();
        }
        Parallelepiped::new(self.l.clone()).integer_points().len() as i128
    }

    /// Enumerate the iterations of the tile at the origin.
    pub fn points(&self) -> Vec<IVec> {
        if let Some(ext) = self.rect_extents() {
            // Fast path: iterate the box directly.
            let n = ext.len();
            let mut out = Vec::new();
            let mut x = vec![0i128; n];
            loop {
                out.push(IVec(x.clone()));
                let mut k = 0;
                loop {
                    if k == n {
                        return out;
                    }
                    x[k] += 1;
                    if x[k] <= ext[k] {
                        break;
                    }
                    x[k] = 0;
                    k += 1;
                }
            }
        }
        Parallelepiped::new(self.l.clone()).integer_points()
    }

    /// The data-space parallelepiped `S(LG)` for a reference matrix `G`.
    pub fn image(&self, g: &IMat) -> Parallelepiped {
        Parallelepiped::new(self.l.mul(g).expect("depth mismatch"))
    }
}

impl std::fmt::Display for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(ext) = self.rect_extents() {
            write!(f, "rect{:?}", ext)
        } else {
            write!(f, "tile L=\n{}", self.l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_tile_basics() {
        let t = Tile::rect(&[3, 4]);
        assert!(t.is_rect());
        assert_eq!(t.rect_extents(), Some(vec![3, 4]));
        assert_eq!(t.volume(), 12);
        assert_eq!(t.iteration_count_exact(), 20); // (3+1)(4+1), Prop. 3
        assert_eq!(t.points().len(), 20);
    }

    #[test]
    fn general_tile_example6() {
        // Example 6's skewed tile L = [[L1, L1], [L2, 0]].
        let t = Tile::general(IMat::from_rows(&[&[4, 4], &[3, 0]]));
        assert!(!t.is_rect());
        assert_eq!(t.rect_extents(), None);
        assert_eq!(t.volume(), 12);
        // Exact count >= volume (boundary points included).
        assert!(t.iteration_count_exact() >= 12);
    }

    #[test]
    fn image_parallelepiped() {
        // Example 6: L = [[L1, L1],[L2, 0]], G = [[1,0],[1,1]]
        // => LG = [[2L1, L1], [L2, 0]].
        let t = Tile::general(IMat::from_rows(&[&[4, 4], &[3, 0]]));
        let g = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let img = t.image(&g);
        assert_eq!(img.matrix(), &IMat::from_rows(&[&[8, 4], &[3, 0]]));
        assert_eq!(img.volume().unwrap(), 12);
    }

    #[test]
    fn zero_extent_tile() {
        let t = Tile::rect(&[0, 5]);
        assert_eq!(t.volume(), 0);
        assert_eq!(t.iteration_count_exact(), 6);
    }

    #[test]
    #[should_panic(expected = "negative tile extent")]
    fn negative_extent_panics() {
        Tile::rect(&[-1]);
    }

    #[test]
    fn points_of_skewed_tile_are_inside() {
        let t = Tile::general(IMat::from_rows(&[&[2, 1], &[0, 3]]));
        let para = Parallelepiped::new(t.l_matrix().clone());
        for p in t.points() {
            assert!(para.contains(&p));
        }
    }
}
