//! Per-processor caches: infinite (the paper's analytical assumption,
//! §2.2) or finite set-associative LRU (for the capacity-effects
//! ablation).

use std::collections::{HashMap, HashSet};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfig {
    /// Unbounded cache — every line once fetched stays until invalidated.
    /// This matches the paper's assumption that "caches are large enough
    /// to hold all the data required by a loop partition".
    Infinite,
    /// `sets × ways` lines, LRU within a set, direct line-id indexing.
    Finite {
        /// Number of sets (power of two recommended).
        sets: usize,
        /// Associativity.
        ways: usize,
    },
}

/// Local coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean, possibly shared with other caches.
    Shared,
    /// Writable/dirty; no other cache holds it.
    Modified,
}

/// One processor's cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Infinite mode: line -> state.
    map: HashMap<u64, LineState>,
    /// Finite mode: per-set LRU queues (front = LRU victim).
    sets: Vec<Vec<(u64, LineState)>>,
    /// Lines this cache has ever held (for cold/coherence miss
    /// classification).
    ever_held: HashSet<u64>,
    /// Lines lost to remote invalidation since last held (distinguishes
    /// coherence misses from capacity misses).
    invalidated: HashSet<u64>,
    /// Monotone tick for LRU ordering.
    tick: u64,
}

/// Why a lookup missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalMiss {
    /// Never held before.
    Cold,
    /// Previously invalidated by another processor's write.
    Coherence,
    /// Previously evicted for capacity/conflict reasons.
    Capacity,
}

impl Cache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = match config {
            CacheConfig::Infinite => Vec::new(),
            CacheConfig::Finite { sets, .. } => vec![Vec::new(); sets],
        };
        Cache {
            config,
            map: HashMap::new(),
            sets,
            ever_held: HashSet::new(),
            invalidated: HashSet::new(),
            tick: 0,
        }
    }

    /// Current state of a line, touching LRU.
    pub fn probe(&mut self, line: u64) -> Option<LineState> {
        self.tick += 1;
        match self.config {
            CacheConfig::Infinite => self.map.get(&line).copied(),
            CacheConfig::Finite { sets, .. } => {
                let set = &mut self.sets[(line as usize) % sets];
                if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
                    let entry = set.remove(pos);
                    set.push(entry); // move to MRU
                    Some(entry.1)
                } else {
                    None
                }
            }
        }
    }

    /// Classify a miss on `line` (call when `probe` returned `None`).
    pub fn miss_kind(&self, line: u64) -> LocalMiss {
        if !self.ever_held.contains(&line) {
            LocalMiss::Cold
        } else if self.invalidated.contains(&line) {
            LocalMiss::Coherence
        } else {
            LocalMiss::Capacity
        }
    }

    /// Insert (or upgrade) a line.  Returns the victim line evicted for
    /// capacity, if any.
    pub fn fill(&mut self, line: u64, state: LineState) -> Option<u64> {
        self.ever_held.insert(line);
        self.invalidated.remove(&line);
        match self.config {
            CacheConfig::Infinite => {
                self.map.insert(line, state);
                None
            }
            CacheConfig::Finite { sets, ways } => {
                let set = &mut self.sets[(line as usize) % sets];
                if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
                    set.remove(pos);
                }
                let victim = if set.len() >= ways {
                    Some(set.remove(0).0) // LRU front
                } else {
                    None
                };
                set.push((line, state));
                victim
            }
        }
    }

    /// Remote invalidation (another processor wrote the line).
    /// Returns true if the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let present = match self.config {
            CacheConfig::Infinite => self.map.remove(&line).is_some(),
            CacheConfig::Finite { sets, .. } => {
                let set = &mut self.sets[(line as usize) % sets];
                match set.iter().position(|&(l, _)| l == line) {
                    Some(pos) => {
                        set.remove(pos);
                        true
                    }
                    None => false,
                }
            }
        };
        if present {
            self.invalidated.insert(line);
        }
        present
    }

    /// Downgrade a Modified line to Shared (another processor read it).
    /// Returns true if the line was present and modified.
    pub fn downgrade(&mut self, line: u64) -> bool {
        match self.config {
            CacheConfig::Infinite => match self.map.get_mut(&line) {
                Some(s @ LineState::Modified) => {
                    *s = LineState::Shared;
                    true
                }
                _ => false,
            },
            CacheConfig::Finite { sets, .. } => {
                let set = &mut self.sets[(line as usize) % sets];
                match set.iter_mut().find(|(l, _)| *l == line) {
                    Some((_, s @ LineState::Modified)) => {
                        *s = LineState::Shared;
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Number of lines currently resident.
    pub fn resident(&self) -> usize {
        match self.config {
            CacheConfig::Infinite => self.map.len(),
            CacheConfig::Finite { .. } => self.sets.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = Cache::new(CacheConfig::Infinite);
        for l in 0..10_000u64 {
            assert_eq!(c.probe(l), None);
            assert_eq!(c.miss_kind(l), LocalMiss::Cold);
            assert_eq!(c.fill(l, LineState::Shared), None);
        }
        assert_eq!(c.resident(), 10_000);
        assert_eq!(c.probe(0), Some(LineState::Shared));
    }

    #[test]
    fn finite_cache_lru_eviction() {
        let mut c = Cache::new(CacheConfig::Finite { sets: 1, ways: 2 });
        c.fill(1, LineState::Shared);
        c.fill(2, LineState::Shared);
        // Touch 1 so 2 becomes LRU.
        assert!(c.probe(1).is_some());
        let victim = c.fill(3, LineState::Shared);
        assert_eq!(victim, Some(2));
        assert_eq!(c.probe(2), None);
        assert_eq!(c.miss_kind(2), LocalMiss::Capacity);
    }

    #[test]
    fn coherence_vs_capacity_classification() {
        let mut c = Cache::new(CacheConfig::Infinite);
        c.fill(7, LineState::Shared);
        assert!(c.invalidate(7));
        assert_eq!(c.probe(7), None);
        assert_eq!(c.miss_kind(7), LocalMiss::Coherence);
        // Refill clears the invalidated mark.
        c.fill(7, LineState::Shared);
        assert_eq!(c.probe(7), Some(LineState::Shared));
    }

    #[test]
    fn invalidate_absent_line() {
        let mut c = Cache::new(CacheConfig::Infinite);
        assert!(!c.invalidate(1));
        let mut f = Cache::new(CacheConfig::Finite { sets: 2, ways: 1 });
        assert!(!f.invalidate(1));
    }

    #[test]
    fn downgrade_modified() {
        let mut c = Cache::new(CacheConfig::Infinite);
        c.fill(5, LineState::Modified);
        assert!(c.downgrade(5));
        assert_eq!(c.probe(5), Some(LineState::Shared));
        assert!(!c.downgrade(5), "already shared");
        assert!(!c.downgrade(6), "absent");
    }

    #[test]
    fn set_indexing_separates_lines() {
        let mut c = Cache::new(CacheConfig::Finite { sets: 2, ways: 1 });
        c.fill(0, LineState::Shared); // set 0
        c.fill(1, LineState::Shared); // set 1
        assert_eq!(c.resident(), 2);
        c.fill(2, LineState::Shared); // set 0, evicts 0
        assert_eq!(c.probe(0), None);
        assert!(c.probe(1).is_some());
    }
}
