//! A deterministic, trace-driven simulator of the cache-coherent
//! shared-memory multiprocessor assumed by the paper's system model
//! (§2.2, Fig. 2) — the `alp` stand-in for the Alewife machine.
//!
//! The machine: `P` processors, each with a coherent cache (infinite or
//! finite set-associative LRU; **unit cache lines**, per the paper's
//! assumption), backed by memory that is either monolithic (uniform
//! access, the model of §2.2) or distributed across the processing nodes
//! (the Alewife configuration of §4, with a 2-D mesh and per-hop cost).
//! Coherence is a full-map invalidate directory protocol in MSI form.
//!
//! The simulator answers the questions the paper's analysis predicts:
//! how many cache misses does a loop partition incur ([`TrafficReport`]'s
//! cold misses ≈ cumulative footprint), how much invalidation traffic
//! does tile-boundary sharing generate, and — with distributed memory —
//! how many misses are served remotely (the data-alignment experiments).
//!
//! Determinism: per-processor access traces are generated in parallel
//! (crossbeam scoped threads), then the coherence protocol processes
//! accesses in a fixed round-robin interleaving, so every run of the same
//! input produces the same counters.

pub mod cache;
pub mod layout;
pub mod machine;
pub mod report;

pub use cache::{Cache, CacheConfig};
pub use layout::{
    ArrayLayout, BlockRowMajorHome, FnHome, HomeMap, TiledArrayHome, TiledHome, UniformHome,
};
pub use machine::{run_nest, run_plan, DirectoryKind, Machine, MachineConfig};
pub use report::{MissKind, ProcessorCounters, TrafficReport};
