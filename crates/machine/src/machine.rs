//! The machine proper: full-map MSI directory over per-processor caches.

use crate::cache::{Cache, CacheConfig, LineState, LocalMiss};
use crate::layout::{ArrayLayout, HomeMap};
use crate::report::{ProcessorCounters, TrafficReport};
use alp_linalg::IVec;
use alp_loopir::LoopNest;
use std::collections::HashMap;

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processors (≤ 128: the directory uses a full-map
    /// bitmask, like Alewife's full-map ancestor).
    pub processors: usize,
    /// Cache geometry (shared by all processors).
    pub cache: CacheConfig,
    /// Optional 2-D mesh (width, height) for hop-weighted traffic;
    /// processor `p` sits at `(p % w, p / w)`.
    pub mesh: Option<(usize, usize)>,
    /// Elements per cache line.  The paper assumes 1 (§2.2) and notes
    /// that larger lines "can be included as suggested in \[6\]"; values
    /// above 1 model spatial locality *and* false sharing at tile
    /// boundaries.  Consecutive flattened element addresses share a
    /// line.
    pub line_size: u64,
    /// Directory organization (full-map by default).
    pub directory: DirectoryKind,
}

/// How the coherence directory tracks sharers.
///
/// Alewife's actual directory is LimitLESS: a few hardware pointers with
/// software extension on overflow.  The classic hardware alternatives
/// are modeled here; overflow events are counted so the cost of the
/// software trap (or the broadcast) can be charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryKind {
    /// One presence bit per processor (no overflow, the default).
    FullMap,
    /// `Dir_i NB`: at most `pointers` sharers are tracked; admitting one
    /// more *invalidates* a tracked sharer to make room.
    LimitedNoBroadcast {
        /// Hardware pointer count (≥ 1).
        pointers: u32,
    },
    /// `Dir_i B`: on overflow a broadcast bit is set; the next write
    /// invalidates every cache (imprecise but never evicts readers).
    LimitedBroadcast {
        /// Hardware pointer count (≥ 1).
        pointers: u32,
    },
}

impl MachineConfig {
    /// Uniform-memory machine with infinite caches and unit lines — the
    /// paper's §2.2 model.
    pub fn uniform(processors: usize) -> Self {
        MachineConfig {
            processors,
            cache: CacheConfig::Infinite,
            mesh: None,
            line_size: 1,
            directory: DirectoryKind::FullMap,
        }
    }

    /// Set the cache-line size in elements.
    pub fn with_line_size(mut self, line_size: u64) -> Self {
        assert!(line_size >= 1, "line size must be positive");
        self.line_size = line_size;
        self
    }

    /// Set the directory organization.
    pub fn with_directory(mut self, directory: DirectoryKind) -> Self {
        if let DirectoryKind::LimitedNoBroadcast { pointers }
        | DirectoryKind::LimitedBroadcast { pointers } = directory
        {
            assert!(pointers >= 1, "need at least one directory pointer");
        }
        self.directory = directory;
        self
    }
}

/// Full-map directory entry for one line.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of caches holding the line.
    sharers: u128,
    /// Cache holding it Modified, if any.
    owner: Option<u32>,
    /// Dir_i B only: pointer overflow happened; the sharer set is
    /// imprecise and a write must broadcast.
    broadcast: bool,
}

/// A cache-coherent multiprocessor executing memory access traces.
pub struct Machine<'h> {
    config: MachineConfig,
    home: &'h dyn HomeMap,
    caches: Vec<Cache>,
    directory: HashMap<u64, DirEntry>,
    counters: Vec<ProcessorCounters>,
}

impl<'h> Machine<'h> {
    /// Build a machine.
    ///
    /// # Panics
    /// Panics if `processors` is 0 or exceeds 128.
    pub fn new(config: MachineConfig, home: &'h dyn HomeMap) -> Self {
        assert!(
            (1..=128).contains(&config.processors),
            "processors must be in 1..=128 (full-map bitmask)"
        );
        let caches = (0..config.processors)
            .map(|_| Cache::new(config.cache))
            .collect();
        let counters = vec![ProcessorCounters::default(); config.processors];
        Machine {
            config,
            home,
            caches,
            directory: HashMap::new(),
            counters,
        }
    }

    fn hops(&self, a: usize, b: usize) -> u64 {
        match self.config.mesh {
            None => 0,
            Some((w, _)) => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
            }
        }
    }

    /// Issue one access from processor `p` to element address `addr`.
    ///
    /// The cache/directory granularity is `line_size` elements; the home
    /// of a line is the home of its first element.
    pub fn access(&mut self, p: usize, addr: u64, write: bool) {
        debug_assert!(p < self.config.processors);
        let ls = self.config.line_size.max(1);
        let line = addr / ls;
        self.counters[p].accesses += 1;
        let state = self.caches[p].probe(line);
        let home = self.home.home(line * ls);

        match (state, write) {
            (Some(_), false) | (Some(LineState::Modified), true) => {
                self.counters[p].hits += 1;
            }
            (Some(LineState::Shared), true) => {
                // Upgrade: invalidate all other sharers via the directory.
                self.counters[p].hits += 1; // data already local
                self.invalidate_others(p, line, home);
                let e = self.directory.entry(line).or_default();
                e.sharers = 1u128 << p;
                e.owner = Some(p as u32);
                self.caches[p].fill(line, LineState::Modified);
            }
            (None, _) => {
                // Miss: fetch through the directory.
                match self.caches[p].miss_kind(line) {
                    LocalMiss::Cold => self.counters[p].cold_misses += 1,
                    LocalMiss::Coherence => self.counters[p].coherence_misses += 1,
                    LocalMiss::Capacity => self.counters[p].capacity_misses += 1,
                }
                if home == p {
                    self.counters[p].local_misses += 1;
                } else {
                    self.counters[p].remote_misses += 1;
                }
                // Request + reply between requester and home.
                let mut hops = 2 * self.hops(p, home);
                let entry = self.directory.entry(line).or_default().to_owned();
                if let Some(q) = entry.owner {
                    let q = q as usize;
                    if q != p {
                        // Home forwards to the dirty owner.
                        hops += 2 * self.hops(home, q);
                        if write {
                            self.caches[q].invalidate(line);
                            self.counters[q].invalidations_received += 1;
                            self.counters[p].invalidations_sent += 1;
                        } else {
                            self.caches[q].downgrade(line);
                        }
                    }
                }
                if write {
                    // Invalidate every other sharer.
                    self.invalidate_others(p, line, home);
                    let e = self.directory.entry(line).or_default();
                    e.sharers = 1u128 << p;
                    e.owner = Some(p as u32);
                    if let Some(victim) = self.caches[p].fill(line, LineState::Modified) {
                        self.evict(p, victim);
                    }
                } else {
                    self.admit_sharer(p, line, home);
                    if let Some(victim) = self.caches[p].fill(line, LineState::Shared) {
                        self.evict(p, victim);
                    }
                }
                self.counters[p].hop_traffic += hops;
            }
        }
    }

    fn invalidate_others(&mut self, p: usize, line: u64, home: usize) {
        let entry = self.directory.entry(line).or_default().to_owned();
        let mut hops = 0;
        for q in 0..self.config.processors {
            if q == p {
                continue;
            }
            // With the broadcast bit set the sharer list is imprecise:
            // probe every cache; otherwise only tracked sharers.
            if !entry.broadcast && entry.sharers & (1u128 << q) == 0 {
                continue;
            }
            if entry.broadcast {
                // The broadcast message itself travels regardless of
                // whether the line is present.
                hops += self.hops(home, q);
            }
            if self.caches[q].invalidate(line) {
                self.counters[q].invalidations_received += 1;
                self.counters[p].invalidations_sent += 1;
                if !entry.broadcast {
                    hops += self.hops(home, q);
                }
            }
        }
        if let Some(e) = self.directory.get_mut(&line) {
            e.broadcast = false;
        }
        self.counters[p].hop_traffic += hops;
    }

    /// Record `p` as a sharer of `line`, handling limited-directory
    /// pointer overflow.
    fn admit_sharer(&mut self, p: usize, line: u64, home: usize) {
        let directory_kind = self.config.directory;
        // Phase 1: update the entry and decide on any overflow action.
        let mut evict_victim: Option<usize> = None;
        {
            let e = self.directory.entry(line).or_default();
            // Fold a downgraded previous owner into the sharer set first.
            if let Some(q) = e.owner {
                if q != p as u32 {
                    e.sharers |= 1u128 << q;
                }
                e.owner = None;
            }
            let already = e.sharers & (1u128 << p) != 0;
            let count = e.sharers.count_ones();
            match directory_kind {
                DirectoryKind::LimitedNoBroadcast { pointers } if !already && count >= pointers => {
                    // Evict the lowest-numbered tracked sharer.
                    let victim = e.sharers.trailing_zeros() as usize;
                    e.sharers &= !(1u128 << victim);
                    e.sharers |= 1u128 << p;
                    evict_victim = Some(victim);
                }
                DirectoryKind::LimitedBroadcast { pointers } if !already && count >= pointers => {
                    // The new sharer is cached but untracked.
                    e.broadcast = true;
                }
                _ => {
                    e.sharers |= 1u128 << p;
                }
            }
        }
        // Phase 2: charge the overflow.
        if let Some(victim) = evict_victim {
            self.counters[p].directory_overflows += 1;
            if self.caches[victim].invalidate(line) {
                self.counters[victim].invalidations_received += 1;
                self.counters[p].invalidations_sent += 1;
                let h = self.hops(home, victim);
                self.counters[p].hop_traffic += h;
            }
        } else if matches!(directory_kind, DirectoryKind::LimitedBroadcast { .. })
            && self.directory.get(&line).is_some_and(|e| e.broadcast)
            && self
                .directory
                .get(&line)
                .is_some_and(|e| e.sharers & (1u128 << p) == 0)
        {
            self.counters[p].directory_overflows += 1;
        }
    }

    /// Capacity eviction: silently drop from the directory's sharer set
    /// (clean lines) or write back (owned lines).
    fn evict(&mut self, p: usize, line: u64) {
        if let Some(e) = self.directory.get_mut(&line) {
            e.sharers &= !(1u128 << p);
            if e.owner == Some(p as u32) {
                e.owner = None;
            }
        }
    }

    /// Consume the machine, yielding the traffic report.
    pub fn into_report(self, repetitions: u64) -> TrafficReport {
        TrafficReport {
            per_processor: self.counters,
            repetitions,
        }
    }

    /// Processor count.
    pub fn processors(&self) -> usize {
        self.config.processors
    }
}

/// One logical memory access of the loop body.
type Access = (u64, bool);

/// Generate processor `p`'s access trace for one repetition of the doall
/// body: for each assigned iteration, every right-hand-side reference
/// (reads; accumulates are write-like, Appendix A) then the left-hand
/// side.
fn build_trace(nest: &LoopNest, layout: &ArrayLayout, iters: &[IVec]) -> Vec<Access> {
    let mut trace = Vec::with_capacity(iters.len() * nest.body.len() * 2);
    // Pre-resolve array ids per statement.  The left-hand side is always
    // write-like (plain store or atomic accumulate); right-hand-side
    // accumulates are write-like too (Appendix A).
    type RhsRef<'a> = (usize, bool, &'a alp_loopir::ArrayRef);
    let resolved: Vec<(usize, Vec<RhsRef>)> = nest
        .body
        .iter()
        .map(|st| {
            let lhs_id = layout.array_id(&st.lhs.array).expect("laid out");
            let rhs: Vec<RhsRef> = st
                .rhs
                .iter()
                .map(|r| {
                    (
                        layout.array_id(&r.array).expect("laid out"),
                        r.kind.is_write_like(),
                        r,
                    )
                })
                .collect();
            (lhs_id, rhs)
        })
        .collect();
    for i in iters {
        for (st, (lhs_id, rhs)) in nest.body.iter().zip(&resolved) {
            for (id, w, r) in rhs {
                trace.push((layout.line(*id, &r.eval(i)), *w));
            }
            trace.push((layout.line(*lhs_id, &st.lhs.eval(i)), true));
        }
    }
    trace
}

/// Simulate a partitioned loop nest.
///
/// `assignment[p]` lists the iterations processor `p` executes (every
/// iteration of the nest must appear in exactly one processor's list for
/// the run to model the real execution; `alp-codegen` produces such
/// assignments).  Outer `doseq` loops replay the whole doall that many
/// times with warm caches, exposing coherence traffic (Fig. 9).
///
/// Traces are generated in parallel; the protocol then consumes them in
/// a deterministic round-robin interleaving (one access per processor
/// per round).
pub fn run_nest(
    nest: &LoopNest,
    assignment: &[Vec<IVec>],
    config: MachineConfig,
    home: &dyn HomeMap,
) -> TrafficReport {
    let layout = ArrayLayout::from_nest(nest);
    assert_eq!(
        assignment.len(),
        config.processors,
        "one iteration list per processor"
    );

    // Parallel trace generation (deterministic: output order is fixed by
    // the assignment, not by thread timing).
    let mut traces: Vec<Vec<Access>> = Vec::with_capacity(assignment.len());
    if assignment.len() > 1 {
        let layout_ref = &layout;
        let results: Vec<Vec<Access>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = assignment
                .iter()
                .map(|iters| scope.spawn(move |_| build_trace(nest, layout_ref, iters)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trace worker"))
                .collect()
        })
        .expect("crossbeam scope");
        traces.extend(results);
    } else {
        traces.extend(
            assignment
                .iter()
                .map(|iters| build_trace(nest, &layout, iters)),
        );
    }

    let reps = nest.seq_repetitions().max(1) as u64;
    let mut machine = Machine::new(config, home);
    for _ in 0..reps {
        let mut cursors = vec![0usize; traces.len()];
        loop {
            let mut progressed = false;
            for (p, trace) in traces.iter().enumerate() {
                if cursors[p] < trace.len() {
                    let (addr, write) = trace[cursors[p]];
                    machine.access(p, addr, write);
                    cursors[p] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    machine.into_report(reps)
}

/// Simulate a saved [`alp_plan::PartitionPlan`] directly.
///
/// The nest is reconstructed from the plan's embedded source (with its
/// fingerprint re-verified) and the per-processor iteration lists come
/// from the workspace's single tile enumerator
/// ([`alp_plan::rect_tiles`]) on the plan's processor grid, so the
/// simulated machine executes exactly the tiles the native runtime and
/// the generated code would.  `config.processors` is overridden to the
/// plan's tile count; the plan's mesh is used unless `config` already
/// sets one.
pub fn run_plan(
    plan: &alp_plan::PartitionPlan,
    mut config: MachineConfig,
    home: &dyn HomeMap,
) -> Result<TrafficReport, alp_plan::PlanError> {
    let nest = plan.nest()?;
    let assignment: Vec<Vec<IVec>> = match &plan.transform {
        None => {
            let (tiles, _) = alp_plan::rect_tiles(&nest, &plan.proc_grid)?;
            tiles
                .iter()
                .map(|tile| {
                    let mut pts = Vec::with_capacity(tile.volume() as usize);
                    tile.for_each_point(|i| pts.push(IVec(i.iter().map(|&x| x as i128).collect())));
                    pts
                })
                .collect()
        }
        Some(t) => {
            // Skewed plan: each processor owns the pre-image of one
            // clipped j-space tile.  The simulator consumes explicit
            // i-space point lists, so parallelepiped tiles need no
            // special handling past this mapping.
            let (tiles, _, domain) = alp_plan::transformed_tiles(&nest, t, &plan.proc_grid)?;
            tiles
                .iter()
                .map(|tile| {
                    let mut pts = Vec::new();
                    domain.for_each_point(tile, |j| {
                        let i = t.to_i(j).expect("clipped j-point maps back in range");
                        pts.push(IVec(i.iter().map(|&x| x as i128).collect()));
                    });
                    pts
                })
                .collect()
        }
    };
    config.processors = assignment.len();
    if config.mesh.is_none() {
        config.mesh = plan.mesh;
    }
    Ok(run_nest(&nest, &assignment, config, home))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BlockRowMajorHome, UniformHome};
    use alp_loopir::parse;

    /// Split iterations contiguously along the outermost loop.
    fn rows_assignment(nest: &LoopNest, p: usize) -> Vec<Vec<IVec>> {
        let pts = nest.iteration_points();
        let chunk = pts.len().div_ceil(p);
        let mut out: Vec<Vec<IVec>> = pts.chunks(chunk).map(|c| c.to_vec()).collect();
        out.resize(p, Vec::new());
        out
    }

    #[test]
    fn single_processor_cold_misses_equal_footprint() {
        let nest = parse("doall (i, 0, 9) { A[i] = B[i] + B[i+1]; }").unwrap();
        let assignment = vec![nest.iteration_points()];
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(1), &UniformHome);
        assert!(r.check_conservation());
        // Footprint: A 10 + B 11 = 21 cold misses; accesses 3 per iter.
        assert_eq!(r.total_accesses(), 30);
        assert_eq!(r.total_cold_misses(), 21);
        assert_eq!(r.total_coherence_misses(), 0);
        assert_eq!(r.total_invalidations(), 0);
    }

    #[test]
    fn repeat_reads_hit() {
        // Second repetition of a read-only sweep hits entirely.
        let nest = parse("doseq (t, 0, 1) { doall (i, 0, 9) { A[i] = B[i]; } }").unwrap();
        let assignment = vec![nest.iteration_points()];
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(1), &UniformHome);
        assert_eq!(r.repetitions, 2);
        assert_eq!(r.total_cold_misses(), 20);
        assert_eq!(r.total_coherence_misses(), 0);
        assert_eq!(r.total_misses(), 20, "second sweep all hits");
    }

    #[test]
    fn false_sharing_between_processors() {
        // Two processors write the same element: invalidations ping-pong.
        let nest = parse("doseq (t, 0, 4) { doall (i, 0, 1) { A[0] = A[0] + B[i]; } }").unwrap();
        // Both iterations touch A[0]; split them across 2 processors.
        let pts = nest.iteration_points();
        let assignment = vec![vec![pts[0].clone()], vec![pts[1].clone()]];
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(2), &UniformHome);
        assert!(r.check_conservation());
        assert!(
            r.total_invalidations() > 0,
            "writes to a shared line must invalidate"
        );
        assert!(r.total_coherence_misses() > 0);
    }

    #[test]
    fn disjoint_tiles_have_no_invalidations() {
        let nest = parse("doall (i, 0, 19) { A[i] = A[i]; }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        assert_eq!(r.total_invalidations(), 0);
        assert_eq!(r.total_cold_misses(), 20);
    }

    #[test]
    fn shared_boundary_reads_no_invalidations() {
        // Stencil reads overlap across tiles but nobody writes shared
        // lines: all extra traffic is cold misses.
        let nest = parse("doall (i, 0, 19) { A[i] = B[i] + B[i+1]; }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        assert_eq!(r.total_invalidations(), 0);
        // B boundary elements counted once per sharing processor:
        // footprint per tile = 5 (A) + 6 (B) = 11; 4 tiles -> 44.
        assert_eq!(r.total_cold_misses(), 44);
    }

    #[test]
    fn doseq_turns_boundary_into_coherence() {
        // With writes to A and re-reads of neighbours' A elements across
        // repetitions, boundary sharing becomes coherence traffic.
        let nest = parse("doseq (t, 0, 3) { doall (i, 0, 19) { A[i] = A[i+1]; } }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        assert!(r.check_conservation());
        assert!(r.total_coherence_misses() > 0);
        assert!(r.total_invalidations() > 0);
        // Coherence misses scale with repetitions (3 extra reps × ~2 per
        // boundary × 3 interior boundaries).
        assert!(r.total_coherence_misses() >= 9);
    }

    #[test]
    fn remote_local_accounting() {
        let nest = parse("doall (i, 0, 15) { A[i] = A[i]; }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let layout = ArrayLayout::from_nest(&nest);
        let home = BlockRowMajorHome::new(4, layout.total_lines());
        let cfg = MachineConfig {
            processors: 4,
            cache: CacheConfig::Infinite,
            mesh: Some((2, 2)),
            line_size: 1,
            directory: DirectoryKind::FullMap,
        };
        let r = run_nest(&nest, &assignment, cfg, &home);
        // Block distribution matches the contiguous assignment: all local.
        assert_eq!(r.total_remote_misses(), 0);
        assert_eq!(r.total_hop_traffic(), 0);

        // Shifted home map (each 4-line chunk homed one processor over):
        // everything lands remote.
        let scrambled = crate::layout::FnHome(|l| (((l / 4) + 1) % 4) as usize);
        let r2 = run_nest(
            &nest,
            &assignment,
            MachineConfig {
                processors: 4,
                cache: CacheConfig::Infinite,
                mesh: Some((2, 2)),
                line_size: 1,
                directory: DirectoryKind::FullMap,
            },
            &scrambled,
        );
        assert_eq!(r2.total_remote_misses(), 16);
        assert!(r2.total_hop_traffic() > 0);
    }

    #[test]
    fn finite_cache_capacity_misses() {
        // Tiny cache, repeated sweep: second pass misses on capacity.
        let nest = parse("doseq (t, 0, 1) { doall (i, 0, 63) { A[i] = A[i]; } }").unwrap();
        let assignment = vec![nest.iteration_points()];
        let cfg = MachineConfig {
            processors: 1,
            cache: CacheConfig::Finite { sets: 4, ways: 2 },
            mesh: None,
            line_size: 1,
            directory: DirectoryKind::FullMap,
        };
        let r = run_nest(&nest, &assignment, cfg, &UniformHome);
        assert!(r.total_capacity_misses() > 0);
        assert!(r.check_conservation());
    }

    #[test]
    fn determinism() {
        let nest = parse("doseq (t, 0, 2) { doall (i, 0, 31) { A[i] = A[i+1] + B[i]; } }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let r1 = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        let r2 = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        assert_eq!(r1.per_processor, r2.per_processor);
    }

    #[test]
    fn accumulate_counts_as_write() {
        let nest = parse("doall (i, 0, 9) { l$C[0] = l$C[0] + A[i]; }").unwrap();
        let assignment = rows_assignment(&nest, 2);
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(2), &UniformHome);
        // Both processors hammer C[0] with write-like accesses.
        assert!(r.total_invalidations() > 0);
    }

    #[test]
    #[should_panic(expected = "processors must be in")]
    fn processor_bound() {
        let _ = Machine::new(MachineConfig::uniform(129), &UniformHome);
    }

    #[test]
    fn larger_lines_exploit_spatial_locality() {
        // A sequential sweep of 64 contiguous elements: line size 4 cuts
        // cold misses 4x.
        let nest = parse("doall (i, 0, 63) { A[i] = A[i]; }").unwrap();
        let assignment = vec![nest.iteration_points()];
        let r1 = run_nest(&nest, &assignment, MachineConfig::uniform(1), &UniformHome);
        let r4 = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(1).with_line_size(4),
            &UniformHome,
        );
        assert_eq!(r1.total_cold_misses(), 64);
        assert_eq!(r4.total_cold_misses(), 16);
    }

    #[test]
    fn larger_lines_cause_false_sharing() {
        // Adjacent elements written by different processors: with unit
        // lines no invalidations; with tile-straddling lines the
        // boundary lines ping-pong across repetitions.
        let nest = parse("doseq (t, 0, 3) { doall (i, 0, 31) { A[i] = A[i]; } }").unwrap();
        let assignment = rows_assignment(&nest, 4);
        let unit = run_nest(&nest, &assignment, MachineConfig::uniform(4), &UniformHome);
        assert_eq!(unit.total_invalidations(), 0);
        let wide = run_nest(
            &nest,
            &assignment,
            MachineConfig::uniform(4).with_line_size(16),
            &UniformHome,
        );
        assert!(
            wide.total_invalidations() > 0,
            "tile-straddling lines must false-share"
        );
    }

    #[test]
    #[should_panic(expected = "line size must be positive")]
    fn line_size_positive() {
        let _ = MachineConfig::uniform(1).with_line_size(0);
    }

    /// A line read by all P processors then written once: the canonical
    /// limited-directory stressor.
    fn widely_shared_nest() -> LoopNest {
        // 8 processors each read B[0], then write their own A[i].
        parse("doseq (t, 0, 2) { doall (i, 0, 7) { A[i] = B[0] + A[i]; } }").unwrap()
    }

    fn one_iter_per_proc(nest: &LoopNest) -> Vec<Vec<IVec>> {
        nest.iteration_points()
            .into_iter()
            .map(|p| vec![p])
            .collect()
    }

    #[test]
    fn full_map_has_no_overflows() {
        let nest = widely_shared_nest();
        let a = one_iter_per_proc(&nest);
        let r = run_nest(&nest, &a, MachineConfig::uniform(8), &UniformHome);
        assert_eq!(r.total_directory_overflows(), 0);
        assert!(r.check_conservation());
    }

    #[test]
    fn limited_nb_evicts_readers() {
        let nest = widely_shared_nest();
        let a = one_iter_per_proc(&nest);
        let full = run_nest(&nest, &a, MachineConfig::uniform(8), &UniformHome);
        let nb = run_nest(
            &nest,
            &a,
            MachineConfig::uniform(8)
                .with_directory(DirectoryKind::LimitedNoBroadcast { pointers: 2 }),
            &UniformHome,
        );
        assert!(nb.check_conservation());
        assert!(nb.total_directory_overflows() > 0, "8 readers, 2 pointers");
        // Evictions force re-misses: more total misses than full-map.
        assert!(
            nb.total_misses() > full.total_misses(),
            "nb {} vs full {}",
            nb.total_misses(),
            full.total_misses()
        );
    }

    #[test]
    fn limited_broadcast_keeps_readers_but_overinvalidates() {
        // Make several processors WRITE the shared line so the broadcast
        // bit actually gets exercised by invalidations.
        let nest =
            parse("doseq (t, 0, 2) { doall (i, 0, 7) { l$C[0] = l$C[0] + A[i]; } }").unwrap();
        let a = one_iter_per_proc(&nest);
        let b = run_nest(
            &nest,
            &a,
            MachineConfig::uniform(8)
                .with_directory(DirectoryKind::LimitedBroadcast { pointers: 2 }),
            &UniformHome,
        );
        assert!(b.check_conservation());
        let full = run_nest(&nest, &a, MachineConfig::uniform(8), &UniformHome);
        assert!(full.check_conservation());
        // Same sharing pattern; broadcast never loses correctness.
        assert_eq!(b.total_accesses(), full.total_accesses());
    }

    #[test]
    fn limited_directory_identical_when_pointers_suffice() {
        // Only 2 sharers ever: a 4-pointer limited directory behaves
        // exactly like full-map.
        let nest = parse("doseq (t, 0, 2) { doall (i, 0, 1) { A[i] = B[0]; } }").unwrap();
        let a = one_iter_per_proc(&nest);
        let full = run_nest(&nest, &a, MachineConfig::uniform(2), &UniformHome);
        let lim = run_nest(
            &nest,
            &a,
            MachineConfig::uniform(2)
                .with_directory(DirectoryKind::LimitedNoBroadcast { pointers: 4 }),
            &UniformHome,
        );
        assert_eq!(full.per_processor, lim.per_processor);
        assert_eq!(lim.total_directory_overflows(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one directory pointer")]
    fn zero_pointers_rejected() {
        let _ = MachineConfig::uniform(2)
            .with_directory(DirectoryKind::LimitedNoBroadcast { pointers: 0 });
    }
}
