//! Traffic counters produced by a simulation run.

/// Classification of a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First-ever access by this processor.
    Cold,
    /// The line was here but another processor's write invalidated it.
    Coherence,
    /// The line was evicted for capacity/conflict reasons (finite caches
    /// only).
    Capacity,
}

/// Counters for one processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorCounters {
    /// Total memory accesses issued.
    pub accesses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cold misses.
    pub cold_misses: u64,
    /// Coherence misses.
    pub coherence_misses: u64,
    /// Capacity/conflict misses.
    pub capacity_misses: u64,
    /// Invalidation messages this processor's writes sent to other
    /// caches.
    pub invalidations_sent: u64,
    /// Invalidations received (lines it lost).
    pub invalidations_received: u64,
    /// Misses served by the local memory module.
    pub local_misses: u64,
    /// Misses served by a remote module (or requiring remote directory
    /// work).
    pub remote_misses: u64,
    /// Network distance accumulated by this processor's misses
    /// (2·hops(requester, home) per miss when a mesh is configured).
    pub hop_traffic: u64,
    /// Limited-directory pointer overflows charged to this processor's
    /// read misses (0 for a full-map directory).
    pub directory_overflows: u64,
}

impl ProcessorCounters {
    /// Total misses of all kinds.
    pub fn misses(&self) -> u64 {
        self.cold_misses + self.coherence_misses + self.capacity_misses
    }
}

/// Aggregated result of simulating one partitioned loop nest.
#[derive(Debug, Clone, Default)]
pub struct TrafficReport {
    /// Per-processor counters.
    pub per_processor: Vec<ProcessorCounters>,
    /// Number of outer sequential repetitions simulated.
    pub repetitions: u64,
}

impl TrafficReport {
    /// Sum a field across processors.
    fn sum(&self, f: impl Fn(&ProcessorCounters) -> u64) -> u64 {
        self.per_processor.iter().map(f).sum()
    }

    /// Total accesses.
    pub fn total_accesses(&self) -> u64 {
        self.sum(|c| c.accesses)
    }

    /// Total misses of all kinds.
    pub fn total_misses(&self) -> u64 {
        self.sum(ProcessorCounters::misses)
    }

    /// Total cold misses (≈ Σ cumulative footprints for infinite caches).
    pub fn total_cold_misses(&self) -> u64 {
        self.sum(|c| c.cold_misses)
    }

    /// Total coherence misses.
    pub fn total_coherence_misses(&self) -> u64 {
        self.sum(|c| c.coherence_misses)
    }

    /// Total capacity misses.
    pub fn total_capacity_misses(&self) -> u64 {
        self.sum(|c| c.capacity_misses)
    }

    /// Total invalidation messages.
    pub fn total_invalidations(&self) -> u64 {
        self.sum(|c| c.invalidations_sent)
    }

    /// Total remote-served misses.
    pub fn total_remote_misses(&self) -> u64 {
        self.sum(|c| c.remote_misses)
    }

    /// Total hop-weighted network traffic.
    pub fn total_hop_traffic(&self) -> u64 {
        self.sum(|c| c.hop_traffic)
    }

    /// Total limited-directory pointer overflows.
    pub fn total_directory_overflows(&self) -> u64 {
        self.sum(|c| c.directory_overflows)
    }

    /// Miss rate over all accesses.
    pub fn miss_rate(&self) -> f64 {
        let a = self.total_accesses();
        if a == 0 {
            0.0
        } else {
            self.total_misses() as f64 / a as f64
        }
    }

    /// Fraction of misses served remotely.
    pub fn remote_fraction(&self) -> f64 {
        let m = self.total_misses();
        if m == 0 {
            0.0
        } else {
            self.total_remote_misses() as f64 / m as f64
        }
    }

    /// Worst-per-processor misses (load imbalance indicator).
    pub fn max_processor_misses(&self) -> u64 {
        self.per_processor
            .iter()
            .map(ProcessorCounters::misses)
            .max()
            .unwrap_or(0)
    }

    /// Consistency invariant: hits + misses == accesses, per processor.
    pub fn check_conservation(&self) -> bool {
        self.per_processor
            .iter()
            .all(|c| c.hits + c.misses() == c.accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut r = TrafficReport::default();
        r.per_processor.push(ProcessorCounters {
            accesses: 10,
            hits: 7,
            cold_misses: 2,
            coherence_misses: 1,
            ..Default::default()
        });
        r.per_processor.push(ProcessorCounters {
            accesses: 5,
            hits: 5,
            ..Default::default()
        });
        assert_eq!(r.total_accesses(), 15);
        assert_eq!(r.total_misses(), 3);
        assert_eq!(r.total_cold_misses(), 2);
        assert!(r.check_conservation());
        assert!((r.miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(r.max_processor_misses(), 3);
    }

    #[test]
    fn conservation_detects_mismatch() {
        let mut r = TrafficReport::default();
        r.per_processor.push(ProcessorCounters {
            accesses: 10,
            hits: 2,
            cold_misses: 1,
            ..Default::default()
        });
        assert!(!r.check_conservation());
    }

    #[test]
    fn empty_report() {
        let r = TrafficReport::default();
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.remote_fraction(), 0.0);
        assert!(r.check_conservation());
    }
}
