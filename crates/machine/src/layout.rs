//! Array memory layout and home-node assignment.

use alp_linalg::IVec;
use alp_loopir::LoopNest;
use std::collections::HashMap;

/// Flattening of every array in a nest into dense line ids.
///
/// The simulator's cache/directory state is keyed by line id; with unit
/// cache lines (§2.2) a line is exactly one array element.
#[derive(Debug, Clone)]
pub struct ArrayLayout {
    arrays: Vec<ArrayInfo>,
    by_name: HashMap<String, usize>,
    total_lines: u64,
}

#[derive(Debug, Clone)]
struct ArrayInfo {
    name: String,
    /// Inclusive (lo, hi) extent per dimension.
    extents: Vec<(i128, i128)>,
    /// Base line id.
    base: u64,
    /// Row-major strides.
    strides: Vec<u64>,
}

impl ArrayLayout {
    /// Lay out every array touched by the nest, with extents implied by
    /// the loop bounds.
    pub fn from_nest(nest: &LoopNest) -> Self {
        let mut arrays = Vec::new();
        let mut by_name = HashMap::new();
        let mut base = 0u64;
        // array_extents is a HashMap; iterate arrays() for a stable order.
        let extents = nest.array_extents();
        for name in nest.arrays() {
            let ext = extents[&name].clone();
            let dims: Vec<u64> = ext
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1).max(0) as u64)
                .collect();
            let mut strides = vec![1u64; dims.len()];
            for k in (0..dims.len().saturating_sub(1)).rev() {
                strides[k] = strides[k + 1] * dims[k + 1];
            }
            let size: u64 = dims.iter().product::<u64>().max(1);
            by_name.insert(name.clone(), arrays.len());
            arrays.push(ArrayInfo {
                name,
                extents: ext,
                base,
                strides,
            });
            base += size;
        }
        ArrayLayout {
            arrays,
            by_name,
            total_lines: base,
        }
    }

    /// Total number of distinct lines (elements) across all arrays.
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    /// Array id for a name.
    pub fn array_id(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Array name for an id.
    pub fn array_name(&self, id: usize) -> &str {
        &self.arrays[id].name
    }

    /// Line id of an element.
    ///
    /// # Panics
    /// Panics if the subscript is outside the array's extent (would be an
    /// out-of-bounds access in the source program).
    pub fn line(&self, array_id: usize, index: &IVec) -> u64 {
        let a = &self.arrays[array_id];
        debug_assert_eq!(index.len(), a.extents.len(), "rank mismatch");
        let mut off = 0u64;
        for (k, (&x, &(lo, hi))) in index.0.iter().zip(&a.extents).enumerate() {
            assert!(
                lo <= x && x <= hi,
                "{}[{}] out of extent {:?}",
                a.name,
                index,
                a.extents
            );
            off += (x - lo) as u64 * a.strides[k];
        }
        a.base + off
    }

    /// Number of arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// The inclusive extents of an array.
    pub fn extents(&self, array_id: usize) -> &[(i128, i128)] {
        &self.arrays[array_id].extents
    }

    /// Base line id of an array (its first element, lowest corner).
    pub fn base(&self, array_id: usize) -> u64 {
        self.arrays[array_id].base
    }

    /// Row-major element strides of an array, one per dimension.
    ///
    /// Together with [`ArrayLayout::base`] and the extent lower bounds
    /// this lets callers (e.g. a runtime kernel compiler) fold the whole
    /// element-id computation `base + Σ_d stride_d·(x_d − lo_d)` into an
    /// affine form instead of calling [`ArrayLayout::line`] per access.
    pub fn strides(&self, array_id: usize) -> &[u64] {
        &self.arrays[array_id].strides
    }
}

/// Maps a line to the processor whose memory module stores it (the
/// "home" node in a distributed-memory machine).
pub trait HomeMap: Sync {
    /// Home processor of a line.
    fn home(&self, line: u64) -> usize;
}

/// Monolithic memory: every line is equidistant from every processor
/// (the uniform-access model of §2.2).  Home is processor 0 by
/// convention; remote/local accounting is meaningless and reported as
/// all-remote.
#[derive(Debug, Clone, Copy)]
pub struct UniformHome;

impl HomeMap for UniformHome {
    fn home(&self, _line: u64) -> usize {
        0
    }
}

/// Distribute lines in contiguous equal blocks across processors — the
/// default "dumb" distribution that data alignment improves on.
#[derive(Debug, Clone)]
pub struct BlockRowMajorHome {
    processors: usize,
    block: u64,
}

impl BlockRowMajorHome {
    /// Evenly split `total_lines` across `processors`.
    pub fn new(processors: usize, total_lines: u64) -> Self {
        let block = total_lines.div_ceil(processors as u64).max(1);
        BlockRowMajorHome { processors, block }
    }
}

impl HomeMap for BlockRowMajorHome {
    fn home(&self, line: u64) -> usize {
        ((line / self.block) as usize).min(self.processors - 1)
    }
}

/// A home map backed by an explicit closure (used by the alignment
/// experiments, which place array tiles on the processors that own the
/// matching loop tiles).
pub struct FnHome<F: Fn(u64) -> usize + Sync>(pub F);

impl<F: Fn(u64) -> usize + Sync> HomeMap for FnHome<F> {
    fn home(&self, line: u64) -> usize {
        (self.0)(line)
    }
}

/// Per-array description for [`TiledHome`]: how one array's elements are
/// tiled onto the **loop** processor grid.
#[derive(Debug, Clone)]
pub struct TiledArrayHome {
    /// First line id of the array.
    pub base: u64,
    /// Number of lines.
    pub size: u64,
    /// Inclusive extents per dimension (same as the layout's).
    pub extents: Vec<(i128, i128)>,
    /// Elements per data tile along each dimension (≥ 1).
    pub chunks: Vec<i128>,
    /// For each data dimension, the loop-grid dimension whose coordinate
    /// this data dimension determines (`None` = not distributed).  This
    /// handles transposed references (`A[j, i]`): data dim 0 can feed
    /// loop-grid dim 1.
    pub owner_dim: Vec<Option<usize>>,
}

/// Aligned data distribution (§4): each array is cut into tiles with the
/// same aspect ratio as the loop tiles, and the tile whose coordinates
/// match loop tile `(c₀, c₁, …)` lives on that loop tile's processor.
///
/// Lines outside every described array (or data dimensions with no
/// owner) default toward processor 0's coordinates.
#[derive(Debug, Clone)]
pub struct TiledHome {
    arrays: Vec<TiledArrayHome>,
    /// The loop-partition processor grid (row-major linearization).
    grid: Vec<i128>,
    processors: usize,
}

impl TiledHome {
    /// Build from the loop grid and per-array tilings.
    ///
    /// # Panics
    /// Panics if shapes disagree, a chunk is < 1, or an owner dimension
    /// is out of range.
    pub fn new(grid: Vec<i128>, arrays: Vec<TiledArrayHome>) -> Self {
        let processors: i128 = grid.iter().product();
        assert!(processors >= 1, "empty grid");
        for a in &arrays {
            assert_eq!(a.extents.len(), a.chunks.len(), "chunk rank mismatch");
            assert_eq!(a.extents.len(), a.owner_dim.len(), "owner rank mismatch");
            assert!(a.chunks.iter().all(|&c| c >= 1), "chunks must be >= 1");
            for od in a.owner_dim.iter().flatten() {
                assert!(*od < grid.len(), "owner dim out of range");
            }
        }
        TiledHome {
            arrays,
            processors: processors as usize,
            grid,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.processors
    }
}

impl HomeMap for TiledHome {
    fn home(&self, line: u64) -> usize {
        for a in &self.arrays {
            if line < a.base || line >= a.base + a.size {
                continue;
            }
            // Unflatten row-major.
            let mut rem = line - a.base;
            let dims: Vec<u64> = a
                .extents
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1).max(1) as u64)
                .collect();
            let mut idx = vec![0i128; dims.len()];
            for k in (0..dims.len()).rev() {
                idx[k] = (rem % dims[k]) as i128 + a.extents[k].0;
                rem /= dims[k];
            }
            // Loop-grid coordinates implied by the owned data dimensions.
            let mut coords = vec![0i128; self.grid.len()];
            for (k, &i) in idx.iter().enumerate() {
                if let Some(r) = a.owner_dim[k] {
                    let c = ((i - a.extents[k].0) / a.chunks[k]).min(self.grid[r] - 1);
                    coords[r] = c.max(0);
                }
            }
            let mut p = 0i128;
            for (r, &c) in coords.iter().enumerate() {
                p = p * self.grid[r] + c;
            }
            return (p as usize).min(self.processors - 1);
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn layout_flattening() {
        let nest = parse("doall (i, 0, 9) { doall (j, 0, 4) { A[i,j] = B[i+j]; } }").unwrap();
        let lay = ArrayLayout::from_nest(&nest);
        assert_eq!(lay.array_count(), 2);
        let a = lay.array_id("A").unwrap();
        let b = lay.array_id("B").unwrap();
        // A is 10x5 = 50 lines; B is i+j in 0..13 = 14 lines.
        assert_eq!(lay.total_lines(), 50 + 14);
        assert_eq!(lay.line(a, &IVec::new(&[0, 0])), 0);
        assert_eq!(lay.line(a, &IVec::new(&[0, 4])), 4);
        assert_eq!(lay.line(a, &IVec::new(&[1, 0])), 5);
        assert_eq!(lay.line(a, &IVec::new(&[9, 4])), 49);
        assert_eq!(lay.line(b, &IVec::new(&[0])), 50);
        assert_eq!(lay.line(b, &IVec::new(&[13])), 63);
    }

    #[test]
    fn layout_negative_extents() {
        let nest = parse("doall (i, -5, 5) { A[i-2] = A[i-2]; }").unwrap();
        let lay = ArrayLayout::from_nest(&nest);
        let a = lay.array_id("A").unwrap();
        assert_eq!(lay.extents(a), &[(-7, 3)]);
        assert_eq!(lay.line(a, &IVec::new(&[-7])), 0);
        assert_eq!(lay.line(a, &IVec::new(&[3])), 10);
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn out_of_bounds_panics() {
        let nest = parse("doall (i, 0, 9) { A[i] = A[i]; }").unwrap();
        let lay = ArrayLayout::from_nest(&nest);
        let a = lay.array_id("A").unwrap();
        lay.line(a, &IVec::new(&[11]));
    }

    #[test]
    fn block_home_covers_all_processors() {
        let h = BlockRowMajorHome::new(4, 100);
        let homes: Vec<usize> = (0..100).map(|l| h.home(l)).collect();
        assert_eq!(homes[0], 0);
        assert_eq!(homes[99], 3);
        for p in 0..4 {
            assert!(homes.contains(&p));
        }
        // Monotone non-decreasing.
        assert!(homes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_home() {
        assert_eq!(UniformHome.home(42), 0);
    }

    #[test]
    fn fn_home() {
        let h = FnHome(|l| (l % 3) as usize);
        assert_eq!(h.home(7), 1);
    }

    #[test]
    fn tiled_home_2d() {
        // 8x8 array, 2x2 grid, 4x4 tiles.
        let th = TiledHome::new(
            vec![2, 2],
            vec![TiledArrayHome {
                base: 0,
                size: 64,
                extents: vec![(0, 7), (0, 7)],
                chunks: vec![4, 4],
                owner_dim: vec![Some(0), Some(1)],
            }],
        );
        // (0,0) -> p0; (0,4) -> p1; (4,0) -> p2; (7,7) -> p3.
        assert_eq!(th.home(0), 0);
        assert_eq!(th.home(4), 1);
        assert_eq!(th.home(4 * 8), 2);
        assert_eq!(th.home(7 * 8 + 7), 3);
        // Out-of-array lines default to 0.
        assert_eq!(th.home(100), 0);
    }

    #[test]
    fn tiled_home_transposed_reference() {
        // Data dim 0 feeds loop-grid dim 1 and vice versa (A[j,i]).
        let th = TiledHome::new(
            vec![2, 2],
            vec![TiledArrayHome {
                base: 0,
                size: 64,
                extents: vec![(0, 7), (0, 7)],
                chunks: vec![4, 4],
                owner_dim: vec![Some(1), Some(0)],
            }],
        );
        // Element (0, 4): data dim 1 tile 1 -> loop coord 0 = 1 -> p2.
        assert_eq!(th.home(4), 2);
        // Element (4, 0): data dim 0 tile 1 -> loop coord 1 = 1 -> p1.
        assert_eq!(th.home(4 * 8), 1);
    }

    #[test]
    fn tiled_home_clamps_ragged_edge() {
        // 10 elements, chunks of 4, grid 3: element 9 is in tile 2 (not 3).
        let th = TiledHome::new(
            vec![3],
            vec![TiledArrayHome {
                base: 0,
                size: 10,
                extents: vec![(0, 9)],
                chunks: vec![4],
                owner_dim: vec![Some(0)],
            }],
        );
        assert_eq!(th.home(9), 2);
        assert_eq!(th.home(0), 0);
        assert_eq!(th.home(4), 1);
    }

    #[test]
    fn tiled_home_negative_extents() {
        let th = TiledHome::new(
            vec![2],
            vec![TiledArrayHome {
                base: 0,
                size: 10,
                extents: vec![(-5, 4)],
                chunks: vec![5],
                owner_dim: vec![Some(0)],
            }],
        );
        assert_eq!(th.home(0), 0); // element -5
        assert_eq!(th.home(5), 1); // element 0
    }

    #[test]
    fn tiled_home_undistributed_dim() {
        let th = TiledHome::new(
            vec![2, 2],
            vec![TiledArrayHome {
                base: 0,
                size: 16,
                extents: vec![(0, 3), (0, 3)],
                chunks: vec![2, 4],
                owner_dim: vec![Some(0), None],
            }],
        );
        // Only data dim 0 distributes: rows 0-1 -> loop coord (0,0) = p0,
        // rows 2-3 -> (1,0) = p2.
        assert_eq!(th.home(0), 0);
        assert_eq!(th.home(3), 0);
        assert_eq!(th.home(2 * 4), 2);
    }

    #[test]
    #[should_panic(expected = "owner dim out of range")]
    fn tiled_home_owner_bound() {
        TiledHome::new(
            vec![2],
            vec![TiledArrayHome {
                base: 0,
                size: 4,
                extents: vec![(0, 3)],
                chunks: vec![1],
                owner_dim: vec![Some(3)],
            }],
        );
    }
}
