//! Property tests: conservation laws of the coherence protocol on random
//! partitioned nests.

use alp_linalg::IVec;
use alp_loopir::{parse, LoopNest};
use alp_machine::{run_nest, DirectoryKind, MachineConfig, UniformHome};
use proptest::prelude::*;

/// A random small stencil nest (with a doseq wrapper half the time).
fn arb_nest() -> impl Strategy<Value = LoopNest> {
    (
        0i128..=2,     // doseq repetitions - 1 (0 = no wrapper)
        -2i128..=2,    // offset o1
        -2i128..=2,    // o2
        any::<bool>(), // second rhs ref?
    )
        .prop_map(|(reps, o1, o2, second)| {
            let body = format!(
                "A[i,j] = A[i{}{o1}, j{}{o2}]{};",
                if o1 >= 0 { "+" } else { "" },
                if o2 >= 0 { "+" } else { "" },
                if second { " + B[i,j]" } else { "" },
            );
            let inner = format!("doall (i, 2, 13) {{ doall (j, 2, 13) {{ {body} }} }}");
            let src = if reps > 0 {
                format!("doseq (t, 1, {}) {{ {inner} }}", reps + 1)
            } else {
                inner
            };
            parse(&src).expect("generated source parses")
        })
}

/// Split iterations across `p` processors round-robin (an adversarial,
/// locality-free assignment — good for stressing the protocol).
fn round_robin(nest: &LoopNest, p: usize) -> Vec<Vec<IVec>> {
    let mut out = vec![Vec::new(); p];
    for (k, i) in nest.iteration_points().into_iter().enumerate() {
        out[k % p].push(i);
    }
    out
}

/// Contiguous split.
fn contiguous(nest: &LoopNest, p: usize) -> Vec<Vec<IVec>> {
    let pts = nest.iteration_points();
    let chunk = pts.len().div_ceil(p);
    let mut out: Vec<Vec<IVec>> = pts.chunks(chunk).map(<[IVec]>::to_vec).collect();
    out.resize(p, Vec::new());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_bounds(nest in arb_nest(), p in 1usize..=6, rr in any::<bool>()) {
        let assignment = if rr { round_robin(&nest, p) } else { contiguous(&nest, p) };
        for dir in [
            DirectoryKind::FullMap,
            DirectoryKind::LimitedNoBroadcast { pointers: 2 },
            DirectoryKind::LimitedBroadcast { pointers: 2 },
        ] {
            let r = run_nest(
                &nest,
                &assignment,
                MachineConfig::uniform(p).with_directory(dir),
                &UniformHome,
            );
            // hits + misses == accesses, per processor.
            prop_assert!(r.check_conservation(), "{dir:?}");
            // Every access is either a hit or one of the three miss kinds.
            let accesses = nest.iteration_count()
                * nest.seq_repetitions()
                * nest.body.iter().map(|s| 1 + s.rhs.len()).sum::<usize>() as i128;
            prop_assert_eq!(r.total_accesses() as i128, accesses);
            // Invalidations sent == invalidations received.
            let sent: u64 = r.per_processor.iter().map(|c| c.invalidations_sent).sum();
            let recv: u64 = r.per_processor.iter().map(|c| c.invalidations_received).sum();
            prop_assert_eq!(sent, recv, "{:?}", dir);
            // With infinite caches, capacity misses are impossible.
            prop_assert_eq!(r.total_capacity_misses(), 0);
            // Full-map never overflows.
            if dir == DirectoryKind::FullMap {
                prop_assert_eq!(r.total_directory_overflows(), 0);
            }
        }
    }

    #[test]
    fn cold_misses_bounded_by_footprint_times_p(nest in arb_nest(), p in 1usize..=6) {
        let assignment = contiguous(&nest, p);
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(p), &UniformHome);
        // Each processor cold-misses each distinct element at most once.
        let total_elems: i128 = nest
            .array_extents()
            .values()
            .map(|e| e.iter().map(|&(lo, hi)| hi - lo + 1).product::<i128>())
            .sum();
        prop_assert!(r.total_cold_misses() as i128 <= total_elems * p as i128);
        // And at least the union of data touched (every element touched
        // once somewhere).
        prop_assert!(r.total_cold_misses() as i128 >= 1);
    }

    #[test]
    fn single_processor_never_invalidates(nest in arb_nest()) {
        let assignment = vec![nest.iteration_points()];
        let r = run_nest(&nest, &assignment, MachineConfig::uniform(1), &UniformHome);
        prop_assert_eq!(r.total_invalidations(), 0);
        prop_assert_eq!(r.total_coherence_misses(), 0);
        // Second and later repetitions hit entirely.
        let unique: u64 = r.total_cold_misses();
        prop_assert_eq!(r.total_misses(), unique);
    }

    #[test]
    fn line_size_monotonicity_single_proc(nest in arb_nest()) {
        // For one processor, larger lines can only reduce (or keep) cold
        // misses: every line fetch covers at least as many elements.
        let assignment = vec![nest.iteration_points()];
        let mut prev = u64::MAX;
        for ls in [1u64, 2, 4, 8] {
            let r = run_nest(
                &nest,
                &assignment,
                MachineConfig::uniform(1).with_line_size(ls),
                &UniformHome,
            );
            prop_assert!(r.total_cold_misses() <= prev,
                "line {ls}: {} > previous {prev}", r.total_cold_misses());
            prev = r.total_cold_misses();
        }
    }
}
