//! Content-addressed memoization of partition plans.
//!
//! Planning a nest is the expensive end of the pipeline (legality
//! analysis, reference classification, exhaustive tile-shape search).
//! [`PlanCache`] memoizes finished [`PartitionPlan`]s keyed by the
//! nest's structural fingerprint plus the machine parameters, so
//! re-compiling the same nest — common in the bench sweeps and in any
//! driver that compiles a program repeatedly — is a hash lookup.
//!
//! Plans are held behind [`Arc`], so a hit costs one reference-count
//! bump and hands out the same immutable artifact to every consumer.
//! Eviction is least-recently-used with a fixed capacity; hit, miss,
//! and eviction counters are exposed through [`CacheStats`] for the
//! bench harness.

use crate::{PartitionPlan, PlanError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a cached plan is keyed by: the structural nest fingerprint plus
/// every compilation parameter that can change the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural fingerprint of the nest ([`crate::fingerprint()`]).
    pub fingerprint: u64,
    /// Processor count the plan targets.
    pub processors: i128,
    /// Optional 2-D mesh shape.
    pub mesh: Option<(usize, usize)>,
    /// Whether legality analysis ran (checked and unchecked plans for
    /// the same nest must not alias).
    pub checked: bool,
    /// Whether a calibrated latency model drove the tile-shape choice
    /// (calibrated and analytic plans for the same nest must not
    /// alias).
    pub calibrated: bool,
    /// Whether the plan partitions a transformed (skewed) space —
    /// skewed and rectangular plans for the same nest must not alias.
    pub skewed: bool,
    /// Whether the plan carries an embedded certificate (certified and
    /// uncertified plans for the same nest must not alias: the
    /// certificate changes the artifact bytes and widens the client's
    /// retry policy).
    pub certified: bool,
}

/// Hit/miss/eviction counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the planner.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<PartitionPlan>,
    last_used: u64,
}

/// Interior hit/miss/eviction counters.  Atomic so a [`CacheStats`]
/// snapshot can be taken through `&PlanCache` at any time — concurrent
/// server handlers export stats without exclusive access (the counters
/// are monotonic, so a torn multi-field read is still a valid
/// point-in-time view of each counter).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// An LRU cache of finished partition plans.
pub struct PlanCache {
    map: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    stats: Counters,
}

impl PlanCache {
    /// Default capacity used by the compiler and CLI.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: Counters::default(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of plans this cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of every cached entry, most-recently-used last.  The
    /// durable store uses this to compact a live cache into a fresh
    /// journal segment without holding the lock across I/O.
    pub fn entries(&self) -> Vec<(PlanKey, Arc<PartitionPlan>)> {
        let mut all: Vec<(&PlanKey, &Entry)> = self.map.iter().collect();
        all.sort_by_key(|(_, e)| e.last_used);
        all.into_iter()
            .map(|(k, e)| (*k, Arc::clone(&e.plan)))
            .collect()
    }

    /// A point-in-time snapshot of the cumulative counters.  Needs only
    /// `&self`: the counters are atomic, so concurrent readers (e.g. a
    /// server's stats endpoint) never block a lookup.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }

    /// Look up a plan, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<PartitionPlan>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](PlanCache::get) but without touching the hit/miss
    /// counters (recency is still refreshed).  The sharded cache uses
    /// this so its own per-request accounting (hit / miss / coalesced)
    /// stays the single source of truth and a coalesced waiter is never
    /// double-counted as a miss.
    pub fn peek(&mut self, key: &PlanKey) -> Option<Arc<PartitionPlan>> {
        self.tick += 1;
        self.map.get_mut(key).map(|e| {
            e.last_used = self.tick;
            Arc::clone(&e.plan)
        })
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<PartitionPlan>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.map.insert(
            key,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Memoize: return the cached plan for `key`, or build one with
    /// `make`, cache it, and return it.  A failed build caches nothing.
    pub fn get_or_try_insert_with(
        &mut self,
        key: PlanKey,
        make: impl FnOnce() -> Result<PartitionPlan, PlanError>,
    ) -> Result<Arc<PartitionPlan>, PlanError> {
        if let Some(plan) = self.get(&key) {
            return Ok(plan);
        }
        let plan = Arc::new(make()?);
        self.insert(key, Arc::clone(&plan));
        Ok(plan)
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LegalityVerdict;
    use alp_loopir::parse;

    fn key(fp: u64) -> PlanKey {
        PlanKey {
            fingerprint: fp,
            processors: 16,
            mesh: None,
            checked: true,
            calibrated: false,
            skewed: false,
            certified: false,
        }
    }

    fn plan(trip: i128) -> PartitionPlan {
        let nest = parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
        PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
    }

    #[test]
    fn memoizes_and_counts() {
        let mut cache = PlanCache::new(8);
        let mut built = 0;
        for _ in 0..3 {
            let p = cache
                .get_or_try_insert_with(key(1), || {
                    built += 1;
                    Ok(plan(63))
                })
                .unwrap();
            assert_eq!(p.tiles(), 4);
        }
        assert_eq!(built, 1, "planner ran once");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_params_do_not_alias() {
        let mut cache = PlanCache::new(8);
        cache.insert(key(1), Arc::new(plan(63)));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache
            .get(&PlanKey {
                checked: false,
                ..key(1)
            })
            .is_none());
        assert!(cache
            .get(&PlanKey {
                mesh: Some((2, 2)),
                ..key(1)
            })
            .is_none());
        assert!(cache
            .get(&PlanKey {
                calibrated: true,
                ..key(1)
            })
            .is_none());
        assert!(cache
            .get(&PlanKey {
                skewed: true,
                ..key(1)
            })
            .is_none());
        assert!(cache
            .get(&PlanKey {
                certified: true,
                ..key(1)
            })
            .is_none());
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn stats_snapshot_needs_only_a_shared_reference() {
        let mut cache = PlanCache::new(4);
        cache.insert(key(1), Arc::new(plan(63)));
        cache.get(&key(1));
        cache.get(&key(2));
        // Read through &PlanCache while another shared borrow is live —
        // what a concurrent stats exporter does.
        let shared: &PlanCache = &cache;
        let a = shared.stats();
        let b = shared.stats();
        assert_eq!(a, b);
        assert_eq!((a.hits, a.misses), (1, 1));
    }

    #[test]
    fn peek_refreshes_recency_without_counting() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), Arc::new(plan(63)));
        cache.insert(key(2), Arc::new(plan(127)));
        assert!(cache.peek(&key(1)).is_some());
        assert!(cache.peek(&key(9)).is_none());
        assert_eq!(cache.stats(), CacheStats::default(), "peek never counts");
        // The peek refreshed key 1, so key 2 is now the LRU victim.
        cache.insert(key(3), Arc::new(plan(255)));
        assert!(cache.peek(&key(2)).is_none());
        assert!(cache.peek(&key(1)).is_some());
    }

    #[test]
    fn lru_eviction() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), Arc::new(plan(63)));
        cache.insert(key(2), Arc::new(plan(127)));
        cache.get(&key(1)); // refresh 1; 2 becomes LRU
        cache.insert(key(3), Arc::new(plan(255)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn failed_build_not_cached() {
        let mut cache = PlanCache::new(2);
        let r = cache.get_or_try_insert_with(key(9), || Err(PlanError::Infeasible("boom".into())));
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later successful build fills the slot.
        cache
            .get_or_try_insert_with(key(9), || Ok(plan(63)))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }
}
