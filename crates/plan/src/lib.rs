//! # alp-plan — the partitioning decision as a first-class artifact
//!
//! Every layer of the pipeline used to trade in loose tuples of
//! `(RectPartition, Report, …)`; this crate makes the decision itself
//! the currency.  A [`PartitionPlan`] bundles
//!
//! * a **structural fingerprint** of the nest (stable FNV-1a over a
//!   canonically-renamed rendering — invariant under loop-index
//!   renaming, stable across platforms and Rust versions),
//! * the chosen **rectangular partition** (processor grid and tile
//!   extents) with the optimizer's Theorem-4 objective value,
//! * the predicted **Eq.-2 cumulative footprints** per uniformly
//!   intersecting reference class,
//! * the **legality verdict** and **provenance** (processor count,
//!   mesh, optimizer name),
//! * the nest's **canonical source**, so a plan file alone suffices to
//!   re-execute or re-simulate the computation.
//!
//! Plans serialize to a versioned JSON schema ([`json`]) with a
//! hand-rolled, float-free codec whose output is byte-deterministic —
//! the golden-snapshot tests diff the exact bytes.  [`PlanCache`]
//! memoizes plans by `(fingerprint, processors, mesh, checked)` with
//! hit/miss/eviction counters, and [`rect_tiles`] is the single
//! rectangular tile enumerator every consumer (codegen, runtime,
//! machine simulation) shares.

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod json;
mod plan;
pub mod shard;
pub mod store;
pub mod tiles;
pub mod transform;

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use fingerprint::{canonical_source, fingerprint, fingerprint_hex, fnv1a64};
pub use json::{Json, JsonError};
pub use plan::{
    Certificate, ChosenBy, ClassFootprint, LatencyCoefficients, LegalityVerdict, PartitionPlan,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use shard::{Fetched, ShardOccupancy, ShardedCacheStats, ShardedPlanCache};
pub use store::{PlanStore, RecoveryReport, StoreConfig, StoredEntry};
pub use tiles::{rect_tiles, IterBox};
pub use transform::{
    skewed_candidates, transformed_tiles, SkewedCandidate, Transform, TransformedDomain,
};

/// Everything that can go wrong building, encoding, or decoding a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A tile grid that does not fit the nest (wrong rank, non-positive
    /// extent, or overflow).
    BadGrid(String),
    /// The plan file is not well-formed JSON (includes truncation).
    Json(JsonError),
    /// The plan file declares a schema version this build cannot read.
    UnsupportedVersion {
        /// Version found in the file.
        found: i128,
        /// Newest version this build understands.
        supported: u32,
    },
    /// Well-formed JSON that does not match the plan schema.
    Schema(String),
    /// The embedded source no longer matches the recorded fingerprint.
    FingerprintMismatch {
        /// Fingerprint recorded in the plan.
        expected: String,
        /// Fingerprint of the embedded source.
        found: String,
    },
    /// The nest cannot be partitioned as requested.
    Infeasible(String),
    /// The plan's embedded certificate block is malformed, truncated,
    /// or inconsistent with the plan it is attached to.  Kept separate
    /// from [`Schema`](PlanError::Schema) so tampered certificates map
    /// to the stable `ALP0011` diagnostic code.
    Certificate(String),
    /// The plan's embedded transform block is invalid: not a square
    /// unimodular matrix (det ±1), wrong rank for the nest, or bound to
    /// a different fingerprint.  Kept separate from
    /// [`Schema`](PlanError::Schema) so tampered transforms map to the
    /// stable `ALP0013` diagnostic code.
    Transform(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadGrid(msg) => write!(f, "bad tile grid: {msg}"),
            PlanError::Json(e) => write!(f, "plan is not valid JSON: {e}"),
            PlanError::UnsupportedVersion { found, supported } => write!(
                f,
                "plan schema version {found} is not supported (this build reads version \
                 {supported}); re-emit the plan with `alp-cli plan --emit`"
            ),
            PlanError::Schema(msg) => write!(f, "plan does not match the schema: {msg}"),
            PlanError::FingerprintMismatch { expected, found } => write!(
                f,
                "plan fingerprint {expected} does not match its embedded source \
                 (which hashes to {found}); the plan file was edited or corrupted"
            ),
            PlanError::Infeasible(msg) => write!(f, "cannot plan nest: {msg}"),
            PlanError::Certificate(msg) => write!(f, "invalid plan certificate: {msg}"),
            PlanError::Transform(msg) => write!(f, "invalid plan transform: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for PlanError {
    fn from(e: JsonError) -> Self {
        PlanError::Json(e)
    }
}
