//! The ONE rectangular tile enumerator of the workspace.
//!
//! Every consumer of a rectangular partition — `alp-codegen`'s
//! iteration-to-processor assignment, `alp-runtime`'s native executor,
//! `alp-machine`'s simulator driver — derives its tiles from this
//! module, so "which iterations does processor `t` own?" has exactly one
//! answer: the same ceiling-division chunking, the same row-major
//! tile→processor numbering, and the same clamping at the upper
//! boundary.  Empty boundary tiles are preserved to keep the numbering
//! aligned with the processor grid.

use crate::PlanError;
use alp_loopir::LoopNest;

/// An axis-aligned box of iterations, inclusive on both ends per
/// dimension.  Empty when any `lo > hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterBox {
    /// Inclusive lower corner.
    pub lo: Vec<i64>,
    /// Inclusive upper corner.
    pub hi: Vec<i64>,
}

impl IterBox {
    /// Number of iterations in the box (0 when empty).
    pub fn volume(&self) -> u64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| if h < l { 0 } else { (h - l + 1) as u64 })
            .product()
    }

    /// True when the box contains no iterations.
    pub fn is_empty(&self) -> bool {
        self.volume() == 0
    }

    /// Visit every iteration in row-major order (outermost dimension
    /// slowest), reusing one scratch vector.
    pub fn for_each_point(&self, mut f: impl FnMut(&[i64])) {
        self.try_for_each_point(|p| {
            f(p);
            true
        });
    }

    /// Like [`for_each_point`](IterBox::for_each_point), but stops as
    /// soon as `f` returns `false` (e.g. on a cooperative cancellation
    /// poll).  Returns `true` when every point was visited, `false`
    /// when the walk was stopped early.
    pub fn try_for_each_point(&self, mut f: impl FnMut(&[i64]) -> bool) -> bool {
        if self.is_empty() {
            return true;
        }
        let l = self.lo.len();
        let mut i = self.lo.clone();
        loop {
            if !f(&i) {
                return false;
            }
            let mut k = l;
            loop {
                if k == 0 {
                    return true;
                }
                k -= 1;
                i[k] += 1;
                if i[k] <= self.hi[k] {
                    break;
                }
                i[k] = self.lo[k];
            }
        }
    }
}

/// Split the nest's parallel iteration space into `Π grid` rectangular
/// tiles, one per virtual processor, row-major over the grid.
///
/// Returns the tiles and the per-dimension chunk sizes (the tile
/// extents λ of interior tiles plus one, in the paper's terms).
pub fn rect_tiles(nest: &LoopNest, grid: &[i128]) -> Result<(Vec<IterBox>, Vec<i128>), PlanError> {
    if grid.len() != nest.depth() {
        return Err(PlanError::BadGrid(format!(
            "grid has {} dims, nest has {} parallel loops",
            grid.len(),
            nest.depth()
        )));
    }
    if grid.iter().any(|&g| g <= 0) {
        return Err(PlanError::BadGrid(format!(
            "grid extents must be positive, got {grid:?}"
        )));
    }
    let chunks: Vec<i128> = nest
        .loops
        .iter()
        .zip(grid)
        .map(|(l, &g)| (l.trip_count() + g - 1) / g)
        .collect();

    let tiles_total: i128 = grid.iter().product();
    let tiles_total = usize::try_from(tiles_total)
        .map_err(|_| PlanError::BadGrid(format!("grid too large: {grid:?}")))?;

    let to_i64 = |v: i128, what: &str| -> Result<i64, PlanError> {
        i64::try_from(v).map_err(|_| PlanError::BadGrid(format!("{what} {v} overflows i64")))
    };

    let mut tiles = Vec::with_capacity(tiles_total);
    let dims = grid.len();
    let mut coord = vec![0i128; dims];
    for _ in 0..tiles_total {
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for (k, l) in nest.loops.iter().enumerate() {
            let tile_lo = l.lower + coord[k] * chunks[k];
            let tile_hi = (tile_lo + chunks[k] - 1).min(l.upper);
            lo.push(to_i64(tile_lo, "tile bound")?);
            hi.push(to_i64(tile_hi, "tile bound")?);
        }
        tiles.push(IterBox { lo, hi });
        // Row-major increment over the grid (last dim fastest).
        let mut k = dims;
        while k > 0 {
            k -= 1;
            coord[k] += 1;
            if coord[k] < grid[k] {
                break;
            }
            coord[k] = 0;
        }
    }
    Ok((tiles, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// The partition invariant of the single enumerator: one tile per
    /// grid cell, and the tiles disjointly cover the iteration space.
    fn assert_disjoint_cover(nest: &LoopNest, grid: &[i128]) {
        let (tiles, _) = rect_tiles(nest, grid).unwrap();
        let expected: i128 = grid.iter().product();
        assert_eq!(tiles.len() as i128, expected, "tile count == Π grid");
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        for t in &tiles {
            t.for_each_point(|p| {
                assert!(seen.insert(p.to_vec()), "iteration {p:?} covered twice");
            });
        }
        assert_eq!(seen.len() as i128, nest.iteration_count(), "exact cover");
        let volume: u64 = tiles.iter().map(IterBox::volume).sum();
        assert_eq!(volume as i128, nest.iteration_count());
    }

    #[test]
    fn disjoint_cover_ragged_2d() {
        // 7×5 space on a 2×3 grid: boundary tiles shrink.
        let nest = parse("doall (i, 0, 6) { doall (j, 10, 14) { A[i, j] = A[i, j]; } }").unwrap();
        let (_, chunks) = rect_tiles(&nest, &[2, 3]).unwrap();
        assert_eq!(chunks, vec![4, 2]);
        assert_disjoint_cover(&nest, &[2, 3]);
    }

    #[test]
    fn empty_boundary_tiles_preserved() {
        // 3 iterations on 4 processors: chunk 1, tile 3 is empty.
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        let (tiles, _) = rect_tiles(&nest, &[4]).unwrap();
        assert_eq!(tiles.len(), 4);
        assert!(tiles[3].is_empty());
        assert_disjoint_cover(&nest, &[4]);
    }

    #[test]
    fn row_major_numbering() {
        let nest = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[i,j] = A[i,j]; } }").unwrap();
        let (tiles, _) = rect_tiles(&nest, &[2, 2]).unwrap();
        // Tile 1 is (rows 0-1, cols 2-3): the j coordinate moves fastest.
        assert_eq!(tiles[1].lo, vec![0, 2]);
        assert_eq!(tiles[2].lo, vec![2, 0]);
    }

    #[test]
    fn grid_dim_mismatch_rejected() {
        let nest = parse("doall (i, 0, 2) { A[i] = A[i]; }").unwrap();
        assert!(rect_tiles(&nest, &[2, 2]).is_err());
        assert!(rect_tiles(&nest, &[0]).is_err());
    }

    #[test]
    fn for_each_point_row_major_within_tile() {
        let b = IterBox {
            lo: vec![1, 5],
            hi: vec![2, 6],
        };
        let mut pts = Vec::new();
        b.for_each_point(|p| pts.push(p.to_vec()));
        assert_eq!(pts, vec![[1, 5], [1, 6], [2, 5], [2, 6]]);
    }

    #[test]
    fn try_for_each_point_stops_early() {
        let b = IterBox {
            lo: vec![0, 0],
            hi: vec![9, 9],
        };
        let mut seen = 0u64;
        let completed = b.try_for_each_point(|_| {
            seen += 1;
            seen < 7
        });
        assert!(!completed);
        assert_eq!(seen, 7);
        // An uninterrupted walk reports completion, as does an empty box.
        assert!(b.try_for_each_point(|_| true));
        let empty = IterBox {
            lo: vec![1],
            hi: vec![0],
        };
        assert!(empty.try_for_each_point(|_| false));
    }

    proptest! {
        #[test]
        fn tiles_always_disjoint_cover(
            ni in 1i128..=9, nj in 1i128..=9,
            gi in 1i128..=4, gj in 1i128..=4,
        ) {
            let nest = parse(&format!(
                "doall (i, 0, {}) {{ doall (j, 0, {}) {{ A[i,j] = A[i,j]; }} }}",
                ni - 1, nj - 1
            )).unwrap();
            assert_disjoint_cover(&nest, &[gi, gj]);
        }
    }
}
