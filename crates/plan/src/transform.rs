//! Unimodular loop transforms: skewed parallelepiped tiles executed as
//! rectangular tiles over a transformed iteration space.
//!
//! The paper's hyperparallelepiped tiles `(H, γ, λ)` with `H ≠ I`
//! (§3.7, Examples 2 and 10) are parallelograms in the original
//! iteration space.  Rather than teach every downstream layer to clip
//! and walk slanted boxes, we apply a **unimodular change of basis**:
//! with row-vector convention `j = i·U` (and the exact integer inverse
//! `i = j·V`, `V = U⁻¹`, which exists because `det U = ±1`), a tile
//! whose edges are the scaled basis vectors `λ_k·B_k` becomes the
//! axis-aligned box with extents `λ_k` in `j`-space when `U = B⁻¹`.
//!
//! The price of the rotation is that the *domain* — the image of the
//! original rectangular bounds — is no longer rectangular: it is the
//! polyhedron `{j : lo_d ≤ (j·V)_d ≤ hi_d}`.  [`TransformedDomain`]
//! owns that polyhedron: its bounding box (which the tile enumerator
//! chunks exactly like [`rect_tiles`](crate::rect_tiles) chunks the
//! original space), membership tests, exact row enumeration with
//! per-row clipped trip bounds (each constraint resolves to an exact
//! integer interval at the deepest `j`-level where it has a nonzero
//! coefficient), and exact point counting.  Runtime execution and
//! certificate re-proving both walk rows through this one enumerator,
//! so "which transformed iterations does tile `t` own?" has exactly
//! one answer.

use crate::fingerprint::fingerprint_hex;
use crate::tiles::IterBox;
use crate::PlanError;
use alp_linalg::IMat;
use alp_loopir::LoopNest;
use alp_partition::{para_candidates, ParaSearchConfig};

/// A unimodular change of loop basis, bound to the structural
/// fingerprint of the nest it was derived for (like a
/// [`Certificate`](crate::Certificate), a transform cannot be grafted
/// onto a different nest).
///
/// Row-vector convention throughout: transformed coordinates are
/// `j = i·U`, original coordinates are `i = j·V` with `V = U⁻¹` exact
/// and integral.  The inverse is computed once at construction and
/// carried alongside, so consumers never re-invert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transform {
    u: IMat,
    v: IMat,
    fingerprint: String,
}

impl Transform {
    /// Wrap a unimodular matrix as a transform.  Rejects non-square,
    /// singular, and non-unimodular (|det| ≠ 1) matrices with a
    /// [`PlanError::Transform`] diagnostic.
    pub fn new(u: IMat, fingerprint: String) -> Result<Transform, PlanError> {
        if !u.is_square() || u.rows() == 0 {
            return Err(PlanError::Transform(format!(
                "transform matrix must be square and nonempty, got {}x{}",
                u.rows(),
                u.cols()
            )));
        }
        let det = u.det().map_err(|e| {
            PlanError::Transform(format!("transform matrix has no determinant: {e}"))
        })?;
        if det == 0 {
            return Err(PlanError::Transform(
                "transform matrix is singular (det 0), so it has no inverse".into(),
            ));
        }
        if det != 1 && det != -1 {
            return Err(PlanError::Transform(format!(
                "transform matrix has det {det}; a loop transform must be \
                 unimodular (det ±1) so its inverse stays integral"
            )));
        }
        let v = u
            .unimodular_inverse()
            .map_err(|e| PlanError::Transform(format!("transform matrix does not invert: {e}")))?;
        Ok(Transform { u, v, fingerprint })
    }

    /// Build the transform that maps tiles with edge directions given by
    /// the rows of `basis` to axis-aligned boxes: `U = basis⁻¹`, so an
    /// edge `λ_k·B_k` becomes `λ_k·e_k` in `j`-space.
    pub fn from_basis(basis: &IMat, nest: &LoopNest) -> Result<Transform, PlanError> {
        let u = basis.unimodular_inverse().map_err(|e| {
            PlanError::Transform(format!("tile basis {basis} is not unimodular: {e}"))
        })?;
        Transform::new(u, fingerprint_hex(nest))
    }

    /// The forward matrix `U` (`j = i·U`).
    pub fn u(&self) -> &IMat {
        &self.u
    }

    /// The exact inverse `V = U⁻¹` (`i = j·V`); its rows are the tile
    /// edge directions in the original space.
    pub fn v(&self) -> &IMat {
        &self.v
    }

    /// Fingerprint of the nest the transform was derived for.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Rank of the transform (must equal the nest depth).
    pub fn depth(&self) -> usize {
        self.u.rows()
    }

    /// True when the transform is the identity — the "skewed" plan is
    /// really rectangular.
    pub fn is_identity(&self) -> bool {
        self.u == IMat::identity(self.u.rows())
    }

    /// Map an original point to transformed coordinates (`j = i·U`).
    pub fn to_j(&self, i: &[i64]) -> Option<Vec<i64>> {
        map_point(&self.u, i)
    }

    /// Map a transformed point back (`i = j·V`).
    pub fn to_i(&self, j: &[i64]) -> Option<Vec<i64>> {
        map_point(&self.v, j)
    }

    /// The image of the nest's rectangular bounds in `j`-space.
    pub fn domain(&self, nest: &LoopNest) -> Result<TransformedDomain, PlanError> {
        let n = self.depth();
        if n != nest.depth() {
            return Err(PlanError::Transform(format!(
                "transform rank {} does not match nest depth {}",
                n,
                nest.depth()
            )));
        }
        let lo: Vec<i128> = nest.loops.iter().map(|l| l.lower).collect();
        let hi: Vec<i128> = nest.loops.iter().map(|l| l.upper).collect();
        // Interval arithmetic over `j_k = Σ_d i_d·U[d][k]`: each term's
        // range is the min/max of the two corner products.
        let mut jlo = Vec::with_capacity(n);
        let mut jhi = Vec::with_capacity(n);
        for k in 0..n {
            let mut min = 0i128;
            let mut max = 0i128;
            for d in 0..n {
                let a = lo[d] * self.u[(d, k)];
                let b = hi[d] * self.u[(d, k)];
                min += a.min(b);
                max += a.max(b);
            }
            jlo.push(to_i64(min, "transformed bound")?);
            jhi.push(to_i64(max, "transformed bound")?);
        }
        // Each original-bound constraint pair is enforced at the deepest
        // j-level with a nonzero coefficient; V is nonsingular, so every
        // column has one.
        let level = (0..n)
            .map(|d| {
                (0..n)
                    .rfind(|&k| self.v[(k, d)] != 0)
                    .expect("V is nonsingular")
            })
            .collect();
        Ok(TransformedDomain {
            v: self.v.clone(),
            lo,
            hi,
            jlo,
            jhi,
            level,
        })
    }
}

/// `x·M` with overflow checking, narrowing back to `i64`.
fn map_point(m: &IMat, x: &[i64]) -> Option<Vec<i64>> {
    if x.len() != m.rows() {
        return None;
    }
    (0..m.cols())
        .map(|k| {
            let s: i128 = x
                .iter()
                .enumerate()
                .map(|(d, &xd)| xd as i128 * m[(d, k)])
                .sum();
            i64::try_from(s).ok()
        })
        .collect()
}

fn to_i64(v: i128, what: &str) -> Result<i64, PlanError> {
    i64::try_from(v).map_err(|_| PlanError::Transform(format!("{what} {v} overflows i64")))
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

/// The image of a nest's rectangular iteration space under a
/// [`Transform`]: the polyhedron `{j : lo_d ≤ (j·V)_d ≤ hi_d ∀d}`,
/// together with its axis-aligned bounding box in `j`-space.
///
/// Row enumeration is **exact**: every constraint is applied as an
/// integer interval at the deepest `j`-level where its `V` coefficient
/// is nonzero (all deeper coefficients are zero there, so the partial
/// sum is final and the division bound is tight).  At the innermost
/// level all constraints are resolved, so each emitted row
/// `(j₀,…,j_{n−2}, jlo..=jhi)` contains exactly the in-domain points —
/// the executor's pointer-bump inner loop needs no per-point test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedDomain {
    v: IMat,
    lo: Vec<i128>,
    hi: Vec<i128>,
    jlo: Vec<i64>,
    jhi: Vec<i64>,
    /// For each original dimension `d`, the deepest level `k` with
    /// `V[k][d] ≠ 0` — where the `d` bounds pair resolves exactly.
    level: Vec<usize>,
}

impl TransformedDomain {
    /// Inclusive lower corner of the `j`-space bounding box.
    pub fn jlo(&self) -> &[i64] {
        &self.jlo
    }

    /// Inclusive upper corner of the `j`-space bounding box.
    pub fn jhi(&self) -> &[i64] {
        &self.jhi
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.v.rows()
    }

    /// True when `j` maps back inside the original bounds.
    pub fn contains(&self, j: &[i64]) -> bool {
        (0..self.v.cols()).all(|d| {
            let s: i128 = j
                .iter()
                .enumerate()
                .map(|(k, &jk)| jk as i128 * self.v[(k, d)])
                .sum();
            self.lo[d] <= s && s <= self.hi[d]
        })
    }

    /// Visit every maximal in-domain row inside `bx` in row-major order.
    /// `f` receives a scratch coordinate vector with the prefix
    /// `j₀..j_{n−2}` filled in (the last entry is unspecified) and the
    /// inclusive innermost range `lo..=hi`; returning `false` stops the
    /// walk early.  Returns `true` when every row was visited.
    pub fn for_each_row(
        &self,
        bx: &IterBox,
        mut f: impl FnMut(&mut [i64], i64, i64) -> bool,
    ) -> bool {
        let n = self.depth();
        debug_assert_eq!(bx.lo.len(), n);
        let mut j = vec![0i64; n];
        self.walk(bx, 0, &mut j, &mut f)
    }

    fn walk<F: FnMut(&mut [i64], i64, i64) -> bool>(
        &self,
        bx: &IterBox,
        level: usize,
        j: &mut Vec<i64>,
        f: &mut F,
    ) -> bool {
        let n = self.depth();
        let mut lo = bx.lo[level] as i128;
        let mut hi = bx.hi[level] as i128;
        for d in 0..n {
            if self.level[d] != level {
                continue;
            }
            let c = self.v[(level, d)];
            let s: i128 = (0..level).map(|k| j[k] as i128 * self.v[(k, d)]).sum();
            let a = self.lo[d] - s;
            let b = self.hi[d] - s;
            let (l2, h2) = if c > 0 {
                (div_ceil(a, c), div_floor(b, c))
            } else {
                (div_ceil(b, c), div_floor(a, c))
            };
            lo = lo.max(l2);
            hi = hi.min(h2);
        }
        if lo > hi {
            return true;
        }
        // Clipped within the box's i64 bounds, so the narrowing is safe.
        let (lo, hi) = (lo as i64, hi as i64);
        if level + 1 == n {
            return f(j, lo, hi);
        }
        for x in lo..=hi {
            j[level] = x;
            if !self.walk(bx, level + 1, j, f) {
                return false;
            }
        }
        true
    }

    /// Visit every in-domain point inside `bx` in row-major order.
    pub fn for_each_point(&self, bx: &IterBox, mut f: impl FnMut(&[i64])) {
        self.for_each_row(bx, |j, lo, hi| {
            let n = j.len();
            for x in lo..=hi {
                j[n - 1] = x;
                f(j);
            }
            true
        });
    }

    /// Exact number of in-domain points inside `bx`.
    pub fn count(&self, bx: &IterBox) -> i128 {
        let mut total: i128 = 0;
        self.for_each_row(bx, |_, lo, hi| {
            total += (hi - lo + 1) as i128;
            true
        });
        total
    }
}

/// Split the transformed iteration space into `Π grid` rectangular
/// `j`-space tiles, one per virtual processor, row-major over the grid
/// — the skewed counterpart of [`rect_tiles`](crate::rect_tiles), with
/// the same ceiling-division chunking and the same clamping of
/// boundary tiles, applied to the domain's bounding box.
///
/// Returns the tiles and per-dimension chunk sizes.  Tiles are boxes
/// of the *bounding box*; consumers intersect them with the domain via
/// [`TransformedDomain::for_each_row`] (a tile wholly outside the
/// domain simply enumerates zero rows).
pub fn transformed_tiles(
    nest: &LoopNest,
    transform: &Transform,
    grid: &[i128],
) -> Result<(Vec<IterBox>, Vec<i128>, TransformedDomain), PlanError> {
    if grid.len() != nest.depth() {
        return Err(PlanError::BadGrid(format!(
            "grid has {} dims, nest has {} parallel loops",
            grid.len(),
            nest.depth()
        )));
    }
    if grid.iter().any(|&g| g <= 0) {
        return Err(PlanError::BadGrid(format!(
            "grid extents must be positive, got {grid:?}"
        )));
    }
    let domain = transform.domain(nest)?;
    let dims = grid.len();
    let chunks: Vec<i128> = (0..dims)
        .map(|k| {
            let extent = (domain.jhi[k] as i128 - domain.jlo[k] as i128 + 1).max(0);
            (extent + grid[k] - 1) / grid[k]
        })
        .collect();

    let tiles_total: i128 = grid.iter().product();
    let tiles_total = usize::try_from(tiles_total)
        .map_err(|_| PlanError::BadGrid(format!("grid too large: {grid:?}")))?;

    let mut tiles = Vec::with_capacity(tiles_total);
    let mut coord = vec![0i128; dims];
    for _ in 0..tiles_total {
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for k in 0..dims {
            let tile_lo = domain.jlo[k] as i128 + coord[k] * chunks[k];
            let tile_hi = (tile_lo + chunks[k] - 1).min(domain.jhi[k] as i128);
            lo.push(to_i64(tile_lo, "tile bound").map_err(bad_grid)?);
            hi.push(to_i64(tile_hi, "tile bound").map_err(bad_grid)?);
        }
        tiles.push(IterBox { lo, hi });
        let mut k = dims;
        while k > 0 {
            k -= 1;
            coord[k] += 1;
            if coord[k] < grid[k] {
                break;
            }
            coord[k] = 0;
        }
    }
    Ok((tiles, chunks, domain))
}

fn bad_grid(e: PlanError) -> PlanError {
    match e {
        PlanError::Transform(msg) => PlanError::BadGrid(msg),
        other => other,
    }
}

/// One skewed-tile candidate `(H, γ, λ)` realized as a transform plus a
/// rectangular `j`-space grid — the currency of the plan-level skewed
/// candidate enumeration and of the calibrated hybrid re-ranking.
#[derive(Debug, Clone)]
pub struct SkewedCandidate {
    /// The unimodular transform (`U = basis⁻¹`).
    pub transform: Transform,
    /// Tile edge directions in the original space (rows).
    pub basis: IMat,
    /// The optimizer's integer edge lengths λ.
    pub lambda: Vec<i128>,
    /// Virtual processors along each `j`-space dimension.
    pub grid: Vec<i128>,
    /// Interior tile extent per `j`-space dimension (inclusive
    /// convention: chunk − 1).
    pub tile_extents: Vec<i128>,
    /// The Theorem-2 modeled cumulative footprint of one tile.
    pub analytic_cost: i128,
}

/// Enumerate skewed-tile candidates for `p` processors: every
/// non-identity unimodular basis from the §3.6 parallelepiped search,
/// with its Lagrange-optimal integer edge lengths, realized as a
/// `j`-space processor grid.  Ordered by the analytic Theorem-2 cost,
/// best first.  The identity basis is excluded — that candidate class
/// is exactly the rectangular planner's, which owns it.
pub fn skewed_candidates(
    nest: &LoopNest,
    p: i128,
    config: &ParaSearchConfig,
) -> Result<Vec<SkewedCandidate>, PlanError> {
    if nest.depth() == 0 {
        return Err(PlanError::Infeasible("nest has no parallel loops".into()));
    }
    if p < 1 {
        return Err(PlanError::Infeasible("need at least one processor".into()));
    }
    let identity = IMat::identity(nest.depth());
    let mut out = Vec::new();
    for cand in para_candidates(nest, p, config) {
        if cand.basis == identity {
            continue;
        }
        let transform = match Transform::from_basis(&cand.basis, nest) {
            Ok(t) => t,
            Err(_) => continue, // basis not invertible over ℤ: not a tiling we can execute
        };
        let domain = transform.domain(nest)?;
        let mut grid = Vec::with_capacity(nest.depth());
        let mut tile_extents = Vec::with_capacity(nest.depth());
        for k in 0..nest.depth() {
            let extent = (domain.jhi()[k] as i128 - domain.jlo()[k] as i128 + 1).max(1);
            let lam = cand.lambda[k].max(1);
            let g = ((extent + lam - 1) / lam).max(1);
            let chunk = (extent + g - 1) / g;
            grid.push(g);
            tile_extents.push(chunk - 1);
        }
        out.push(SkewedCandidate {
            transform,
            basis: cand.basis,
            lambda: cand.lambda,
            grid,
            tile_extents,
            analytic_cost: cand.cost,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn example2() -> LoopNest {
        parse(
            "doall (i, 101, 612) { doall (j, 1, 512) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap()
    }

    fn skew2() -> IMat {
        // U = [[1,1],[0,1]]: j = (i, i+j).
        IMat::from_rows(&[&[1, 1], &[0, 1]])
    }

    #[test]
    fn transform_validates_unimodularity() {
        let nest = example2();
        let fp = fingerprint_hex(&nest);
        assert!(Transform::new(skew2(), fp.clone()).is_ok());
        let singular = IMat::from_rows(&[&[1, 1], &[1, 1]]);
        let err = Transform::new(singular, fp.clone()).unwrap_err();
        assert!(matches!(err, PlanError::Transform(_)), "{err}");
        assert!(err.to_string().contains("singular"), "{err}");
        let det2 = IMat::from_rows(&[&[2, 0], &[0, 1]]);
        let err = Transform::new(det2, fp.clone()).unwrap_err();
        assert!(err.to_string().contains("det 2"), "{err}");
        let nonsquare = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]);
        assert!(Transform::new(nonsquare, fp).is_err());
    }

    #[test]
    fn to_j_to_i_round_trip() {
        let nest = example2();
        let t = Transform::new(skew2(), fingerprint_hex(&nest)).unwrap();
        let i = [101, 1];
        let j = t.to_j(&i).unwrap();
        assert_eq!(j, vec![101, 102]);
        assert_eq!(t.to_i(&j).unwrap(), i.to_vec());
        assert!(!t.is_identity());
        assert!(Transform::new(IMat::identity(2), t.fingerprint().into())
            .unwrap()
            .is_identity());
    }

    #[test]
    fn from_basis_maps_tile_edges_to_axes() {
        // Basis rows (1,1) and (1,0): the diagonal skew direction plus
        // a completing axis (det −1).  An edge λ·(1,1) must land on
        // λ·e₀.
        let nest = example2();
        let basis = IMat::from_rows(&[&[1, 1], &[1, 0]]);
        let t = Transform::from_basis(&basis, &nest).unwrap();
        assert_eq!(t.v(), &basis);
        let p0 = t.to_j(&[200, 50]).unwrap();
        let p1 = t.to_j(&[203, 53]).unwrap(); // +3·(1,1)
        assert_eq!(p1[0] - p0[0], 3);
        assert_eq!(p1[1] - p0[1], 0);
    }

    /// The partition invariant for transformed tiles: exact disjoint
    /// cover of the original space through the bijection.
    fn assert_transformed_cover(nest: &LoopNest, t: &Transform, grid: &[i128]) {
        let (tiles, _, domain) = transformed_tiles(nest, t, grid).unwrap();
        assert_eq!(tiles.len() as i128, grid.iter().product::<i128>());
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        let mut count: i128 = 0;
        for bx in &tiles {
            domain.for_each_point(bx, |j| {
                assert!(domain.contains(j), "emitted point outside domain");
                let i = t.to_i(j).expect("maps back");
                for (d, l) in nest.loops.iter().enumerate() {
                    assert!(
                        (i[d] as i128) >= l.lower && (i[d] as i128) <= l.upper,
                        "point {i:?} outside original bounds"
                    );
                }
                assert!(seen.insert(i), "original point covered twice");
                count += 1;
            });
            assert_eq!(domain.count(bx), {
                let mut c = 0i128;
                domain.for_each_point(bx, |_| c += 1);
                c
            });
        }
        assert_eq!(count, nest.iteration_count(), "exact cover");
    }

    #[test]
    fn transformed_tiles_cover_example2_exactly() {
        let nest = example2();
        let basis = IMat::from_rows(&[&[1, 1], &[1, 0]]);
        let t = Transform::from_basis(&basis, &nest).unwrap();
        assert_transformed_cover(&nest, &t, &[4, 4]);
        assert_transformed_cover(&nest, &t, &[1, 16]);
    }

    #[test]
    fn row_enumeration_is_clipped_exactly() {
        // A triangular j-space domain: U=[[1,1],[0,1]] on a small square.
        let nest = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[i,j] = A[i,j]; } }").unwrap();
        let t = Transform::new(skew2(), fingerprint_hex(&nest)).unwrap();
        let domain = t.domain(&nest).unwrap();
        // j0 = i ∈ [0,3]; j1 = i + j ∈ [0,6].
        assert_eq!(domain.jlo(), &[0, 0]);
        assert_eq!(domain.jhi(), &[3, 6]);
        let whole = IterBox {
            lo: domain.jlo().to_vec(),
            hi: domain.jhi().to_vec(),
        };
        let mut rows = Vec::new();
        domain.for_each_row(&whole, |j, lo, hi| {
            rows.push((j[0], lo, hi));
            true
        });
        // Row at j0 = x is j1 ∈ [x, x+3]: the clip follows the skew.
        assert_eq!(rows, vec![(0, 0, 3), (1, 1, 4), (2, 2, 5), (3, 3, 6)]);
        assert_eq!(domain.count(&whole), nest.iteration_count());
        // Early stop propagates.
        let mut visited = 0;
        let done = domain.for_each_row(&whole, |_, _, _| {
            visited += 1;
            visited < 2
        });
        assert!(!done);
        assert_eq!(visited, 2);
    }

    #[test]
    fn skewed_candidates_exclude_identity_and_rank_by_cost() {
        // Example 3's nest: the translation (1,3) rewards a skewed basis.
        let nest = parse(
            "doall (i, 1, 64) { doall (j, 1, 64) {
               A[i,j] = B[i,j] + B[i+1,j+3];
             } }",
        )
        .unwrap();
        let cands = skewed_candidates(&nest, 16, &ParaSearchConfig::default()).unwrap();
        assert!(!cands.is_empty());
        let identity = IMat::identity(2);
        for c in &cands {
            assert_ne!(c.basis, identity);
            assert!(!c.transform.is_identity());
            assert_eq!(c.grid.len(), 2);
            assert!(c.grid.iter().all(|&g| g >= 1));
            assert!(c.tile_extents.iter().all(|&e| e >= 0));
        }
        for w in cands.windows(2) {
            assert!(w[0].analytic_cost <= w[1].analytic_cost);
        }
        // The winner still tiles the space exactly.
        let best = &cands[0];
        assert_transformed_cover(&nest, &best.transform, &best.grid);
    }

    proptest! {
        /// Random small unimodular transforms over random 2-D nests:
        /// the transformed tiling is always an exact disjoint cover of
        /// the original iteration space (bijectivity + exact clipping).
        #[test]
        fn random_transform_tiles_always_cover(
            ni in 1i64..=7, nj in 1i64..=7,
            o0 in -3i64..=3, o1 in -3i64..=3,
            s in -2i128..=2, flip in proptest::bool::ANY,
            gi in 1i128..=3, gj in 1i128..=3,
        ) {
            let nest = parse(&format!(
                "doall (i, {}, {}) {{ doall (j, {}, {}) {{ A[i,j] = A[i,j]; }} }}",
                o0, o0 + ni - 1, o1, o1 + nj - 1
            )).unwrap();
            // [[1,s],[0,1]] (optionally row-swapped) is always unimodular.
            let u = if flip {
                IMat::from_rows(&[&[0, 1], &[1, s]])
            } else {
                IMat::from_rows(&[&[1, s], &[0, 1]])
            };
            let t = Transform::new(u, fingerprint_hex(&nest)).unwrap();
            assert_transformed_cover(&nest, &t, &[gi, gj]);
        }
    }
}
