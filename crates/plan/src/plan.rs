//! The [`PartitionPlan`] artifact and its versioned JSON schema.

use crate::fingerprint::fingerprint_hex;
use crate::json::{self, Json, ObjWriter};
use crate::transform::{SkewedCandidate, Transform};
use crate::PlanError;
use alp_footprint::{cumulative_footprint_general, cumulative_footprint_rect, CostModel, Tile};
use alp_linalg::{IMat, IVec, Rat};
use alp_loopir::LoopNest;
use alp_partition::{communication_free_normals, partition_rect, RectPartition};

/// Current plan schema version.  Bump when the JSON layout changes;
/// decoders refuse versions they do not understand (never panic).
///
/// Version history:
/// * **1** — the original schema.
/// * **2** — adds `chosen_by` (which ranking picked the partition) and
///   the optional `calibration` provenance block (fitted latency
///   coefficients as exact rationals).
/// * **3** — adds the optional `certificate` provenance block (the
///   `alp-certify` verdicts: coverage, write disjointness, in-bounds,
///   idempotence, bound to the plan's fingerprint).
/// * **4** — adds the optional `transform` block (a unimodular loop
///   transform `U`, bound to the plan's fingerprint): the plan's
///   `proc_grid`/`tile_extents` then describe the **transformed**
///   `j = i·U` space, where skewed parallelepiped tiles are
///   rectangular.
///
/// Decoding accepts [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`]; a
/// decoded plan remembers the version it was written with and re-encodes
/// under that same version, so pre-calibration and pre-certificate
/// plans stay byte-stable through a decode/encode round trip.  Plans
/// without a transform are written at version 3 — version 4's only
/// addition is the transform block, so emitting the lowest
/// representable version keeps older readers (and golden snapshots)
/// working.
pub const SCHEMA_VERSION: u32 = 4;

/// Version untransformed plans are written with (bumped to
/// [`SCHEMA_VERSION`] by [`PartitionPlan::with_transform`]).
const BASE_VERSION: u32 = 3;

/// Oldest plan schema version this build still decodes.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// What the legality analysis said about the nest when the plan was
/// made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegalityVerdict {
    /// The doall legality analysis ran and found no errors (`warnings`
    /// lints fired).
    Checked {
        /// Number of warning-severity lints.
        warnings: usize,
    },
    /// The analysis was skipped (`Compiler::unchecked`); the plan may
    /// describe a racy nest.
    Unchecked,
}

/// Which cost ranking picked the plan's partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChosenBy {
    /// The paper's analytic Theorem-4 footprint ranking (the default,
    /// and the only option before schema version 2).
    #[default]
    Analytic,
    /// A measured-latency hybrid ranking: the analytic candidate set
    /// re-ranked under fitted coefficients (see the plan's
    /// [`calibration`](PartitionPlan::calibration) block).
    Calibrated,
}

impl ChosenBy {
    fn as_str(self) -> &'static str {
        match self {
            ChosenBy::Analytic => "analytic",
            ChosenBy::Calibrated => "calibrated",
        }
    }
}

/// Fitted latency coefficients persisted as plan provenance: the hybrid
/// cost re-ranking tiles as
/// `a·tiles + b·lines + s·span + d·iters + c·reps` (all in
/// nanoseconds, stored as exact rationals so the codec stays
/// float-free and byte-deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyCoefficients {
    /// `a`: fixed overhead per tile visit (scheduling, startup).
    pub per_tile_ns: Rat,
    /// `b`: cost per distinct cache line in a tile's footprint.
    pub per_line_ns: Rat,
    /// `s`: cost per line of a tile's address *span* (the envelope
    /// between its lowest and highest touched line, which bounds how
    /// much reuse the hardware hierarchy can extract).
    pub per_span_line_ns: Rat,
    /// `d`: cost per loop iteration (compute).
    pub per_iter_ns: Rat,
    /// `c`: synchronization cost per sequential repetition (barrier).
    pub per_rep_ns: Rat,
    /// Number of measured tile samples the fit used.
    pub samples: u64,
}

/// The `alp-certify` verdicts embedded in a plan (schema ≥ 3): four
/// independently proven facts about the plan's tiling, bound to the
/// plan's structural fingerprint so a certificate cannot be grafted
/// onto a different nest.  The *semantics* (provers and the re-checker)
/// live in `alp-certify`; this crate only carries and serializes the
/// verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Fingerprint of the nest the certificate was issued for; must
    /// equal the plan's own fingerprint (enforced at decode).
    pub fingerprint: String,
    /// The tiles partition the iteration space with no gap or overlap.
    pub coverage: bool,
    /// Per array, write footprints of distinct tiles are disjoint —
    /// the fact that unlocks the executor's relaxed-store fast path.
    pub write_disjoint: bool,
    /// Every affine reference stays inside its array extents.
    pub in_bounds: bool,
    /// No read can observe any write: tiles are re-runnable (retry
    /// eligibility beyond the syntactic rule).
    pub idempotent: bool,
}

/// Predicted Eq.-2 cumulative footprint of one uniformly intersecting
/// class at the plan's tile shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFootprint {
    /// Array the class references.
    pub array: String,
    /// Number of member references.
    pub refs: usize,
    /// True when the class cannot influence the optimal tile shape.
    pub shape_invariant: bool,
    /// Theorem-4 cumulative footprint of one interior tile.
    pub footprint: Rat,
}

/// The canonical, serializable partitioning decision — the single
/// currency every pipeline layer consumes.
///
/// A plan bundles the structural fingerprint of the nest it was made
/// for, the chosen rectangular partition, the model's per-class
/// footprint predictions, the legality verdict, and provenance
/// (processor count, mesh, optimizer).  It serializes to a versioned
/// JSON schema ([`PartitionPlan::to_json_string`]) whose encoding is
/// byte-deterministic, and embeds the canonical nest source so a saved
/// plan is sufficient to re-execute the computation
/// ([`PartitionPlan::nest`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Schema version the plan was written with.
    pub schema_version: u32,
    /// Structural fingerprint of the nest (hex, invariant under loop
    /// index renaming).
    pub fingerprint: String,
    /// Processor count the partition targets.
    pub processors: i128,
    /// Optional 2-D mesh for placement/hop accounting.
    pub mesh: Option<(usize, usize)>,
    /// Legality verdict at plan time.
    pub legality: LegalityVerdict,
    /// Which optimizer chose the partition (provenance).
    pub optimizer: String,
    /// Which cost ranking picked the partition (schema ≥ 2; decoded
    /// v1 plans default to [`ChosenBy::Analytic`]).
    pub chosen_by: ChosenBy,
    /// Fitted latency coefficients behind a calibrated choice (absent
    /// on analytic plans and on plans written before schema 2).
    pub calibration: Option<LatencyCoefficients>,
    /// The `alp-certify` verdicts (absent on uncertified plans and on
    /// plans written before schema 3).
    pub certificate: Option<Certificate>,
    /// The unimodular loop transform behind a skewed plan (schema ≥ 4).
    /// When present, [`proc_grid`](PartitionPlan::proc_grid) and
    /// [`tile_extents`](PartitionPlan::tile_extents) describe the
    /// transformed `j = i·U` space.
    pub transform: Option<Transform>,
    /// Processors along each loop dimension.
    pub proc_grid: Vec<i128>,
    /// Interior tile extent λ per dimension (inclusive convention).
    pub tile_extents: Vec<i128>,
    /// Modeled cumulative footprint of one tile (the optimizer's
    /// objective value).
    pub cost: Rat,
    /// Bytes the nest's arrays occupy at execution time (8 bytes per
    /// f64 element), for pre-flight resource budgeting.  `None` when
    /// decoding a plan written before the field existed.
    pub store_bytes: Option<u64>,
    /// Per-class footprint predictions at the chosen tile shape.
    pub class_footprints: Vec<ClassFootprint>,
    /// Communication-free hyperplane normals, if any exist.
    pub comm_free_normals: Vec<IVec>,
    /// The nest in DSL form (round-trips through `alp_loopir::parse`).
    pub source: String,
}

impl PartitionPlan {
    /// Run the §4 planning phases on a nest: rectangular partitioning
    /// under the Theorem-4 cost model, per-class footprint prediction,
    /// and the communication-free check.  The caller supplies the
    /// legality verdict (the analysis lives a layer above this crate).
    pub fn build(
        nest: &LoopNest,
        processors: i128,
        mesh: Option<(usize, usize)>,
        legality: LegalityVerdict,
    ) -> Result<PartitionPlan, PlanError> {
        if nest.depth() == 0 {
            return Err(PlanError::Infeasible("nest has no parallel loops".into()));
        }
        if processors < 1 {
            return Err(PlanError::Infeasible("need at least one processor".into()));
        }
        let partition = partition_rect(nest, processors);
        Self::build_with_partition(
            nest,
            processors,
            mesh,
            legality,
            partition,
            "rect-exhaustive",
        )
    }

    /// [`build`](Self::build) with a caller-chosen partition and
    /// optimizer name — the hook a calibrated (or otherwise external)
    /// ranker uses to persist its decision with the same footprint
    /// predictions and provenance as the analytic path.
    pub fn build_with_partition(
        nest: &LoopNest,
        processors: i128,
        mesh: Option<(usize, usize)>,
        legality: LegalityVerdict,
        partition: RectPartition,
        optimizer: &str,
    ) -> Result<PartitionPlan, PlanError> {
        if nest.depth() == 0 {
            return Err(PlanError::Infeasible("nest has no parallel loops".into()));
        }
        if processors < 1 {
            return Err(PlanError::Infeasible("need at least one processor".into()));
        }
        if partition.proc_grid.len() != nest.depth() {
            return Err(PlanError::BadGrid(format!(
                "partition rank {} does not match nest depth {}",
                partition.proc_grid.len(),
                nest.depth()
            )));
        }
        let model = CostModel::from_nest(nest);
        let class_footprints = model
            .classes()
            .iter()
            .map(|cc| ClassFootprint {
                array: cc.class.array.clone(),
                refs: cc.class.len(),
                shape_invariant: cc.shape_invariant,
                footprint: cumulative_footprint_rect(&partition.tile_extents, &cc.class),
            })
            .collect();
        Ok(PartitionPlan {
            schema_version: BASE_VERSION,
            fingerprint: fingerprint_hex(nest),
            processors,
            mesh,
            legality,
            optimizer: optimizer.into(),
            chosen_by: ChosenBy::Analytic,
            calibration: None,
            certificate: None,
            transform: None,
            proc_grid: partition.proc_grid,
            tile_extents: partition.tile_extents,
            cost: partition.cost,
            store_bytes: Some(store_bytes(nest)),
            class_footprints,
            comm_free_normals: communication_free_normals(nest),
            source: nest.display(),
        })
    }

    /// Mark the plan as chosen by a calibrated hybrid ranking and
    /// persist the fitted coefficients as provenance.
    pub fn with_calibration(mut self, coefficients: LatencyCoefficients) -> Self {
        self.chosen_by = ChosenBy::Calibrated;
        self.calibration = Some(coefficients);
        self
    }

    /// Attach a certificate.  Bumps the plan to schema version 3 when
    /// necessary — older versions have no field to carry it, and a
    /// silently dropped certificate would defeat the tamper evidence.
    pub fn with_certificate(mut self, certificate: Certificate) -> Self {
        self.certificate = Some(certificate);
        self.schema_version = self.schema_version.max(3);
        self
    }

    /// Attach a unimodular transform, re-interpreting `proc_grid` and
    /// `tile_extents` in the transformed `j = i·U` space.  Bumps the
    /// plan to schema version 4 — older versions have no field to
    /// carry it, and a silently dropped transform would change which
    /// iterations each tile owns.
    pub fn with_transform(mut self, transform: Transform) -> Self {
        self.transform = Some(transform);
        self.schema_version = self.schema_version.max(SCHEMA_VERSION);
        self
    }

    /// Build a **skewed** plan from a [`SkewedCandidate`]: the §3.6
    /// parallelepiped tile realized as a rectangular grid over the
    /// transformed space, with per-class footprints predicted by the
    /// general (parallelepiped) Eq.-2 form at the candidate's actual
    /// chunk sizes.
    pub fn build_skewed(
        nest: &LoopNest,
        processors: i128,
        mesh: Option<(usize, usize)>,
        legality: LegalityVerdict,
        candidate: &SkewedCandidate,
        optimizer: &str,
    ) -> Result<PartitionPlan, PlanError> {
        if nest.depth() == 0 {
            return Err(PlanError::Infeasible("nest has no parallel loops".into()));
        }
        if processors < 1 {
            return Err(PlanError::Infeasible("need at least one processor".into()));
        }
        if candidate.grid.len() != nest.depth() {
            return Err(PlanError::BadGrid(format!(
                "candidate rank {} does not match nest depth {}",
                candidate.grid.len(),
                nest.depth()
            )));
        }
        // The tile actually executed: edge k is chunk_k · basis_k.
        let rows: Vec<IVec> = candidate
            .tile_extents
            .iter()
            .enumerate()
            .map(|(k, &e)| candidate.basis.row(k).scale(e + 1))
            .collect();
        let lmat = IMat::from_row_vecs(&rows);
        let model = CostModel::from_nest(nest);
        let tile = Tile::general(lmat.clone());
        let class_footprints = model
            .classes()
            .iter()
            .map(|cc| ClassFootprint {
                array: cc.class.array.clone(),
                refs: cc.class.len(),
                shape_invariant: cc.shape_invariant,
                footprint: Rat::int(cumulative_footprint_general(&tile, &cc.class)),
            })
            .collect();
        let cost = Rat::int(model.cost_general(&lmat));
        Ok(PartitionPlan {
            schema_version: SCHEMA_VERSION,
            fingerprint: fingerprint_hex(nest),
            processors,
            mesh,
            legality,
            optimizer: optimizer.into(),
            chosen_by: ChosenBy::Analytic,
            calibration: None,
            certificate: None,
            transform: Some(candidate.transform.clone()),
            proc_grid: candidate.grid.clone(),
            tile_extents: candidate.tile_extents.clone(),
            cost,
            store_bytes: Some(store_bytes(nest)),
            class_footprints,
            comm_free_normals: communication_free_normals(nest),
            source: nest.display(),
        })
    }

    /// The plan's partition in `alp-partition`'s type.
    pub fn rect_partition(&self) -> RectPartition {
        RectPartition {
            proc_grid: self.proc_grid.clone(),
            tile_extents: self.tile_extents.clone(),
            cost: self.cost,
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> i128 {
        self.proc_grid.iter().product()
    }

    /// Reconstruct the nest from the embedded source and verify it
    /// still matches the recorded fingerprint (integrity check against
    /// hand-edited plan files).
    pub fn nest(&self) -> Result<LoopNest, PlanError> {
        let nest = alp_loopir::parse(&self.source)
            .map_err(|e| PlanError::Schema(format!("embedded source does not parse: {e}")))?;
        let found = fingerprint_hex(&nest);
        if found != self.fingerprint {
            return Err(PlanError::FingerprintMismatch {
                expected: self.fingerprint.clone(),
                found,
            });
        }
        Ok(nest)
    }

    /// Encode as the versioned JSON schema.  Byte-deterministic: the
    /// same plan always yields the same text (golden-snapshot safe).
    pub fn to_json_string(&self) -> String {
        let classes = self
            .class_footprints
            .iter()
            .map(|c| {
                let mut s = String::new();
                ObjWriter::new()
                    .field("array", Json::Str(c.array.clone()))
                    .field("refs", Json::Int(c.refs as i128))
                    .field("shape_invariant", Json::Bool(c.shape_invariant))
                    .field("footprint", Json::Str(rat_str(&c.footprint)))
                    .render(&mut s, 2);
                s
            })
            .collect::<Vec<_>>();

        let mut out = String::new();
        out.push_str("{\n");
        push_field(&mut out, "alp-plan", Json::Int(self.schema_version as i128));
        push_field(&mut out, "fingerprint", Json::Str(self.fingerprint.clone()));
        push_field(&mut out, "processors", Json::Int(self.processors));
        push_field(
            &mut out,
            "mesh",
            match self.mesh {
                Some((w, h)) => Json::Arr(vec![Json::Int(w as i128), Json::Int(h as i128)]),
                None => Json::Null,
            },
        );
        let (checked, warnings) = match self.legality {
            LegalityVerdict::Checked { warnings } => (true, warnings as i128),
            LegalityVerdict::Unchecked => (false, 0),
        };
        out.push_str("  \"legality\": ");
        ObjWriter::new()
            .field("checked", Json::Bool(checked))
            .field("warnings", Json::Int(warnings))
            .render(&mut out, 1);
        out.push_str(",\n");
        push_field(&mut out, "optimizer", Json::Str(self.optimizer.clone()));
        // Schema-2 fields: a plan decoded from a version-1 file
        // re-encodes as version 1, without them, byte-stably.
        if self.schema_version >= 2 {
            push_field(
                &mut out,
                "chosen_by",
                Json::Str(self.chosen_by.as_str().into()),
            );
        }
        push_field(&mut out, "proc_grid", int_arr(&self.proc_grid));
        push_field(&mut out, "tile_extents", int_arr(&self.tile_extents));
        push_field(&mut out, "cost", Json::Str(rat_str(&self.cost)));
        if let Some(bytes) = self.store_bytes {
            push_field(&mut out, "store_bytes", Json::Int(bytes as i128));
        }
        if self.schema_version >= 2 {
            if let Some(c) = &self.calibration {
                out.push_str("  \"calibration\": ");
                ObjWriter::new()
                    .field("per_tile_ns", Json::Str(rat_str(&c.per_tile_ns)))
                    .field("per_line_ns", Json::Str(rat_str(&c.per_line_ns)))
                    .field("per_span_line_ns", Json::Str(rat_str(&c.per_span_line_ns)))
                    .field("per_iter_ns", Json::Str(rat_str(&c.per_iter_ns)))
                    .field("per_rep_ns", Json::Str(rat_str(&c.per_rep_ns)))
                    .field("samples", Json::Int(c.samples as i128))
                    .render(&mut out, 1);
                out.push_str(",\n");
            }
        }
        if self.schema_version >= 3 {
            if let Some(c) = &self.certificate {
                out.push_str("  \"certificate\": ");
                ObjWriter::new()
                    .field("fingerprint", Json::Str(c.fingerprint.clone()))
                    .field("coverage", Json::Bool(c.coverage))
                    .field("write_disjoint", Json::Bool(c.write_disjoint))
                    .field("in_bounds", Json::Bool(c.in_bounds))
                    .field("idempotent", Json::Bool(c.idempotent))
                    .render(&mut out, 1);
                out.push_str(",\n");
            }
        }
        if self.schema_version >= 4 {
            if let Some(t) = &self.transform {
                out.push_str("  \"transform\": ");
                ObjWriter::new()
                    .field("fingerprint", Json::Str(t.fingerprint().into()))
                    .field(
                        "u",
                        Json::Arr(t.u().row_vecs().iter().map(|r| int_arr(&r.0)).collect()),
                    )
                    .render(&mut out, 1);
                out.push_str(",\n");
            }
        }
        if classes.is_empty() {
            out.push_str("  \"class_footprints\": [],\n");
        } else {
            out.push_str("  \"class_footprints\": [\n");
            for (i, c) in classes.iter().enumerate() {
                out.push_str("    ");
                out.push_str(c);
                out.push_str(if i + 1 < classes.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ],\n");
        }
        push_field(
            &mut out,
            "comm_free_normals",
            Json::Arr(
                self.comm_free_normals
                    .iter()
                    .map(|v| int_arr(&v.0))
                    .collect(),
            ),
        );
        out.push_str("  \"source\": ");
        json::write_string(&mut out, &self.source);
        out.push_str("\n}\n");
        out
    }

    /// Decode a plan from JSON text.
    ///
    /// Fails with a diagnostic (never panics) on malformed or truncated
    /// JSON, an unknown schema version, or missing/mistyped fields.
    pub fn from_json_str(src: &str) -> Result<PartitionPlan, PlanError> {
        let v = json::parse(src).map_err(PlanError::Json)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::Schema("top level is not an object".into()));
        }
        let version = v
            .get("alp-plan")
            .and_then(Json::as_int)
            .ok_or_else(|| PlanError::Schema("missing `alp-plan` schema version field".into()))?;
        if version < MIN_SCHEMA_VERSION as i128 || version > SCHEMA_VERSION as i128 {
            return Err(PlanError::UnsupportedVersion {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        // Unreachable expect: range-checked against the u32 consts above.
        let schema_version = u32::try_from(version).expect("version fits u32");
        let fingerprint = str_field(&v, "fingerprint")?;
        let processors = int_field(&v, "processors")?;
        let mesh = match v.get("mesh") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) if items.len() == 2 => {
                let w = items[0]
                    .as_int()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| PlanError::Schema("mesh width is not a usize".into()))?;
                let h = items[1]
                    .as_int()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| PlanError::Schema("mesh height is not a usize".into()))?;
                Some((w, h))
            }
            Some(_) => return Err(PlanError::Schema("`mesh` must be null or [w, h]".into())),
        };
        let legality = {
            let l = v
                .get("legality")
                .ok_or_else(|| PlanError::Schema("missing `legality`".into()))?;
            let checked = l
                .get("checked")
                .and_then(Json::as_bool)
                .ok_or_else(|| PlanError::Schema("`legality.checked` must be a bool".into()))?;
            if checked {
                let warnings = l
                    .get("warnings")
                    .and_then(Json::as_int)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| {
                        PlanError::Schema("`legality.warnings` must be a count".into())
                    })?;
                LegalityVerdict::Checked { warnings }
            } else {
                LegalityVerdict::Unchecked
            }
        };
        let optimizer = str_field(&v, "optimizer")?;
        // Optional (schema ≥ 2): absent in version-1 plans.
        let chosen_by = match v.get("chosen_by") {
            None => ChosenBy::Analytic,
            Some(Json::Str(s)) if s == "analytic" => ChosenBy::Analytic,
            Some(Json::Str(s)) if s == "calibrated" => ChosenBy::Calibrated,
            Some(_) => {
                return Err(PlanError::Schema(
                    "`chosen_by` must be \"analytic\" or \"calibrated\"".into(),
                ))
            }
        };
        let calibration = match v.get("calibration") {
            None | Some(Json::Null) => None,
            Some(c @ Json::Obj(_)) => Some(LatencyCoefficients {
                per_tile_ns: parse_rat(&str_field(c, "per_tile_ns")?)?,
                per_line_ns: parse_rat(&str_field(c, "per_line_ns")?)?,
                per_span_line_ns: parse_rat(&str_field(c, "per_span_line_ns")?)?,
                per_iter_ns: parse_rat(&str_field(c, "per_iter_ns")?)?,
                per_rep_ns: parse_rat(&str_field(c, "per_rep_ns")?)?,
                samples: int_field(c, "samples")
                    .ok()
                    .and_then(|n| u64::try_from(n).ok())
                    .ok_or_else(|| {
                        PlanError::Schema("`calibration.samples` must be a count".into())
                    })?,
            }),
            Some(_) => {
                return Err(PlanError::Schema(
                    "`calibration` must be null or an object of coefficients".into(),
                ))
            }
        };
        let certificate = match v.get("certificate") {
            None | Some(Json::Null) => None,
            Some(c @ Json::Obj(_)) => {
                let bool_field = |key: &str| {
                    c.get(key).and_then(Json::as_bool).ok_or_else(|| {
                        PlanError::Certificate(format!(
                            "certificate block is missing or mistypes `{key}`"
                        ))
                    })
                };
                let cert = Certificate {
                    fingerprint: c
                        .get("fingerprint")
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| {
                            PlanError::Certificate(
                                "certificate block is missing or mistypes `fingerprint`".into(),
                            )
                        })?,
                    coverage: bool_field("coverage")?,
                    write_disjoint: bool_field("write_disjoint")?,
                    in_bounds: bool_field("in_bounds")?,
                    idempotent: bool_field("idempotent")?,
                };
                if cert.fingerprint != fingerprint {
                    return Err(PlanError::Certificate(format!(
                        "certificate was issued for fingerprint {} but the plan's \
                         fingerprint is {fingerprint}; re-certify with `alp-cli certify`",
                        cert.fingerprint
                    )));
                }
                Some(cert)
            }
            Some(_) => {
                return Err(PlanError::Certificate(
                    "certificate must be null or an object of proven facts".into(),
                ))
            }
        };
        let proc_grid = int_arr_field(&v, "proc_grid")?;
        let tile_extents = int_arr_field(&v, "tile_extents")?;
        if proc_grid.is_empty() || proc_grid.len() != tile_extents.len() {
            return Err(PlanError::Schema(format!(
                "proc_grid ({}) and tile_extents ({}) must be nonempty and equal length",
                proc_grid.len(),
                tile_extents.len()
            )));
        }
        let transform = match v.get("transform") {
            None | Some(Json::Null) => None,
            Some(t @ Json::Obj(_)) => {
                let fp = t
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        PlanError::Transform(
                            "transform block is missing or mistypes `fingerprint`".into(),
                        )
                    })?;
                let rows = t.get("u").and_then(Json::as_arr).ok_or_else(|| {
                    PlanError::Transform("transform block is missing or mistypes `u`".into())
                })?;
                let n = rows.len();
                let mut entries = Vec::with_capacity(n * n);
                for r in rows {
                    let row = r.as_arr().ok_or_else(|| {
                        PlanError::Transform("transform matrix row is not an array".into())
                    })?;
                    if row.len() != n {
                        return Err(PlanError::Transform(format!(
                            "transform matrix is not square: {n} rows but a row of {}",
                            row.len()
                        )));
                    }
                    for x in row {
                        entries.push(x.as_int().ok_or_else(|| {
                            PlanError::Transform("transform matrix entry is not an integer".into())
                        })?);
                    }
                }
                if n != proc_grid.len() {
                    return Err(PlanError::Transform(format!(
                        "transform rank {n} does not match the plan's {}-dimensional grid",
                        proc_grid.len()
                    )));
                }
                if fp != fingerprint {
                    return Err(PlanError::Transform(format!(
                        "transform was derived for fingerprint {fp} but the plan's \
                         fingerprint is {fingerprint}; re-plan with `alp-cli plan --skewed`"
                    )));
                }
                Some(Transform::new(IMat::from_vec(n, n, entries), fp)?)
            }
            Some(_) => {
                return Err(PlanError::Transform(
                    "transform must be null or an object".into(),
                ))
            }
        };
        let cost = parse_rat(&str_field(&v, "cost")?)?;
        // Optional: absent in plans written before the field existed.
        let store_bytes =
            match v.get("store_bytes") {
                None => None,
                Some(b) => Some(b.as_int().and_then(|n| u64::try_from(n).ok()).ok_or_else(
                    || PlanError::Schema("`store_bytes` must be a non-negative integer".into()),
                )?),
            };
        let class_footprints = v
            .get("class_footprints")
            .and_then(Json::as_arr)
            .ok_or_else(|| PlanError::Schema("missing `class_footprints` array".into()))?
            .iter()
            .map(|c| {
                Ok(ClassFootprint {
                    array: str_field(c, "array")?,
                    refs: int_field(c, "refs").and_then(|n| {
                        usize::try_from(n)
                            .map_err(|_| PlanError::Schema("`refs` is not a count".into()))
                    })?,
                    shape_invariant: c
                        .get("shape_invariant")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| {
                            PlanError::Schema("class missing `shape_invariant`".into())
                        })?,
                    footprint: parse_rat(&str_field(c, "footprint")?)?,
                })
            })
            .collect::<Result<Vec<_>, PlanError>>()?;
        let comm_free_normals = v
            .get("comm_free_normals")
            .and_then(Json::as_arr)
            .ok_or_else(|| PlanError::Schema("missing `comm_free_normals` array".into()))?
            .iter()
            .map(|n| {
                n.as_arr()
                    .map(|items| {
                        items
                            .iter()
                            .map(|x| {
                                x.as_int().ok_or_else(|| {
                                    PlanError::Schema("normal component is not an integer".into())
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()
                            .map(IVec)
                    })
                    .ok_or_else(|| PlanError::Schema("normal is not an array".into()))?
            })
            .collect::<Result<Vec<_>, PlanError>>()?;
        let source = str_field(&v, "source")?;
        Ok(PartitionPlan {
            schema_version,
            fingerprint,
            processors,
            mesh,
            legality,
            optimizer,
            chosen_by,
            calibration,
            certificate,
            transform,
            proc_grid,
            tile_extents,
            cost,
            store_bytes,
            class_footprints,
            comm_free_normals,
            source,
        })
    }
}

/// Execution-time array storage in bytes, mirroring the sizing rule of
/// the runtime's `ArrayLayout` (per-array Π(hi−lo+1) elements, at least
/// one element per referenced array, 8 bytes per f64).  Saturates at
/// `u64::MAX` instead of overflowing on absurd extents.
fn store_bytes(nest: &LoopNest) -> u64 {
    let total: u128 = nest
        .array_extents()
        .values()
        .map(|ext| {
            ext.iter()
                .map(|&(lo, hi)| u128::try_from((hi - lo + 1).max(0)).unwrap_or(u128::MAX))
                .fold(1u128, u128::saturating_mul)
                .max(1)
        })
        .fold(0u128, u128::saturating_add);
    u64::try_from(total.saturating_mul(8)).unwrap_or(u64::MAX)
}

fn push_field(out: &mut String, key: &str, value: Json) {
    out.push_str("  ");
    json::write_string(out, key);
    out.push_str(": ");
    json::write_value(out, &value, 1);
    out.push_str(",\n");
}

fn int_arr(xs: &[i128]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Int(x)).collect())
}

fn rat_str(r: &Rat) -> String {
    format!("{}/{}", r.num(), r.den())
}

fn parse_rat(s: &str) -> Result<Rat, PlanError> {
    let (num, den) = s
        .split_once('/')
        .ok_or_else(|| PlanError::Schema(format!("`{s}` is not a num/den rational")))?;
    let num: i128 = num
        .parse()
        .map_err(|_| PlanError::Schema(format!("bad rational numerator `{num}`")))?;
    let den: i128 = den
        .parse()
        .map_err(|_| PlanError::Schema(format!("bad rational denominator `{den}`")))?;
    if den == 0 {
        return Err(PlanError::Schema("rational with zero denominator".into()));
    }
    Ok(Rat::new(num, den))
}

fn str_field(v: &Json, key: &str) -> Result<String, PlanError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| PlanError::Schema(format!("missing string field `{key}`")))
}

fn int_field(v: &Json, key: &str) -> Result<i128, PlanError> {
    v.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| PlanError::Schema(format!("missing integer field `{key}`")))
}

fn int_arr_field(v: &Json, key: &str) -> Result<Vec<i128>, PlanError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanError::Schema(format!("missing array field `{key}`")))?
        .iter()
        .map(|x| {
            x.as_int()
                .ok_or_else(|| PlanError::Schema(format!("`{key}` element is not an integer")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn example8() -> LoopNest {
        parse(
            "doall (i, 1, 64) { doall (j, 1, 64) { doall (k, 1, 64) {
               A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3];
             } } }",
        )
        .unwrap()
    }

    #[test]
    fn build_records_partition_and_footprints() {
        let nest = example8();
        let plan = PartitionPlan::build(
            &nest,
            64,
            Some((8, 8)),
            LegalityVerdict::Checked { warnings: 0 },
        )
        .unwrap();
        assert_eq!(plan.tiles(), 64);
        assert_eq!(plan.proc_grid.len(), 3);
        assert_eq!(plan.class_footprints.len(), 2);
        // A (64³ identity writes) and B (66×67×68 window) at 8 B/elem.
        let a = 64u64 * 64 * 64;
        let b = 66u64 * 67 * 68;
        assert_eq!(plan.store_bytes, Some((a + b) * 8));
        let part = plan.rect_partition();
        assert_eq!(part, partition_rect(&nest, 64));
        // The embedded source reconstructs the very same nest.
        assert_eq!(plan.nest().unwrap(), nest);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan.to_json_string();
        let back = PartitionPlan::from_json_str(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json_string(), text, "encoding is canonical");
    }

    fn coefficients() -> LatencyCoefficients {
        LatencyCoefficients {
            per_tile_ns: Rat::new(1507, 1000),
            per_line_ns: Rat::new(21, 1000),
            per_span_line_ns: Rat::new(3, 1000),
            per_iter_ns: Rat::new(911, 1000),
            per_rep_ns: Rat::new(42000, 1),
            samples: 36,
        }
    }

    #[test]
    fn calibration_provenance_round_trips() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked)
            .unwrap()
            .with_calibration(coefficients());
        assert_eq!(plan.chosen_by, ChosenBy::Calibrated);
        let text = plan.to_json_string();
        assert!(text.contains("\"chosen_by\": \"calibrated\""));
        assert!(text.contains("\"per_span_line_ns\": \"3/1000\""));
        let back = PartitionPlan::from_json_str(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.calibration, Some(coefficients()));
        assert_eq!(back.to_json_string(), text, "encoding is canonical");
    }

    #[test]
    fn uncalibrated_plan_round_trips_without_calibration_block() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan.to_json_string();
        assert!(text.contains("\"chosen_by\": \"analytic\""));
        assert!(!text.contains("\"calibration\""));
        let back = PartitionPlan::from_json_str(&text).unwrap();
        assert_eq!(back.chosen_by, ChosenBy::Analytic);
        assert_eq!(back.calibration, None);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn version_1_plan_decodes_and_reencodes_byte_stably() {
        // Write a version-1 file by hand-downgrading a fresh plan: drop
        // the schema-2 fields and rewrite the version tag — exactly what
        // a pre-calibration build would have emitted.
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let v1: String = plan
            .to_json_string()
            .replace("\"alp-plan\": 3", "\"alp-plan\": 1")
            .lines()
            .filter(|l| !l.contains("\"chosen_by\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = PartitionPlan::from_json_str(&v1).unwrap();
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.chosen_by, ChosenBy::Analytic);
        assert_eq!(back.calibration, None);
        assert_eq!(back.to_json_string(), v1, "v1 re-encode is byte-stable");
    }

    #[test]
    fn version_2_plan_decodes_and_reencodes_byte_stably() {
        // Hand-downgrade a fresh plan to version 2: rewrite the tag.
        // Schema 2 had every field but `certificate`, and an uncertified
        // plan emits no certificate block, so the bytes are otherwise
        // identical to what a pre-certificate build wrote.
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let v2 = plan
            .to_json_string()
            .replace("\"alp-plan\": 3", "\"alp-plan\": 2");
        let back = PartitionPlan::from_json_str(&v2).unwrap();
        assert_eq!(back.schema_version, 2);
        assert_eq!(back.certificate, None);
        assert_eq!(back.to_json_string(), v2, "v2 re-encode is byte-stable");
    }

    fn certificate_for(plan: &PartitionPlan) -> Certificate {
        Certificate {
            fingerprint: plan.fingerprint.clone(),
            coverage: true,
            write_disjoint: true,
            in_bounds: true,
            idempotent: false,
        }
    }

    #[test]
    fn certificate_round_trips_byte_stably() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let cert = certificate_for(&plan);
        let certified = plan.with_certificate(cert.clone());
        assert_eq!(certified.schema_version, 3);
        let text = certified.to_json_string();
        assert!(text.contains("\"certificate\""));
        assert!(text.contains("\"write_disjoint\": true"));
        let back = PartitionPlan::from_json_str(&text).unwrap();
        assert_eq!(back.certificate, Some(cert));
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn stale_certificate_fingerprint_is_rejected_at_decode() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let mut cert = certificate_for(&plan);
        cert.fingerprint = "fnv1a64:0000000000000000".into();
        // Bypass the constructor so the stale fingerprint reaches the
        // serializer — simulating a certificate grafted from another plan.
        let mut certified = plan;
        certified.certificate = Some(cert);
        let err = PartitionPlan::from_json_str(&certified.to_json_string()).unwrap_err();
        assert!(matches!(err, PlanError::Certificate(_)), "got {err}");
        assert!(err.to_string().contains("issued for fingerprint"));
    }

    #[test]
    fn malformed_certificate_block_is_rejected_at_decode() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        let certified = plan.clone().with_certificate(certificate_for(&plan));
        let text = certified.to_json_string();
        // Truncated block: a proven fact vanished.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("\"write_disjoint\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = PartitionPlan::from_json_str(&truncated).unwrap_err();
        assert!(matches!(err, PlanError::Certificate(_)), "got {err}");
        // Mistyped fact: a verdict that is not a bool.
        let mistyped = text.replace("\"coverage\": true", "\"coverage\": \"probably\"");
        assert!(matches!(
            PartitionPlan::from_json_str(&mistyped),
            Err(PlanError::Certificate(_))
        ));
        // The block itself must be an object.
        let wrong_shape = {
            let start = text.find("  \"certificate\": {").unwrap();
            let end = text[start..].find("},\n").unwrap() + start + 3;
            format!("{}  \"certificate\": 7,\n{}", &text[..start], &text[end..])
        };
        assert!(matches!(
            PartitionPlan::from_json_str(&wrong_shape),
            Err(PlanError::Certificate(_))
        ));
    }

    #[test]
    fn bad_chosen_by_and_calibration_are_rejected() {
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked)
            .unwrap()
            .with_calibration(coefficients());
        let text = plan.to_json_string();
        let bad = text.replace("\"chosen_by\": \"calibrated\"", "\"chosen_by\": \"vibes\"");
        assert!(matches!(
            PartitionPlan::from_json_str(&bad),
            Err(PlanError::Schema(_))
        ));
        let bad = text.replace("\"per_line_ns\": \"21/1000\"", "\"per_line_ns\": \"fast\"");
        assert!(matches!(
            PartitionPlan::from_json_str(&bad),
            Err(PlanError::Schema(_))
        ));
        let bad = text.replace("\"samples\": 36", "\"samples\": -3");
        assert!(matches!(
            PartitionPlan::from_json_str(&bad),
            Err(PlanError::Schema(_))
        ));
    }

    fn example2() -> LoopNest {
        parse(
            "doall (i, 101, 612) { doall (j, 1, 512) {
               A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3];
             } }",
        )
        .unwrap()
    }

    fn skew_transform(nest: &LoopNest) -> Transform {
        Transform::new(
            alp_linalg::IMat::from_rows(&[&[1, 1], &[0, 1]]),
            fingerprint_hex(nest),
        )
        .unwrap()
    }

    #[test]
    fn untransformed_plans_stay_at_version_3() {
        // Version 4's only addition is the transform block; a plan
        // without one writes the lowest representable version so the
        // pre-skew golden snapshots stay byte-stable.
        let plan = PartitionPlan::build(&example8(), 16, None, LegalityVerdict::Unchecked).unwrap();
        assert_eq!(plan.schema_version, 3);
        let text = plan.to_json_string();
        assert!(text.contains("\"alp-plan\": 3"));
        assert!(!text.contains("\"transform\""));
    }

    #[test]
    fn transform_round_trips_byte_stably_at_v4() {
        let nest = example2();
        let plan = PartitionPlan::build(&nest, 16, None, LegalityVerdict::Unchecked)
            .unwrap()
            .with_transform(skew_transform(&nest));
        assert_eq!(plan.schema_version, 4);
        let text = plan.to_json_string();
        assert!(text.contains("\"alp-plan\": 4"), "{text}");
        assert!(text.contains("\"transform\""), "{text}");
        let back = PartitionPlan::from_json_str(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.transform, plan.transform);
        assert_eq!(back.to_json_string(), text, "v4 encoding is canonical");
    }

    #[test]
    fn skewed_build_carries_transform_and_general_footprints() {
        let nest = example2();
        let cands = crate::transform::skewed_candidates(
            &nest,
            16,
            &alp_partition::ParaSearchConfig::default(),
        )
        .unwrap();
        assert!(!cands.is_empty(), "example 2 has skewed candidates");
        let plan = PartitionPlan::build_skewed(
            &nest,
            16,
            None,
            LegalityVerdict::Checked { warnings: 0 },
            &cands[0],
            "para-exhaustive",
        )
        .unwrap();
        assert_eq!(plan.schema_version, SCHEMA_VERSION);
        let t = plan.transform.as_ref().unwrap();
        assert!(!t.is_identity());
        assert_eq!(plan.proc_grid, cands[0].grid);
        let back = PartitionPlan::from_json_str(&plan.to_json_string()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_transform_blocks_are_rejected_with_transform_errors() {
        let nest = example2();
        let plan = PartitionPlan::build(&nest, 16, None, LegalityVerdict::Unchecked)
            .unwrap()
            .with_transform(skew_transform(&nest));
        let text = plan.to_json_string();
        // det 2: not unimodular.
        let det2 = text.replace("[0, 1]", "[0, 2]");
        let err = PartitionPlan::from_json_str(&det2).unwrap_err();
        assert!(matches!(err, PlanError::Transform(_)), "got {err}");
        assert!(err.to_string().contains("det 2"), "{err}");
        // Singular: duplicate rows.
        let singular = text.replace("[0, 1]", "[1, 1]");
        let err = PartitionPlan::from_json_str(&singular).unwrap_err();
        assert!(err.to_string().contains("singular"), "{err}");
        // Stale fingerprint: the transform block re-states the plan
        // fingerprint as its last occurrence in the text.
        let needle = format!("\"fingerprint\": \"{}\"", plan.fingerprint);
        let pos = text.rfind(&needle).unwrap();
        let stale = format!(
            "{}\"fingerprint\": \"fnv1a64:0000000000000000\"{}",
            &text[..pos],
            &text[pos + needle.len()..]
        );
        let err = PartitionPlan::from_json_str(&stale).unwrap_err();
        assert!(matches!(err, PlanError::Transform(_)), "got {err}");
        assert!(err.to_string().contains("derived for fingerprint"), "{err}");
        // The block itself must be an object.
        let start = text.find("  \"transform\": {").unwrap();
        let end = text[start..].find("},\n").unwrap() + start + 3;
        let wrong_shape = format!("{}  \"transform\": 7,\n{}", &text[..start], &text[end..]);
        assert!(matches!(
            PartitionPlan::from_json_str(&wrong_shape),
            Err(PlanError::Transform(_))
        ));
    }

    #[test]
    fn mesh_and_warnings_round_trip() {
        let nest = parse("doall (i, 0, 15) { doall (j, 0, 15) { A[i,j] = A[i,j]; } }").unwrap();
        let plan = PartitionPlan::build(
            &nest,
            4,
            Some((2, 2)),
            LegalityVerdict::Checked { warnings: 3 },
        )
        .unwrap();
        let back = PartitionPlan::from_json_str(&plan.to_json_string()).unwrap();
        assert_eq!(back.mesh, Some((2, 2)));
        assert_eq!(back.legality, LegalityVerdict::Checked { warnings: 3 });
    }

    #[test]
    fn unknown_version_fails_with_diagnostic() {
        let plan = PartitionPlan::build(&example8(), 8, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan
            .to_json_string()
            .replace("\"alp-plan\": 3", "\"alp-plan\": 99");
        let err = PartitionPlan::from_json_str(&text).unwrap_err();
        match err {
            PlanError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            e => panic!("wrong error: {e}"),
        }
    }

    #[test]
    fn truncated_input_fails_with_diagnostic() {
        let plan = PartitionPlan::build(&example8(), 8, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan.to_json_string();
        for cut in [0, 1, text.len() / 2, text.len() - 2] {
            let err = PartitionPlan::from_json_str(&text[..cut]).unwrap_err();
            assert!(
                matches!(err, PlanError::Json(_)),
                "cut at {cut}: wrong error {err}"
            );
        }
    }

    #[test]
    fn tampered_source_fails_fingerprint_check() {
        let plan = PartitionPlan::build(&example8(), 8, None, LegalityVerdict::Unchecked).unwrap();
        let mut tampered = plan.clone();
        tampered.source = "doall (i, 0, 3) { A[i] = A[i]; }\n".into();
        assert!(matches!(
            tampered.nest(),
            Err(PlanError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn store_bytes_is_optional_for_old_plans() {
        let plan = PartitionPlan::build(&example8(), 8, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan.to_json_string();
        assert!(text.contains("\"store_bytes\""));
        // Strip the field, as a plan written before it existed would be.
        let line = text
            .lines()
            .find(|l| l.contains("store_bytes"))
            .unwrap()
            .to_string();
        let old = text.replace(&format!("{line}\n"), "");
        let back = PartitionPlan::from_json_str(&old).unwrap();
        assert_eq!(back.store_bytes, None);
        // Round trip of the old-format plan stays byte-stable too.
        assert_eq!(back.to_json_string(), old);
        // A mistyped field is rejected, not ignored.
        let bad = text.replace(&line, "  \"store_bytes\": \"big\",");
        assert!(matches!(
            PartitionPlan::from_json_str(&bad),
            Err(PlanError::Schema(_))
        ));
    }

    #[test]
    fn missing_field_fails_cleanly() {
        let plan = PartitionPlan::build(&example8(), 8, None, LegalityVerdict::Unchecked).unwrap();
        let text = plan
            .to_json_string()
            .replace("\"proc_grid\"", "\"wrong_name\"");
        assert!(matches!(
            PartitionPlan::from_json_str(&text),
            Err(PlanError::Schema(_))
        ));
    }
}
