//! A minimal JSON reader/writer for the plan schema — hand-rolled so the
//! workspace stays dependency-free (no serde).
//!
//! The subset is exactly what [`PartitionPlan`](crate::PartitionPlan)
//! needs: objects, arrays, strings, `i128` integers, booleans, and
//! `null`.  Floating-point literals are rejected — every quantity in a
//! plan is exact (integers and `num/den` rationals), which is also what
//! makes the encoding canonical and byte-stable.
//!
//! The writer emits a deterministic pretty form (two-space indent, fixed
//! field order chosen by the encoder), so encoding the same plan twice
//! yields byte-identical text — the property the golden-snapshot test
//! pins down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (plan-schema subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the schema has no floats).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.  Insertion order is not preserved — encoders list
    /// fields explicitly, so lookup order is all that matters.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Where and why a JSON parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn eof_err(&self) -> JsonError {
        self.err("unexpected end of input (document truncated?)")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected `{}`, found `{}`", b as char, c as char))),
            None => Err(self.eof_err()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else if self.bytes.len() - self.pos < text.len() {
            Err(self.eof_err())
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.eof_err()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                Some(c) => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        c as char
                    )))
                }
                None => return Err(self.eof_err()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                Some(c) => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found `{}`",
                        c as char
                    )))
                }
                None => return Err(self.eof_err()),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.eof_err()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.eof_err()),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.eof_err());
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        Some(c) => {
                            return Err(self.err(format!("unknown escape `\\{}`", c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err(
                "floating-point literals are not part of the plan schema (use exact \
                 integers or `num/den` rational strings)",
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err(format!("integer `{text}` out of range")))
    }
}

/// Serialize with deterministic two-space-indented pretty-printing.
///
/// Objects are written through [`ObjWriter`] in the field order the
/// encoder chooses; this function renders `Json` values (arrays of
/// scalars inline, everything else indented).
pub fn write_value(out: &mut String, v: &Json, indent: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else if items.iter().all(is_scalar) {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, it, indent);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    write_value(out, it, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                pad(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn is_scalar(v: &Json) -> bool {
    matches!(v, Json::Null | Json::Bool(_) | Json::Int(_) | Json::Str(_))
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Write a JSON string literal with escaping.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object writer that preserves the encoder's field order (unlike
/// `Json::Obj`, whose `BTreeMap` sorts keys) — this is what keeps the
/// emitted schema human-readable *and* byte-deterministic.
pub struct ObjWriter {
    fields: Vec<(String, Json)>,
}

impl ObjWriter {
    /// Start an object.
    pub fn new() -> Self {
        ObjWriter { fields: Vec::new() }
    }

    /// Append a field (encoder-chosen order is preserved verbatim).
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Render the object at the given indent level.
    pub fn render(&self, out: &mut String, indent: usize) {
        if self.fields.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            pad(out, indent + 1);
            write_string(out, k);
            out.push_str(": ");
            write_value(out, v, indent + 1);
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        pad(out, indent);
        out.push('}');
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3], "b": {"c": "x\ny", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Int(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn truncated_inputs_fail_with_offset() {
        for src in [
            "",
            "{",
            r#"{"a""#,
            r#"{"a": "#,
            r#"{"a": [1, 2"#,
            r#"{"a": "unterminat"#,
            "tru",
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains("end of input") || e.message.contains("expected"),
                "{src:?} -> {e}"
            );
            assert!(e.offset <= src.len());
        }
    }

    #[test]
    fn floats_are_rejected_with_diagnostic() {
        let e = parse(r#"{"x": 1.5}"#).unwrap_err();
        assert!(e.message.contains("floating-point"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn writer_is_deterministic() {
        let v = parse(r#"{"b": [1, 2], "a": {"z": 1, "y": [true, null]}}"#).unwrap();
        let mut one = String::new();
        write_value(&mut one, &v, 0);
        let mut two = String::new();
        write_value(&mut two, &parse(&one).unwrap(), 0);
        assert_eq!(one, two);
    }

    #[test]
    fn big_integers_survive() {
        let n = i128::MAX;
        let v = parse(&format!("[{n}]")).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_int(), Some(n));
    }
}
