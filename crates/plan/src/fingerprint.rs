//! Stable structural fingerprints of loop nests.
//!
//! The fingerprint is the cache key and the integrity check of a saved
//! [`PartitionPlan`](crate::PartitionPlan), so it must be (a) identical
//! for structurally identical nests — in particular invariant under
//! renaming the loop indices — and (b) stable across processes,
//! platforms, and Rust versions (which rules out `DefaultHasher`).
//!
//! We canonicalize the nest by renaming every parallel index to its
//! position (`i0`, `i1`, …) and every outer sequential index to `s0`,
//! `s1`, …, then hash the canonical DSL rendering with FNV-1a (64-bit).
//! Subscripts are stored as coefficient vectors in the IR, so index
//! names appear nowhere except the loop headers — renaming the headers
//! is a complete canonicalization.

use alp_loopir::LoopNest;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The canonical textual form the fingerprint hashes: the nest's DSL
/// rendering with positional index names.
pub fn canonical_source(nest: &LoopNest) -> String {
    let mut canon = nest.clone();
    for (k, l) in canon.seq_loops.iter_mut().enumerate() {
        l.name = format!("s{k}");
        l.span = None;
    }
    for (k, l) in canon.loops.iter_mut().enumerate() {
        l.name = format!("i{k}");
        l.span = None;
    }
    canon.display()
}

/// Structural fingerprint of a nest (see the module docs).
pub fn fingerprint(nest: &LoopNest) -> u64 {
    fnv1a64(canonical_source(nest).as_bytes())
}

/// [`fingerprint`] rendered as the 16-digit lowercase hex string used in
/// plan files.
pub fn fingerprint_hex(nest: &LoopNest) -> String {
    format!("{:016x}", fingerprint(nest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn invariant_under_index_renaming() {
        let a = parse("doall (i, 1, 8) { doall (j, 1, 8) { A[i,j] = B[i+1,j]; } }").unwrap();
        let b = parse("doall (x, 1, 8) { doall (y, 1, 8) { A[x,y] = B[x+1,y]; } }").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint_hex(&a), fingerprint_hex(&b));
    }

    #[test]
    fn sensitive_to_bounds_refs_and_kind() {
        let base = parse("doall (i, 1, 8) { A[i] = B[i]; }").unwrap();
        for other in [
            "doall (i, 1, 9) { A[i] = B[i]; }",
            "doall (i, 1, 8) { A[i] = B[i+1]; }",
            "doall (i, 1, 8) { A[i] = C[i]; }",
            "doall (i, 1, 8) { l$A[i] = l$A[i] + B[i]; }",
            "doseq (t, 0, 1) { doall (i, 1, 8) { A[i] = B[i]; } }",
        ] {
            let nest = parse(other).unwrap();
            assert_ne!(fingerprint(&base), fingerprint(&nest), "{other}");
        }
    }

    #[test]
    fn seq_indices_canonicalized_too() {
        let a = parse("doseq (t, 0, 3) { doall (i, 0, 7) { l$A[0] = l$A[0] + B[i]; } }").unwrap();
        let b = parse("doseq (q, 0, 3) { doall (k, 0, 7) { l$A[0] = l$A[0] + B[k]; } }").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
