//! A sharded, coalescing front for the plan cache — the concurrent
//! heart of `alp-serve`.
//!
//! [`PlanCache`] is a single-threaded LRU: correct behind one mutex,
//! but a server with N handler threads would serialize every lookup on
//! that one lock.  [`ShardedPlanCache`] splits the key space over
//! independent shards (each its own mutex around a private
//! [`PlanCache`]), so lookups for different fingerprints proceed in
//! parallel and a slow *compile* on one shard never blocks hits on
//! another — the compile itself always runs **outside** the shard lock.
//!
//! The second concurrency problem a server has is the *thundering
//! herd*: N simultaneous requests for the same cold [`PlanKey`] would
//! each pay the full compile.  [`ShardedPlanCache::get_or_compute`]
//! (`PlanCache::get_or_try_insert_with` generalized across threads)
//! coalesces them: the first requester becomes the **leader** and
//! compiles; the rest find the in-flight slot and block on its condvar
//! until the leader publishes.  Exactly one compile runs per in-flight
//! key, and every waiter receives the same `Arc`'d plan (or the same
//! error — failures are shared but never cached).
//!
//! A leader that *panics* mid-compile publishes an `Abandoned` state
//! from its drop guard; waiters then re-enter the protocol (one of
//! them becomes the new leader) instead of deadlocking.  This is what
//! keeps a chaos-injected tile panic from poisoning a shard.

use crate::{PartitionPlan, PlanCache, PlanError, PlanKey};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`get_or_compute`](ShardedPlanCache::get_or_compute) call was
/// satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// Served from the shard's cache.
    Hit,
    /// Blocked on another thread's in-flight compile of the same key.
    Coalesced,
    /// This call ran the compile (it was the leader).
    Computed,
}

impl Fetched {
    /// Stable lower-case label (used by the serve wire protocol).
    pub fn label(&self) -> &'static str {
        match self {
            Fetched::Hit => "hit",
            Fetched::Coalesced => "coalesced",
            Fetched::Computed => "computed",
        }
    }
}

/// Cumulative counters for the sharded cache.  `hits`, `misses`, and
/// `coalesced` are request-level (one per `get_or_compute` /
/// `get_cached` call); `evictions` is summed from the per-shard LRUs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedCacheStats {
    /// Calls answered directly from a shard's cache.
    pub hits: u64,
    /// Calls that became compile leaders.
    pub misses: u64,
    /// Calls that waited on another thread's in-flight compile.
    pub coalesced: u64,
    /// LRU evictions across all shards.
    pub evictions: u64,
}

impl ShardedCacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one in-flight compile slot.
enum Slot<E> {
    /// The leader is still compiling.
    Pending,
    /// The leader finished; the shared outcome (errors are shared too,
    /// but only successes were inserted into the cache).
    Done(Result<Arc<PartitionPlan>, E>),
    /// The leader panicked before publishing; waiters must retry.
    Abandoned,
}

struct InFlight<E> {
    slot: Mutex<Slot<E>>,
    cv: Condvar,
}

struct ShardState<E> {
    cache: PlanCache,
    inflight: HashMap<PlanKey, Arc<InFlight<E>>>,
    // Request-level counters live per shard, under the same lock the
    // lookup already holds — no extra synchronization, and the stats
    // endpoint can expose per-shard hit rates for live capacity tuning.
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// A point-in-time view of one shard, for live capacity tuning: is the
/// shard full, and is it earning its keep?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Plans currently cached in this shard.
    pub len: usize,
    /// The shard's LRU capacity.
    pub capacity: usize,
    /// Lookups this shard answered from cache.
    pub hits: u64,
    /// Lookups that became compile leaders on this shard.
    pub misses: u64,
    /// Lookups that waited on this shard's in-flight compiles.
    pub coalesced: u64,
}

/// Removes the in-flight entry and publishes `Abandoned` unless the
/// leader defused it by publishing a real outcome first.  Runs during
/// unwinding, so a panicking compile wakes its waiters instead of
/// stranding them.
struct LeaderGuard<'a, E> {
    shard: &'a Mutex<ShardState<E>>,
    flight: &'a Arc<InFlight<E>>,
    key: PlanKey,
    defused: bool,
}

impl<E> Drop for LeaderGuard<'_, E> {
    fn drop(&mut self) {
        if self.defused {
            return;
        }
        if let Ok(mut st) = self.shard.lock() {
            st.inflight.remove(&self.key);
        }
        if let Ok(mut slot) = self.flight.slot.lock() {
            *slot = Slot::Abandoned;
        }
        self.flight.cv.notify_all();
    }
}

/// A sharded LRU plan cache with cross-thread request coalescing.
///
/// The error type `E` is generic (default [`PlanError`]) so callers
/// with richer error currencies — the serve layer shares whole
/// pipeline failures between coalesced waiters — can use the same
/// machinery; it only needs to be `Clone + Send`.
pub struct ShardedPlanCache<E = PlanError> {
    shards: Vec<Mutex<ShardState<E>>>,
}

impl<E: Clone> ShardedPlanCache<E> {
    /// Default shard count used by the server.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache of `shards` independent shards holding at most
    /// `capacity` plans in total (each shard gets an equal slice,
    /// minimum 1 per shard).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        ShardedPlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardState {
                        cache: PlanCache::new(per_shard),
                        inflight: HashMap::new(),
                        hits: 0,
                        misses: 0,
                        coalesced: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |st| st.cache.len()))
            .sum()
    }

    /// True when no shard caches anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of the cumulative counters, summed
    /// over shards (each shard lock is taken briefly).
    pub fn stats(&self) -> ShardedCacheStats {
        let mut total = ShardedCacheStats::default();
        for s in &self.shards {
            if let Ok(st) = s.lock() {
                total.hits += st.hits;
                total.misses += st.misses;
                total.coalesced += st.coalesced;
                total.evictions += st.cache.stats().evictions;
            }
        }
        total
    }

    /// Per-shard occupancy and counters — the observable that makes
    /// `--cache-capacity` tunable from live traffic instead of
    /// guesswork.
    pub fn per_shard(&self) -> Vec<ShardOccupancy> {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .map_or(ShardOccupancy::default(), |st| ShardOccupancy {
                        len: st.cache.len(),
                        capacity: st.cache.capacity(),
                        hits: st.hits,
                        misses: st.misses,
                        coalesced: st.coalesced,
                    })
            })
            .collect()
    }

    /// Insert a plan without touching the request counters: the replay
    /// path of the durable store, which re-warms the cache before any
    /// request has been seen.  Returns `false` when the key was already
    /// present (the existing entry is kept).
    pub fn warm(&self, key: PlanKey, plan: Arc<PartitionPlan>) -> bool {
        let mut st = self.shard_for(&key).lock().expect("shard lock");
        if st.cache.peek(&key).is_some() {
            return false;
        }
        st.cache.insert(key, plan);
        true
    }

    /// Snapshot of every cached plan across all shards — what the
    /// store compactor persists as the live set.
    pub fn entries(&self) -> Vec<(PlanKey, Arc<PartitionPlan>)> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().map_or(Vec::new(), |st| st.cache.entries()))
            .collect()
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<ShardState<E>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Cache-only lookup: a hit counts and refreshes recency; a miss
    /// counts nothing (the caller decides whether to queue a compute,
    /// which will do its own accounting).  This is the server's inline
    /// fast path — under overload, cached plans are still served from
    /// here without ever touching the admission queue.
    pub fn get_cached(&self, key: &PlanKey) -> Option<Arc<PartitionPlan>> {
        let mut st = self.shard_for(key).lock().expect("shard lock");
        let found = st.cache.peek(key);
        if found.is_some() {
            st.hits += 1;
        }
        found
    }

    /// Memoize across threads: return the cached plan for `key`, wait
    /// on an in-flight compile of the same key, or run `make` as the
    /// leader, cache a success, and share the outcome with every
    /// coalesced waiter.  Failed builds are shared with waiters already
    /// blocked on the slot but cache nothing, so a later call retries.
    pub fn get_or_compute(
        &self,
        key: PlanKey,
        make: impl FnOnce() -> Result<PartitionPlan, E>,
    ) -> Result<(Arc<PartitionPlan>, Fetched), E> {
        let mut make = Some(make);
        loop {
            let shard = self.shard_for(&key);
            let flight = {
                let mut st = shard.lock().expect("shard lock");
                // Leader inserts into the cache and removes the
                // in-flight entry under one lock acquisition, so
                // "in flight" implies "not yet cached" — check the
                // in-flight map first and a waiter is never
                // double-counted as a miss.
                if let Some(f) = st.inflight.get(&key).map(Arc::clone) {
                    st.coalesced += 1;
                    f
                } else if let Some(plan) = st.cache.peek(&key) {
                    st.hits += 1;
                    return Ok((plan, Fetched::Hit));
                } else {
                    st.misses += 1;
                    let f = Arc::new(InFlight {
                        slot: Mutex::new(Slot::Pending),
                        cv: Condvar::new(),
                    });
                    st.inflight.insert(key, Arc::clone(&f));
                    drop(st);
                    // Leader path: compile OUTSIDE the shard lock, so
                    // other keys on this shard stay serviceable.
                    let mut guard = LeaderGuard {
                        shard,
                        flight: &f,
                        key,
                        defused: false,
                    };
                    let made = make.take().expect("leader runs make exactly once")().map(Arc::new);
                    {
                        let mut st = shard.lock().expect("shard lock");
                        if let Ok(plan) = &made {
                            st.cache.insert(key, Arc::clone(plan));
                        }
                        st.inflight.remove(&key);
                    }
                    guard.defused = true;
                    *f.slot.lock().expect("slot lock") = Slot::Done(made.clone());
                    f.cv.notify_all();
                    return made.map(|p| (p, Fetched::Computed));
                }
            };
            // Waiter path: block until the leader publishes.
            let mut slot = flight.slot.lock().expect("slot lock");
            loop {
                match &*slot {
                    Slot::Pending => {
                        slot = flight.cv.wait(slot).expect("slot lock");
                    }
                    Slot::Done(outcome) => {
                        return outcome.clone().map(|p| (p, Fetched::Coalesced));
                    }
                    Slot::Abandoned => break,
                }
            }
            // The leader died without publishing (panicked compile):
            // retry from the top.  If this call still holds its `make`
            // closure it may become the new leader.
            if make.is_none() {
                unreachable!("only waiters reach the retry path");
            }
        }
    }
}

impl<E: Clone> std::fmt::Debug for ShardedPlanCache<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ShardedPlanCache")
            .field("shards", &self.shards.len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("coalesced", &s.coalesced)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LegalityVerdict;
    use alp_loopir::parse;

    fn key(fp: u64) -> PlanKey {
        PlanKey {
            fingerprint: fp,
            processors: 16,
            mesh: None,
            checked: true,
            calibrated: false,
            skewed: false,
            certified: false,
        }
    }

    fn plan(trip: i128) -> PartitionPlan {
        let nest = parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
        PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache: ShardedPlanCache = ShardedPlanCache::new(4, 16);
        assert!(cache.is_empty());
        assert!(cache.get_cached(&key(1)).is_none());
        let (p, how) = cache.get_or_compute(key(1), || Ok(plan(63))).unwrap();
        assert_eq!(how, Fetched::Computed);
        assert_eq!(p.tiles(), 4);
        let (q, how) = cache.get_or_compute(key(1), || panic!("cached")).unwrap();
        assert_eq!(how, Fetched::Hit);
        assert!(Arc::ptr_eq(&p, &q));
        assert!(cache.get_cached(&key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (2, 1, 0));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache: ShardedPlanCache = ShardedPlanCache::new(2, 8);
        let r = cache.get_or_compute(key(7), || Err(PlanError::Infeasible("boom".into())));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let (_, how) = cache.get_or_compute(key(7), || Ok(plan(63))).unwrap();
        assert_eq!(how, Fetched::Computed, "error was not cached");
    }

    #[test]
    fn distinct_keys_do_not_alias_across_shards() {
        let cache: ShardedPlanCache = ShardedPlanCache::new(8, 64);
        for fp in 0..32u64 {
            cache
                .get_or_compute(key(fp), || Ok(plan(63)))
                .expect("builds");
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.stats().misses, 32);
        for fp in 0..32u64 {
            assert!(cache.get_cached(&key(fp)).is_some(), "fp {fp}");
        }
    }

    #[test]
    fn abandoned_leader_wakes_waiters() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache: Arc<ShardedPlanCache> = Arc::new(ShardedPlanCache::new(1, 8));
        let built = Arc::new(AtomicUsize::new(0));
        // Leader panics mid-compile in its own thread.
        let c = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let _ = c.get_or_compute(key(5), || -> Result<PartitionPlan, PlanError> {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected compile panic");
            });
        });
        // Waiter arrives while the leader is in flight, survives the
        // abandonment, and becomes the new leader.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let c = Arc::clone(&cache);
        let b = Arc::clone(&built);
        let waiter = std::thread::spawn(move || {
            c.get_or_compute(key(5), || {
                b.fetch_add(1, Ordering::SeqCst);
                Ok(plan(63))
            })
        });
        assert!(leader.join().is_err(), "leader panicked");
        let (p, _) = waiter.join().expect("waiter survives").expect("recovers");
        assert_eq!(p.tiles(), 4);
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert!(cache.get_cached(&key(5)).is_some());
    }
}
