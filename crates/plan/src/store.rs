//! A durable, crash-safe journal of partition-plan artifacts — what
//! lets `alp-serve` survive a restart without a recompile storm.
//!
//! The paper's premise is that partitioning decisions are expensive to
//! derive and cheap to reuse; the serve layer memoizes them in a
//! [`ShardedPlanCache`](crate::ShardedPlanCache), but that cache dies
//! with the process.  [`PlanStore`] is the persistence layer beneath
//! it: an append-only journal of `(key, plan)` records that a daemon
//! replays on startup to re-warm its cache.
//!
//! # Frame format
//!
//! A store is a directory of numbered segment files
//! (`segment-NNNNNN.alpj`).  Each segment opens with the 10-byte magic
//! `ALPSTORE1\n` followed by frames:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum][payload bytes]
//! ```
//!
//! The checksum is [`fnv1a64`] over the length prefix *and* the
//! payload, so a frame whose length field was torn fails the checksum
//! even when the bytes at the (wrong) payload boundary happen to look
//! plausible.  The payload is a single-line integer-only JSON envelope
//! carrying the journal sequence number, every [`PlanKey`] field, and
//! the canonical plan artifact itself.
//!
//! # Crash safety
//!
//! Appends are single buffered `write` calls with **no** fsync: a
//! `kill -9` after `append` returns can lose at most the frames still
//! in the page cache, and a kill *during* the write leaves at most one
//! torn frame at the tail.  Recovery ([`PlanStore::open`]) walks every
//! segment frame by frame; the first bad frame (short header, oversized
//! or truncated length, checksum mismatch, undecodable payload) ends
//! that segment: the offending tail bytes are copied to a
//! `quarantine/` sidecar for post-mortem, the segment is truncated back
//! to its last good frame, and replay continues — corruption is
//! diagnosed (`ALP0014`) but **never fatal**.  [`PlanStore::sync`]
//! exists for the graceful-drain path, where the daemon wants the
//! journal on stable storage before exiting 0.
//!
//! # Rotation and compaction
//!
//! When the active segment exceeds [`StoreConfig::segment_bytes`] the
//! store rotates to a fresh segment.  [`PlanStore::compact`] rewrites
//! the live set into a brand-new segment via tempfile + fsync +
//! atomic rename, then deletes every older segment — a crash at any
//! point leaves either the old segments or the complete new one, never
//! a half-state.  Within and across segments, a later sequence number
//! for the same key supersedes earlier frames, so re-planning a nest
//! (e.g. after calibration) simply appends.

use crate::fingerprint::fnv1a64;
use crate::json::{self, Json};
use crate::{PartitionPlan, PlanKey};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Stable diagnostic code for quarantined store corruption.  Never
/// fatal: recovery repairs the store and keeps serving.
pub const CORRUPT_CODE: &str = "ALP0014";

/// Envelope schema version inside each frame payload.
pub const STORE_VERSION: i128 = 1;

/// Per-segment magic header.
const MAGIC: &[u8] = b"ALPSTORE1\n";

/// Frame header bytes: u32 length + u64 checksum.
const HEADER: usize = 12;

/// Upper bound on one frame's payload — anything larger is corruption,
/// not a plan.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// A fault the write hook can inject into one store `write` operation.
/// This is how the chaos crate reaches inside the journal without the
/// journal depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The kernel accepted only the first `n` bytes (they really are
    /// written); the store must resume with the remainder.
    Short(usize),
    /// The write failed with this error kind.  `Interrupted` (EINTR)
    /// and `WouldBlock` (EAGAIN) must be retried transparently; hard
    /// kinds abort the append and leave a torn tail for recovery.
    Err(io::ErrorKind),
}

/// Hook consulted before every store write operation, keyed by a
/// monotone operation index.  Returning `None` lets the write proceed.
pub type WriteFaultHook = Arc<dyn Fn(u64, usize) -> Option<WriteFault> + Send + Sync>;

/// Tunables for a [`PlanStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes (checked before each append).
    pub segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 4 << 20,
        }
    }
}

/// One live record replayed from the journal.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// Journal sequence number (later supersedes earlier per key).
    pub seq: u64,
    /// The cache key the plan was stored under.
    pub key: PlanKey,
    /// The decoded plan artifact.
    pub plan: Arc<PartitionPlan>,
}

/// One corrupt region found (and, under [`PlanStore::open`], repaired)
/// during recovery.
#[derive(Debug, Clone)]
pub struct QuarantineEvent {
    /// Segment index the corruption was found in.
    pub segment: u64,
    /// Byte offset of the first bad byte.
    pub offset: u64,
    /// Number of bytes quarantined (bad byte to end of segment).
    pub bytes: u64,
    /// What failed: header, length bound, checksum, or payload decode.
    pub reason: String,
}

impl std::fmt::Display for QuarantineEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "warning[{CORRUPT_CODE}]: store segment {:06} byte {}: {} ({} bytes quarantined)",
            self.segment, self.offset, self.reason, self.bytes
        )
    }
}

/// What [`PlanStore::open`] / [`PlanStore::scan`] found.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments examined.
    pub segments: usize,
    /// Valid frames decoded across all segments (including superseded
    /// ones).
    pub frames: u64,
    /// Total valid bytes scanned.
    pub bytes: u64,
    /// The live set: latest frame per key, ordered by sequence number.
    pub live: Vec<StoredEntry>,
    /// Corrupt regions found; empty for a clean store.
    pub quarantined: Vec<QuarantineEvent>,
}

impl RecoveryReport {
    /// True when any corruption was found (`ALP0014`).
    pub fn corrupt(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Number of live plans replayed.
    pub fn replayed(&self) -> usize {
        self.live.len()
    }
}

/// Outcome of one [`PlanStore::compact`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments deleted after the rewrite.
    pub segments_removed: usize,
    /// Frames written into the fresh segment (the live set size).
    pub frames: usize,
    /// Journal bytes before compaction.
    pub bytes_before: u64,
    /// Journal bytes after compaction.
    pub bytes_after: u64,
}

fn seg_name(index: u64) -> String {
    format!("segment-{index:06}.alpj")
}

fn seg_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(seg_name(index))
}

fn retriable(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Encode one record's frame payload (single-line envelope JSON).
fn encode_payload(seq: u64, key: &PlanKey, plan: &PartitionPlan) -> Vec<u8> {
    let (mesh_rows, mesh_cols) = match key.mesh {
        Some((r, c)) => (r as i128, c as i128),
        None => (-1, -1),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"alp-store\": {STORE_VERSION}, \"seq\": {seq}, \"fingerprint\": {}, \
         \"processors\": {}, \"mesh_rows\": {mesh_rows}, \"mesh_cols\": {mesh_cols}, \
         \"checked\": {}, \"calibrated\": {}, \"skewed\": {}, \"certified\": {}, \"plan\": ",
        key.fingerprint, key.processors, key.checked, key.calibrated, key.skewed, key.certified,
    ));
    json::write_string(&mut out, &plan.to_json_string());
    out.push('}');
    out.into_bytes()
}

/// Frame a payload: length, checksum over length + payload, payload.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut sum_input = Vec::with_capacity(4 + payload.len());
    sum_input.extend_from_slice(&len.to_le_bytes());
    sum_input.extend_from_slice(payload);
    let checksum = fnv1a64(&sum_input);
    let mut frame = Vec::with_capacity(HEADER + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Result<(u64, PlanKey, PartitionPlan), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let j = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    let version = j
        .get("alp-store")
        .and_then(Json::as_int)
        .ok_or("missing alp-store version")?;
    if version != STORE_VERSION {
        return Err(format!("unsupported store version {version}"));
    }
    let int = |field: &str| {
        j.get(field)
            .and_then(Json::as_int)
            .ok_or(format!("missing integer field {field:?}"))
    };
    let flag = |field: &str| {
        j.get(field)
            .and_then(Json::as_bool)
            .ok_or(format!("missing bool field {field:?}"))
    };
    let seq = int("seq")? as u64;
    let mesh = match (int("mesh_rows")?, int("mesh_cols")?) {
        (r, c) if r >= 0 && c >= 0 => Some((r as usize, c as usize)),
        _ => None,
    };
    let key = PlanKey {
        fingerprint: int("fingerprint")? as u64,
        processors: int("processors")?,
        mesh,
        checked: flag("checked")?,
        calibrated: flag("calibrated")?,
        skewed: flag("skewed")?,
        certified: flag("certified")?,
    };
    let plan_text = j
        .get("plan")
        .and_then(Json::as_str)
        .ok_or("missing plan field")?;
    let plan =
        PartitionPlan::from_json_str(plan_text).map_err(|e| format!("embedded plan: {e}"))?;
    Ok((seq, key, plan))
}

struct SegmentScan {
    /// Valid frames, in file order.
    entries: Vec<StoredEntry>,
    /// Offset just past the last valid frame.
    good_len: u64,
    /// Why the scan stopped early, if it did.
    bad: Option<String>,
}

/// Walk one segment's bytes; never fails, just stops at the first bad
/// frame.
fn scan_segment(buf: &[u8]) -> SegmentScan {
    let mut entries = Vec::new();
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return SegmentScan {
            entries,
            good_len: 0,
            bad: Some("bad segment header".to_string()),
        };
    }
    let mut pos = MAGIC.len();
    loop {
        if pos == buf.len() {
            return SegmentScan {
                entries,
                good_len: pos as u64,
                bad: None,
            };
        }
        let bad = |reason: String| SegmentScan {
            entries: Vec::new(),
            good_len: pos as u64,
            bad: Some(reason),
        };
        if buf.len() - pos < HEADER {
            let mut s = bad(format!(
                "truncated frame header ({} of {HEADER} bytes)",
                buf.len() - pos
            ));
            s.entries = entries;
            return s;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES {
            let mut s = bad(format!("implausible frame length {len}"));
            s.entries = entries;
            return s;
        }
        let end = pos + HEADER + len as usize;
        if end > buf.len() {
            let mut s = bad(format!(
                "truncated frame payload ({} of {len} bytes)",
                buf.len() - pos - HEADER
            ));
            s.entries = entries;
            return s;
        }
        let stored = u64::from_le_bytes(buf[pos + 4..pos + HEADER].try_into().expect("8 bytes"));
        let mut sum_input = Vec::with_capacity(4 + len as usize);
        sum_input.extend_from_slice(&buf[pos..pos + 4]);
        sum_input.extend_from_slice(&buf[pos + HEADER..end]);
        if fnv1a64(&sum_input) != stored {
            let mut s = bad("frame checksum mismatch".to_string());
            s.entries = entries;
            return s;
        }
        match decode_payload(&buf[pos + HEADER..end]) {
            Ok((seq, key, plan)) => entries.push(StoredEntry {
                seq,
                key,
                plan: Arc::new(plan),
            }),
            Err(reason) => {
                let mut s = bad(format!("undecodable frame payload: {reason}"));
                s.entries = entries;
                return s;
            }
        }
        pos = end;
    }
}

fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("segment-")
            .and_then(|s| s.strip_suffix(".alpj"))
        {
            if let Ok(n) = num.parse::<u64>() {
                indices.push(n);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Resolve the raw frame stream into the live set (latest seq per key).
fn resolve_live(all: Vec<StoredEntry>) -> Vec<StoredEntry> {
    let mut latest: HashMap<PlanKey, StoredEntry> = HashMap::new();
    for e in all {
        match latest.get(&e.key) {
            Some(prev) if prev.seq >= e.seq => {}
            _ => {
                latest.insert(e.key, e);
            }
        }
    }
    let mut live: Vec<StoredEntry> = latest.into_values().collect();
    live.sort_by_key(|e| e.seq);
    live
}

/// The append handle over a store directory.  Not internally
/// synchronized — the server wraps it in a mutex, and appends are
/// off the request fast path (journaling happens only on a computed
/// plan, which already paid a compile).
pub struct PlanStore {
    dir: PathBuf,
    cfg: StoreConfig,
    active: File,
    active_index: u64,
    /// Bytes physically in the active segment (including any torn tail
    /// from a failed append).
    active_len: u64,
    /// Bytes up to the last fully acknowledged frame; a failed append
    /// is rolled back to this watermark before the next one.
    committed_len: u64,
    next_seq: u64,
    ops: u64,
    appended: u64,
    hook: Option<WriteFaultHook>,
}

impl std::fmt::Debug for PlanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStore")
            .field("dir", &self.dir)
            .field("active_index", &self.active_index)
            .field("committed_len", &self.committed_len)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl PlanStore {
    /// Open (creating if needed) the store at `dir` with default
    /// tunables, repairing and reporting any corruption found.
    pub fn open(dir: &Path) -> io::Result<(PlanStore, RecoveryReport)> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// [`open`](PlanStore::open) with explicit tunables.
    pub fn open_with(dir: &Path, cfg: StoreConfig) -> io::Result<(PlanStore, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let report = recover(dir, true)?;
        let next_seq = report.live.iter().map(|e| e.seq + 1).max().unwrap_or(0);
        let indices = segment_indices(dir)?;
        let (active_index, active, active_len) = match indices.last() {
            Some(&last) => {
                let path = seg_path(dir, last);
                let len = fs::metadata(&path)?.len();
                let file = OpenOptions::new().append(true).open(&path)?;
                (last, file, len)
            }
            None => new_segment(dir, 1)?,
        };
        Ok((
            PlanStore {
                dir: dir.to_path_buf(),
                cfg,
                active,
                active_index,
                active_len,
                committed_len: active_len,
                next_seq,
                ops: 0,
                appended: 0,
                hook: None,
            },
            report,
        ))
    }

    /// Read-only integrity scan: decode every segment without
    /// repairing anything.  What `alp-cli store verify` runs.
    pub fn scan(dir: &Path) -> io::Result<RecoveryReport> {
        recover(dir, false)
    }

    /// The directory this store journals into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Frames appended through this handle (not counting replay).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Install a write-fault hook (chaos injection).
    pub fn set_write_fault(&mut self, hook: WriteFaultHook) {
        self.hook = Some(hook);
    }

    /// Journal one plan.  Returns the record's sequence number.  On
    /// error the frame may be partially on disk; the next append (or
    /// the next recovery) rolls the tail back to the last committed
    /// frame, so a failed append never corrupts its successors.
    pub fn append(&mut self, key: &PlanKey, plan: &PartitionPlan) -> io::Result<u64> {
        self.repair_tail()?;
        let seq = self.next_seq;
        let frame = encode_frame(&encode_payload(seq, key, plan));
        if self.committed_len + frame.len() as u64 > self.cfg.segment_bytes
            && self.committed_len > MAGIC.len() as u64
        {
            self.rotate()?;
        }
        self.write_faulty(&frame)?;
        self.committed_len = self.active_len;
        self.next_seq += 1;
        self.appended += 1;
        Ok(seq)
    }

    /// Flush the active segment to stable storage (fsync).  Appends
    /// deliberately skip this — a process crash cannot lose buffered
    /// `write`s, only power loss can — so the daemon calls it once, on
    /// graceful drain.
    pub fn sync(&self) -> io::Result<()> {
        self.active.sync_all()
    }

    /// Rewrite the live set into one fresh segment (tempfile + fsync +
    /// atomic rename), then delete every older segment.
    pub fn compact(&mut self, live: &[(PlanKey, Arc<PartitionPlan>)]) -> io::Result<CompactReport> {
        let bytes_before = segment_indices(&self.dir)?
            .iter()
            .map(|&i| fs::metadata(seg_path(&self.dir, i)).map(|m| m.len()))
            .sum::<io::Result<u64>>()?;
        let next_index = self.active_index + 1;
        let tmp = self.dir.join("compact.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(MAGIC)?;
            for (key, plan) in live {
                let seq = self.next_seq;
                self.next_seq += 1;
                f.write_all(&encode_frame(&encode_payload(seq, key, plan)))?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, seg_path(&self.dir, next_index))?;
        // Make the rename itself durable before deleting the old
        // segments (best effort: not every filesystem lets you fsync a
        // directory handle).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let mut removed = 0;
        for i in segment_indices(&self.dir)? {
            if i < next_index {
                fs::remove_file(seg_path(&self.dir, i))?;
                removed += 1;
            }
        }
        let path = seg_path(&self.dir, next_index);
        self.active_len = fs::metadata(&path)?.len();
        self.committed_len = self.active_len;
        self.active = OpenOptions::new().append(true).open(&path)?;
        self.active_index = next_index;
        Ok(CompactReport {
            segments_removed: removed,
            frames: live.len(),
            bytes_before,
            bytes_after: self.active_len,
        })
    }

    /// Roll a torn tail (from a previously failed append) back to the
    /// last committed frame.
    fn repair_tail(&mut self) -> io::Result<()> {
        if self.active_len != self.committed_len {
            self.active.set_len(self.committed_len)?;
            self.active_len = self.committed_len;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        let (index, file, len) = new_segment(&self.dir, self.active_index + 1)?;
        self.active = file;
        self.active_index = index;
        self.active_len = len;
        self.committed_len = len;
        Ok(())
    }

    /// One `write` call with transparent EINTR/EAGAIN retry; tracks
    /// how far the physical file has advanced.
    fn write_some(&mut self, chunk: &[u8]) -> io::Result<usize> {
        loop {
            match self.active.write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.active_len += n as u64;
                    return Ok(n);
                }
                Err(e) if retriable(e.kind()) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Write a whole frame, consulting the fault hook before every
    /// operation.  Injected short writes and EINTR/EAGAIN are absorbed
    /// the way a robust writer absorbs the real thing; injected hard
    /// errors abort mid-frame, leaving the torn tail recovery handles.
    fn write_faulty(&mut self, frame: &[u8]) -> io::Result<()> {
        let hook = self.hook.clone();
        let mut buf = frame;
        while !buf.is_empty() {
            let op = self.ops;
            self.ops += 1;
            let fault = hook.as_ref().and_then(|h| h(op, buf.len()));
            match fault {
                Some(WriteFault::Short(keep)) => {
                    let keep = keep.min(buf.len());
                    if keep > 0 {
                        let n = self.write_some(&buf[..keep])?;
                        buf = &buf[n..];
                    }
                }
                Some(WriteFault::Err(kind)) if retriable(kind) => {}
                Some(WriteFault::Err(kind)) => {
                    return Err(io::Error::new(kind, "injected store write fault"))
                }
                None => {
                    let n = self.write_some(buf)?;
                    buf = &buf[n..];
                }
            }
        }
        Ok(())
    }
}

fn new_segment(dir: &Path, index: u64) -> io::Result<(u64, File, u64)> {
    let path = seg_path(dir, index);
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)?;
    file.write_all(MAGIC)?;
    Ok((index, file, MAGIC.len() as u64))
}

/// Scan every segment; with `repair` also quarantine bad tails and
/// truncate segments back to their last good frame.
fn recover(dir: &Path, repair: bool) -> io::Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    if !dir.exists() {
        return Ok(report);
    }
    let mut all = Vec::new();
    for index in segment_indices(dir)? {
        report.segments += 1;
        let path = seg_path(dir, index);
        let buf = fs::read(&path)?;
        let scan = scan_segment(&buf);
        report.frames += scan.entries.len() as u64;
        report.bytes += scan.good_len;
        all.extend(scan.entries);
        if let Some(reason) = scan.bad {
            let event = QuarantineEvent {
                segment: index,
                offset: scan.good_len,
                bytes: buf.len() as u64 - scan.good_len,
                reason,
            };
            if repair {
                quarantine(dir, &path, index, &buf, scan.good_len)?;
            }
            report.quarantined.push(event);
        }
    }
    report.live = resolve_live(all);
    Ok(report)
}

/// Copy a segment's bad tail to a sidecar for post-mortem, then
/// truncate the segment back to its last good frame.  A segment whose
/// header itself is bad (good_len 0) is moved aside wholesale.
fn quarantine(dir: &Path, path: &Path, index: u64, buf: &[u8], good_len: u64) -> io::Result<()> {
    let qdir = dir.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let sidecar = qdir.join(format!("segment-{index:06}-at-{good_len}.bad"));
    fs::write(&sidecar, &buf[good_len as usize..])?;
    if good_len == 0 {
        fs::remove_file(path)?;
    } else {
        OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(good_len)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LegalityVerdict;
    use alp_loopir::parse;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "alp-store-unit-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn key(fp: u64) -> PlanKey {
        PlanKey {
            fingerprint: fp,
            processors: 16,
            mesh: None,
            checked: true,
            calibrated: false,
            skewed: false,
            certified: false,
        }
    }

    fn plan(trip: i128) -> PartitionPlan {
        let nest = parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
        PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
    }

    #[test]
    fn append_and_replay_round_trips_byte_stably() {
        let dir = tmp_dir("roundtrip");
        let (mut store, report) = PlanStore::open(&dir).unwrap();
        assert_eq!(report.replayed(), 0);
        let plans: Vec<PartitionPlan> = (0..4).map(|i| plan(31 + i)).collect();
        for (i, p) in plans.iter().enumerate() {
            store.append(&key(i as u64), p).unwrap();
        }
        drop(store);
        let (_, report) = PlanStore::open(&dir).unwrap();
        assert!(!report.corrupt());
        assert_eq!(report.replayed(), 4);
        for (i, entry) in report.live.iter().enumerate() {
            assert_eq!(entry.key, key(i as u64));
            assert_eq!(
                entry.plan.to_json_string(),
                plans[i].to_json_string(),
                "replayed plan re-encodes to the exact bytes that were stored"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_seq_supersedes_earlier_for_the_same_key() {
        let dir = tmp_dir("supersede");
        let (mut store, _) = PlanStore::open(&dir).unwrap();
        store.append(&key(9), &plan(63)).unwrap();
        store.append(&key(9), &plan(127)).unwrap();
        drop(store);
        let (_, report) = PlanStore::open(&dir).unwrap();
        assert_eq!(report.frames, 2);
        assert_eq!(report.replayed(), 1);
        assert_eq!(
            report.live[0].plan.to_json_string(),
            plan(127).to_json_string()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_replay_sees_all() {
        let dir = tmp_dir("rotate");
        let cfg = StoreConfig { segment_bytes: 1 };
        let (mut store, _) = PlanStore::open_with(&dir, cfg).unwrap();
        for fp in 0..5u64 {
            store.append(&key(fp), &plan(63)).unwrap();
        }
        drop(store);
        assert!(
            segment_indices(&dir).unwrap().len() >= 5,
            "1-byte budget forces one frame per segment"
        );
        let (_, report) = PlanStore::open(&dir).unwrap();
        assert!(!report.corrupt());
        assert_eq!(report.replayed(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_collapses_to_one_segment_and_preserves_live_bytes() {
        let dir = tmp_dir("compact");
        let cfg = StoreConfig { segment_bytes: 1 };
        let (mut store, _) = PlanStore::open_with(&dir, cfg).unwrap();
        for fp in 0..4u64 {
            store.append(&key(fp), &plan(63)).unwrap();
        }
        // Two superseded rewrites bloat the journal.
        store.append(&key(0), &plan(127)).unwrap();
        store.append(&key(0), &plan(255)).unwrap();
        let live: Vec<(PlanKey, Arc<PartitionPlan>)> = PlanStore::scan(&dir)
            .unwrap()
            .live
            .into_iter()
            .map(|e| (e.key, e.plan))
            .collect();
        let report = store.compact(&live).unwrap();
        assert_eq!(report.frames, 4);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(segment_indices(&dir).unwrap().len(), 1);
        // Appends continue into the compacted segment; replay agrees.
        store.append(&key(40), &plan(63)).unwrap();
        drop(store);
        let (_, after) = PlanStore::open(&dir).unwrap();
        assert!(!after.corrupt());
        assert_eq!(after.replayed(), 5);
        let k0 = after.live.iter().find(|e| e.key == key(0)).unwrap();
        assert_eq!(k0.plan.to_json_string(), plan(255).to_json_string());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_writes_and_eintr_are_absorbed() {
        let dir = tmp_dir("softfaults");
        let (mut store, _) = PlanStore::open(&dir).unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        store.set_write_fault(Arc::new(move |op, _| {
            f.fetch_add(1, Ordering::Relaxed);
            match op {
                0 => Some(WriteFault::Short(3)),
                1 => Some(WriteFault::Err(io::ErrorKind::Interrupted)),
                2 => Some(WriteFault::Err(io::ErrorKind::WouldBlock)),
                3 => Some(WriteFault::Short(1)),
                _ => None,
            }
        }));
        store.append(&key(1), &plan(63)).unwrap();
        assert!(fired.load(Ordering::Relaxed) >= 5, "hook consulted per op");
        drop(store);
        let (_, report) = PlanStore::open(&dir).unwrap();
        assert!(!report.corrupt());
        assert_eq!(report.replayed(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_write_fault_leaves_a_torn_tail_that_the_next_append_repairs() {
        let dir = tmp_dir("hardfault");
        let (mut store, _) = PlanStore::open(&dir).unwrap();
        store.append(&key(1), &plan(63)).unwrap();
        store.set_write_fault(Arc::new(|op, _| match op {
            // Land a partial prefix, then die: a torn frame on disk.
            0 => Some(WriteFault::Short(7)),
            1 => Some(WriteFault::Err(io::ErrorKind::ConnectionReset)),
            _ => None,
        }));
        let err = store.append(&key(2), &plan(127)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The next append rolls the tail back and succeeds.
        store.append(&key(3), &plan(255)).unwrap();
        drop(store);
        let (_, report) = PlanStore::open(&dir).unwrap();
        assert!(!report.corrupt(), "torn tail was repaired in-process");
        assert_eq!(report.replayed(), 2);
        assert!(report.live.iter().all(|e| e.key != key(2)));
        let _ = fs::remove_dir_all(&dir);
    }
}
