//! Stress and property tests for the sharded, coalescing plan cache.
//!
//! These run under `RUST_TEST_THREADS=2` in CI like the other
//! concurrency suites; the parallelism under test comes from the
//! threads each test spawns, not from the test harness.

use alp_loopir::parse;
use alp_plan::{Fetched, LegalityVerdict, PartitionPlan, PlanError, PlanKey, ShardedPlanCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

fn key(fp: u64) -> PlanKey {
    PlanKey {
        fingerprint: fp,
        processors: 16,
        mesh: None,
        checked: true,
        calibrated: false,
        skewed: false,
        certified: false,
    }
}

fn build_plan(trip: i128) -> PartitionPlan {
    let nest = parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
    PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
}

/// M threads hammer K hot fingerprints; every key is compiled exactly
/// once, every requester gets the same Arc'd plan, and hit + coalesced
/// + computed accounts for every request.
#[test]
fn exactly_one_compile_per_hot_key() {
    const THREADS: usize = 16;
    const KEYS: u64 = 8;
    const ROUNDS: usize = 32;

    let cache: Arc<ShardedPlanCache> = Arc::new(ShardedPlanCache::new(4, 64));
    let compiles: Arc<Vec<AtomicUsize>> =
        Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&compiles);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut seen: HashMap<u64, Arc<PartitionPlan>> = HashMap::new();
                for round in 0..ROUNDS {
                    // Walk the keys in a thread-dependent order so
                    // leaders and waiters interleave differently per
                    // thread.
                    let fp = ((t + round) as u64) % KEYS;
                    let c = Arc::clone(&compiles);
                    let (plan, _how) = cache
                        .get_or_compute(key(fp), move || {
                            c[fp as usize].fetch_add(1, Ordering::SeqCst);
                            // Widen the in-flight window so coalescing
                            // actually happens.
                            thread::sleep(Duration::from_millis(5));
                            Ok(build_plan(63 + fp as i128))
                        })
                        .expect("build succeeds");
                    if let Some(prev) = seen.get(&fp) {
                        assert!(
                            Arc::ptr_eq(prev, &plan),
                            "thread {t} saw two distinct plans for fp {fp}"
                        );
                    }
                    seen.insert(fp, plan);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked or deadlocked");
    }

    for fp in 0..KEYS {
        assert_eq!(
            compiles[fp as usize].load(Ordering::SeqCst),
            1,
            "fingerprint {fp} compiled more than once"
        );
    }
    let s = cache.stats();
    assert_eq!(s.misses, KEYS, "one leader per key");
    assert_eq!(
        s.hits + s.misses + s.coalesced,
        (THREADS * ROUNDS) as u64,
        "every request accounted for"
    );
    assert_eq!(s.evictions, 0, "capacity 64 never evicts 8 keys");
}

/// Concurrent requests across many distinct keys on few shards: shard
/// contention never deadlocks, and a slow compile on one key does not
/// block hits for other keys on the same shard (the compile runs
/// outside the shard lock).
#[test]
fn slow_compile_does_not_block_sibling_keys() {
    let cache: Arc<ShardedPlanCache> = Arc::new(ShardedPlanCache::new(1, 32));
    // Pre-populate one key on the single shard.
    cache
        .get_or_compute(key(100), || Ok(build_plan(63)))
        .unwrap();

    let slow_started = Arc::new(Barrier::new(2));
    let slow = {
        let cache = Arc::clone(&cache);
        let started = Arc::clone(&slow_started);
        thread::spawn(move || {
            cache
                .get_or_compute(key(200), move || {
                    started.wait();
                    thread::sleep(Duration::from_millis(200));
                    Ok(build_plan(127))
                })
                .unwrap()
        })
    };
    slow_started.wait();
    // While key 200's compile holds no lock, key 100 must still hit.
    let t0 = std::time::Instant::now();
    assert!(cache.get_cached(&key(100)).is_some());
    let (_, how) = cache
        .get_or_compute(key(100), || panic!("must be a hit"))
        .unwrap();
    assert_eq!(how, Fetched::Hit);
    assert!(
        t0.elapsed() < Duration::from_millis(150),
        "hit was serialized behind the slow compile"
    );
    slow.join().unwrap();
}

/// Per-shard LRU eviction: overflow a known shard set and confirm the
/// least-recently-used keys (and only those) are gone, while total
/// occupancy respects the per-shard capacity.
#[test]
fn lru_eviction_is_per_shard_correct() {
    // 1 shard × capacity 4 makes eviction order fully observable.
    let cache: ShardedPlanCache = ShardedPlanCache::new(1, 4);
    for fp in 0..4u64 {
        cache
            .get_or_compute(key(fp), || Ok(build_plan(63)))
            .unwrap();
    }
    // Refresh 0 and 1; 2 becomes LRU.
    assert!(cache.get_cached(&key(0)).is_some());
    assert!(cache.get_cached(&key(1)).is_some());
    cache
        .get_or_compute(key(3), || panic!("hit"))
        .expect("hit refreshes 3");
    cache
        .get_or_compute(key(4), || Ok(build_plan(127)))
        .unwrap();
    assert_eq!(cache.len(), 4, "capacity respected");
    assert_eq!(cache.stats().evictions, 1);
    assert!(cache.get_cached(&key(2)).is_none(), "LRU victim evicted");
    for fp in [0u64, 1, 3, 4] {
        assert!(cache.get_cached(&key(fp)).is_some(), "fp {fp} survives");
    }
}

/// Failures propagate to every coalesced waiter but are never cached;
/// the key stays retryable.
#[test]
fn coalesced_waiters_share_the_leaders_error() {
    const WAITERS: usize = 8;
    let cache: Arc<ShardedPlanCache> = Arc::new(ShardedPlanCache::new(2, 8));
    let in_compile = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));

    let leader = {
        let cache = Arc::clone(&cache);
        let in_compile = Arc::clone(&in_compile);
        let release = Arc::clone(&release);
        thread::spawn(move || {
            cache.get_or_compute(key(42), move || {
                in_compile.wait();
                release.wait();
                Err(PlanError::Infeasible("injected".into()))
            })
        })
    };
    in_compile.wait(); // leader is inside make(): slot is Pending
    let waiters: Vec<_> = (0..WAITERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.get_or_compute(key(42), || panic!("never the leader")))
        })
        .collect();
    // Give the waiters time to block on the in-flight slot, then let
    // the leader fail.
    thread::sleep(Duration::from_millis(50));
    release.wait();

    let leader_result = leader.join().unwrap();
    assert!(matches!(leader_result, Err(PlanError::Infeasible(_))));
    let mut coalesced_errors = 0;
    for w in waiters {
        match w.join().unwrap() {
            Err(PlanError::Infeasible(_)) => coalesced_errors += 1,
            Ok((_, Fetched::Computed)) => {
                panic!("a waiter compiled while the leader was in flight")
            }
            other => panic!("unexpected waiter outcome: {other:?}"),
        }
    }
    assert_eq!(coalesced_errors, WAITERS, "every waiter saw the error");
    assert!(cache.is_empty(), "errors are not cached");
    let (_, how) = cache
        .get_or_compute(key(42), || Ok(build_plan(63)))
        .unwrap();
    assert_eq!(how, Fetched::Computed, "key retryable after failure");
}

/// Mixed random workload under contention: interleaved hot hits, cold
/// misses, and evictions settle with coherent global counters and no
/// deadlock.  splitmix64 keeps the schedule deterministic per thread.
#[test]
fn randomized_mixed_workload_settles_coherently() {
    const THREADS: usize = 12;
    const OPS: usize = 200;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    let cache: Arc<ShardedPlanCache> = Arc::new(ShardedPlanCache::new(4, 16));
    let requests = Arc::new(AtomicUsize::new(0));
    let plans_by_fp: Arc<Mutex<HashMap<u64, i128>>> = Arc::new(Mutex::new(HashMap::new()));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let requests = Arc::clone(&requests);
            let plans_by_fp = Arc::clone(&plans_by_fp);
            thread::spawn(move || {
                let mut rng = 0x5eed ^ (t as u64) << 17;
                for _ in 0..OPS {
                    // 40 fingerprints over 16 slots: steady eviction
                    // pressure, Zipf-ish skew toward low fingerprints.
                    let r = splitmix64(&mut rng);
                    // Decide hot/cold and pick the fingerprint from
                    // disjoint bit ranges, so the cold tail really
                    // spans all 40 keys.
                    let fp = if !r.is_multiple_of(4) {
                        (r >> 8) % 6
                    } else {
                        (r >> 8) % 40
                    };
                    let trip = 63 + (fp as i128) * 64;
                    let (plan, _) = cache
                        .get_or_compute(key(fp), move || Ok(build_plan(trip)))
                        .expect("build succeeds");
                    // Every plan handed out for fp must partition the
                    // trip count we associate with fp (the embedded
                    // canonical source records it).
                    let expected = *plans_by_fp.lock().unwrap().entry(fp).or_insert(trip);
                    assert!(
                        plan.source.contains(&expected.to_string()),
                        "plan content aliased across fingerprints: fp {fp} expected trip \
                         {expected}, got source {:?}",
                        plan.source
                    );
                    requests.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no deadlock, no panic");
    }

    let s = cache.stats();
    assert_eq!(
        s.hits + s.misses + s.coalesced,
        (THREADS * OPS) as u64,
        "counters account for every request"
    );
    assert!(s.hits > 0, "hot keys hit");
    assert!(s.misses > 0, "cold keys missed");
    assert!(s.evictions > 0, "40 keys over 16 slots must evict");
    assert!(cache.len() <= 16, "occupancy bounded by capacity");
}
