//! Exhaustive torn-tail sweep for the durable plan store.
//!
//! A `kill -9` (or power cut) can stop a journal write at *any* byte.
//! This test materializes every possible cut inside the final frame —
//! mid length-prefix, mid checksum, mid payload, and the clean
//! boundary — and proves the recovery invariant at each: at most the
//! last frame is lost, every earlier record replays byte-stably, and
//! the bad tail is quarantined (never a fatal error, never a second
//! lost frame).

use alp_plan::{LegalityVerdict, PartitionPlan, PlanKey, PlanStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "alp-store-trunc-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn key(fp: u64) -> PlanKey {
    PlanKey {
        fingerprint: fp,
        processors: 16,
        mesh: None,
        checked: true,
        calibrated: false,
        skewed: false,
        certified: false,
    }
}

fn plan(trip: i128) -> PartitionPlan {
    let nest = alp_loopir::parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
    PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
}

#[test]
fn every_cut_inside_the_last_frame_loses_at_most_that_frame() {
    // Build the pristine journal once: 3 frames in one segment.
    let master = tmp_dir("master");
    let (mut store, _) = PlanStore::open(&master).unwrap();
    let plans: Vec<PartitionPlan> = (0..3).map(|i| plan(31 + i)).collect();
    let mut frame_ends = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        store.append(&key(i as u64), p).unwrap();
        frame_ends.push(store_len(&master));
    }
    drop(store);
    let expected: Vec<String> = plans.iter().map(|p| p.to_json_string()).collect();
    let second_frame_end = frame_ends[1];
    let file_len = frame_ends[2];

    // Sample every cut in the last frame for short frames; stride for
    // long ones so the sweep stays fast while still hitting the length
    // prefix, the checksum, and payload bytes.
    let tail = file_len - second_frame_end;
    let stride = (tail / 97).max(1);
    let mut cut = second_frame_end;
    while cut < file_len {
        let dir = tmp_dir(&format!("cut{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        let seg = "segment-000001.alpj";
        let bytes = std::fs::read(master.join(seg)).unwrap();
        std::fs::write(dir.join(seg), &bytes[..cut as usize]).unwrap();

        let report = PlanStore::scan(&dir).unwrap();
        assert_eq!(
            report.replayed(),
            2,
            "cut at byte {cut}: exactly the torn last frame is lost"
        );
        let truncated_tail = cut > second_frame_end;
        assert_eq!(
            report.corrupt(),
            truncated_tail,
            "cut at byte {cut}: a partial frame is quarantined, a clean \
             boundary is not"
        );
        let mut got: Vec<(u64, String)> = report
            .live
            .iter()
            .map(|e| (e.key.fingerprint, e.plan.to_json_string()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![(0, expected[0].clone()), (1, expected[1].clone())],
            "cut at byte {cut}: survivors replay byte-stably"
        );

        // `open` (repair mode) on the same truncated dir must succeed,
        // quarantine the tail, and accept new appends.
        let (mut repaired, _) = PlanStore::open(&dir).unwrap();
        repaired.append(&key(9), &plans[2]).unwrap();
        drop(repaired);
        let after = PlanStore::scan(&dir).unwrap();
        assert!(!after.corrupt(), "cut at byte {cut}: repair converged");
        assert_eq!(
            after.replayed(),
            3,
            "cut at byte {cut}: append after repair"
        );

        let _ = std::fs::remove_dir_all(&dir);
        cut += stride;
    }
    let _ = std::fs::remove_dir_all(&master);
}

fn store_len(dir: &std::path::Path) -> u64 {
    std::fs::metadata(dir.join("segment-000001.alpj"))
        .unwrap()
        .len()
}
