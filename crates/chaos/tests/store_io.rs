//! Differential chaos suite for the durable plan store's write path.
//!
//! For a sweep of seeds, the same append workload runs twice: once
//! clean, once with a seeded [`IoFaultPlan`] wired into the store's
//! write hook (short writes, EINTR/EAGAIN, hard resets, torn frames).
//! The invariant under test is the store's durability contract:
//!
//! * transient faults (short writes, EINTR, EAGAIN) are absorbed — the
//!   append still acks, and the journal it leaves is **byte-identical**
//!   to the fault-free journal's record;
//! * hard faults fail that one append with the honest `io::Error`, and
//!   a bounded retry converges (the next append repairs the torn
//!   tail);
//! * after any mix of the above, replay recovers exactly the acked
//!   records — never a corrupted survivor, never a lost ack.

use alp_chaos::IoFaultPlan;
use alp_loopir::parse;
use alp_plan::{LegalityVerdict, PartitionPlan, PlanKey, PlanStore};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "alp-chaos-store-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn key(fp: u64) -> PlanKey {
    PlanKey {
        fingerprint: fp,
        processors: 16,
        mesh: None,
        checked: true,
        calibrated: false,
        skewed: false,
        certified: false,
    }
}

fn plan(trip: i128) -> PartitionPlan {
    let nest = parse(&format!("doall (i, 0, {trip}) {{ A[i] = A[i]; }}")).unwrap();
    PartitionPlan::build(&nest, 4, None, LegalityVerdict::Unchecked).unwrap()
}

/// Run the workload, returning `fingerprint -> plan JSON` for every
/// append that acked.  With `faults`, each failed append is retried a
/// bounded number of times (the resilient-client discipline); an
/// append that exhausts its retries is simply not in the acked map.
fn run_workload(dir: &std::path::Path, faults: Option<Arc<IoFaultPlan>>) -> BTreeMap<u64, String> {
    let (mut store, report) = PlanStore::open(dir).unwrap();
    assert_eq!(report.replayed(), 0, "fresh dir");
    if let Some(plan) = &faults {
        store.set_write_fault(plan.store_hook());
    }
    let mut acked = BTreeMap::new();
    for i in 0..8u64 {
        let p = plan(31 + i as i128);
        let mut ok = false;
        for _attempt in 0..3 {
            if store.append(&key(i), &p).is_ok() {
                ok = true;
                break;
            }
        }
        if ok {
            acked.insert(i, p.to_json_string());
        }
    }
    acked
}

#[test]
fn seeded_io_faults_never_lose_an_acked_append() {
    let reference = {
        let dir = tmp_dir("reference");
        let acked = run_workload(&dir, None);
        assert_eq!(acked.len(), 8, "clean run acks everything");
        let _ = std::fs::remove_dir_all(&dir);
        acked
    };

    for seed in 0..16u64 {
        let faults = Arc::new(IoFaultPlan::seeded(seed, 24));
        let dir = tmp_dir(&format!("seed{seed}"));
        let acked = run_workload(&dir, Some(faults.clone()));

        // Replay after the faulty run: every ack survives, byte-stable
        // against the fault-free journal's record of the same plan.
        let report = PlanStore::scan(&dir).unwrap();
        let live: BTreeMap<u64, String> = report
            .live
            .iter()
            .map(|e| (e.key.fingerprint, e.plan.to_json_string()))
            .collect();
        for (fp, json) in &acked {
            let got = live.get(fp).unwrap_or_else(|| {
                panic!(
                    "seed {seed}: acked append {fp} lost (faults: {:?})",
                    faults.schedule()
                )
            });
            assert_eq!(got, json, "seed {seed}: acked record mutated");
            assert_eq!(
                got,
                reference.get(fp).unwrap(),
                "seed {seed}: differs from the fault-free answer"
            );
        }
        // An un-acked append may leave a torn tail; recovery quarantines
        // it rather than failing, and never quarantines a full journal's
        // worth.
        for q in &report.quarantined {
            assert!(q.bytes > 0, "seed {seed}: empty quarantine event {q}");
        }
        // The retry discipline converges: at most one append (the one a
        // hard fault chain kept killing) may be missing.
        assert!(
            acked.len() >= 7,
            "seed {seed}: {} of 8 acked; schedule {:?}",
            acked.len(),
            faults.schedule()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_after_faults_is_idempotent() {
    // Scanning a repaired store twice yields identical live sets —
    // recovery itself must not mutate what it reads (scan is the
    // read-only path; open repairs, then a second open sees a clean
    // store).
    let seed = 11u64;
    let faults = Arc::new(IoFaultPlan::seeded(seed, 24));
    let dir = tmp_dir("idempotent");
    let _ = run_workload(&dir, Some(faults));
    let (store, first) = PlanStore::open(&dir).unwrap();
    drop(store);
    let (store, second) = PlanStore::open(&dir).unwrap();
    drop(store);
    assert!(!second.corrupt(), "first open repaired the tail");
    assert_eq!(first.replayed(), second.replayed());
    let a: Vec<_> = first
        .live
        .iter()
        .map(|e| (e.key, e.plan.to_json_string()))
        .collect();
    let b: Vec<_> = second
        .live
        .iter()
        .map(|e| (e.key, e.plan.to_json_string()))
        .collect();
    assert_eq!(a, b, "repair converged after one pass");
    let _ = std::fs::remove_dir_all(&dir);
}
