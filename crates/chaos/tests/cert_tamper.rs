//! Certificate-tampering chaos suite.
//!
//! Every [`CertTamper`] corruption of a certified plan artifact must be
//! rejected with the stable `ALP0011` code — structural damage (a stale
//! or truncated certificate block) dies at decode, semantic damage (a
//! flipped verdict bit in otherwise well-formed JSON) dies at the
//! re-checker's recomputation — and none of them may ever configure the
//! relaxed-store fast path.  Unlike the fault-injection suite this one
//! needs no runtime hooks, so it runs with or without the `chaos`
//! feature.

use alp::prelude::*;
use alp::{AlpError, Compiler};
use alp_chaos::{tamper_certificate, CertTamper};

/// A disjoint stencil whose certificate proves all four facts — the
/// exact situation where a forged certificate would otherwise unlock
/// the non-atomic store path.
fn certified_plan_json() -> String {
    let nest = parse("doall (i, 1, 16) { doall (j, 1, 16) { A[i, j] = B[i, j] + B[i+1, j+3]; } }")
        .expect("stencil parses");
    let plan = Compiler::new(16).plan(&nest).expect("plan builds");
    let report = certify(&plan).expect("stencil certifies");
    assert!(report.unlocks_fastpath(), "fixture must prove disjointness");
    plan.with_certificate(report.certificate).to_json_string()
}

#[test]
fn every_tamper_kind_is_rejected_with_alp0011() {
    let honest = certified_plan_json();
    let plan = PartitionPlan::from_json_str(&honest).expect("honest plan decodes");
    recheck(&plan).expect("honest certificate re-verifies");

    for kind in CertTamper::ALL {
        let bad = tamper_certificate(&honest, kind).expect("certified plan tampers");
        assert_ne!(bad, honest, "{kind:?} must change the document");
        let err: AlpError = match PartitionPlan::from_json_str(&bad) {
            Err(e) => e.into(),
            Ok(p) => recheck(&p)
                .map(|_| ())
                .expect_err(&format!("{kind:?} must be rejected"))
                .into(),
        };
        assert_eq!(err.code(), "ALP0011", "{kind:?}: {err}");
        assert!(!err.to_string().is_empty(), "{kind:?}: empty diagnostic");
    }
}

#[test]
fn flipped_verdict_bit_aborts_compiler_execute() {
    // The full production path: a semantically tampered plan decodes,
    // compiles, and then `Compiler::execute` re-checks the certificate
    // and refuses to run — the forged disjointness bit never reaches
    // `Executor::apply_certificate`.
    let honest = certified_plan_json();
    let bad = tamper_certificate(&honest, CertTamper::FlipDisjoint).expect("tamper applies");
    let plan = PartitionPlan::from_json_str(&bad).expect("semantic tamper survives decode");

    let compiler = Compiler::new(16);
    let result = compiler
        .compile_from_plan(&plan)
        .expect("tampered plan still compiles");
    let err = compiler
        .execute(&result, &alp_runtime::ExecOptions::default(), 1)
        .expect_err("execute must refuse a tampered certificate");
    assert_eq!(err.code(), "ALP0011", "{err}");
    assert!(err.to_string().contains("tampered"), "{err}");
}
