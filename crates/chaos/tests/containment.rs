//! Differential containment suite: every injected fault class must
//! terminate the run with all worker threads joined and the documented
//! structured error / `ALP000x` code — and a single contained panic
//! with retry enabled must still bitwise-match the sequential
//! reference.
//!
//! None of these tests sleeps longer than 300 ms; the suite is safe
//! under `RUST_TEST_THREADS=2`.

#![cfg(feature = "chaos")]

use alp::AlpError;
use alp_chaos::FaultPlan;
use alp_runtime::{CancelToken, ExecOptions, Executor, RuntimeError, Schedule};
use std::sync::Arc;
use std::time::Duration;

/// A retry-safe 2-D stencil (plain assigns, disjoint read/write arrays)
/// on a 2×2 grid — 4 tiles.
fn stencil() -> Executor {
    let nest = alp_loopir::parse(
        "doall (i, 0, 15) { doall (j, 0, 15) { A[i, j] = B[i, j] + B[i+1, j+1]; } }",
    )
    .unwrap();
    Executor::from_grid(&nest, &[2, 2]).unwrap()
}

/// An accumulate nest (never retry-safe) on 4 tiles.
fn accumulator() -> Executor {
    let nest =
        alp_loopir::parse("doseq (t, 0, 1) { doall (i, 0, 63) { l$S[0] = l$S[0] + B[i]; } }")
            .unwrap();
    Executor::from_grid(&nest, &[4]).unwrap()
}

fn with_faults(plan: FaultPlan) -> (ExecOptions, Arc<FaultPlan>) {
    let plan = Arc::new(plan);
    let opts = ExecOptions {
        fault_injector: Some(plan.clone()),
        ..ExecOptions::default()
    };
    (opts, plan)
}

#[test]
fn injected_panic_is_contained_as_tile_failed() {
    let exec = stencil();
    let (opts, plan) = with_faults(FaultPlan::new().with_panic(2, 0));
    // run() returns (rather than hanging or aborting): every worker
    // joined, and the error names the failing tile and repetition.
    let err = exec.run(&exec.seeded_store(1), &opts).unwrap_err();
    match &err {
        RuntimeError::TileFailed { tile, rep, payload } => {
            assert_eq!(*tile, 2);
            assert_eq!(*rep, 0);
            assert!(payload.contains("injected panic"), "{payload}");
        }
        e => panic!("wrong error: {e}"),
    }
    assert_eq!(plan.fired_count(), 1);
    assert_eq!(AlpError::from(err).code(), "ALP0008");
}

#[test]
fn single_fault_retry_matches_reference_bitwise() {
    let exec = stencil();
    assert!(exec.retry_safe());
    let (opts, plan) = with_faults(FaultPlan::new().with_panic(1, 0));
    let opts = ExecOptions {
        max_retries: 1,
        ..opts
    };
    // The fault is one-shot: the in-place retry re-runs tile 1 cleanly
    // and the run must be indistinguishable from a fault-free one.
    let outcome = exec.verify(42, &opts).unwrap();
    assert!(outcome.matches_reference);
    assert_eq!(outcome.report.retries, 1);
    assert_eq!(outcome.report.total_iterations, 256);
    assert_eq!(plan.fired_count(), 1);
}

#[test]
fn accumulate_nest_fails_fast_despite_retry_budget() {
    // A partially executed accumulate tile has already folded deltas
    // into shared cells; retrying would double-count them, so the
    // executor must fail fast even with retries available.
    let exec = accumulator();
    assert!(!exec.retry_safe());
    let (opts, _plan) = with_faults(FaultPlan::new().with_panic(1, 0));
    let opts = ExecOptions {
        max_retries: 3,
        ..opts
    };
    let err = exec.run(&exec.seeded_store(2), &opts).unwrap_err();
    assert!(
        matches!(
            err,
            RuntimeError::TileFailed {
                tile: 1,
                rep: 0,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn later_repetition_panic_is_never_retried() {
    // Even on a retry-safe nest, only first-repetition tiles may be
    // retried: by rep 1 other tiles' rep-0 writes are visible and the
    // conservative rule refuses to reason about them.
    let nest = alp_loopir::parse("doseq (t, 0, 1) { doall (i, 0, 15) { A[i] = B[i] + B[i+1]; } }")
        .unwrap();
    let exec = Executor::from_grid(&nest, &[4]).unwrap();
    assert!(exec.retry_safe());
    let (opts, _plan) = with_faults(FaultPlan::new().with_panic(2, 1));
    let opts = ExecOptions {
        max_retries: 3,
        ..opts
    };
    let err = exec.run(&exec.seeded_store(3), &opts).unwrap_err();
    assert!(
        matches!(
            err,
            RuntimeError::TileFailed {
                tile: 2,
                rep: 1,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn injected_delay_trips_the_deadline() {
    let exec = stencil();
    let (opts, plan) = with_faults(FaultPlan::new().with_delay(0, 0, Duration::from_millis(300)));
    let deadline = Duration::from_millis(100);
    let opts = ExecOptions {
        deadline: Some(deadline),
        threads: 1,
        ..opts
    };
    let err = exec.run(&exec.seeded_store(4), &opts).unwrap_err();
    assert_eq!(err, RuntimeError::DeadlineExceeded { deadline });
    assert_eq!(plan.fired_count(), 1);
    assert_eq!(AlpError::from(err).code(), "ALP0007");
}

#[test]
fn cancellation_interrupts_a_delayed_run() {
    let exec = stencil();
    let (opts, _plan) = with_faults(FaultPlan::new().with_delay(0, 0, Duration::from_millis(200)));
    let token = CancelToken::new();
    let opts = ExecOptions {
        cancel: Some(token.clone()),
        threads: 1,
        ..opts
    };
    let store = exec.seeded_store(5);
    let err = crossbeam::scope(|s| {
        let h = s.spawn(|_| exec.run(&store, &opts).unwrap_err());
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
        h.join().unwrap()
    })
    .unwrap();
    assert_eq!(err, RuntimeError::Cancelled);
    assert_eq!(AlpError::from(err).code(), "ALP0007");
}

#[test]
fn flipped_output_is_caught_by_differential_validation() {
    let exec = stencil();
    // Flip one element after the LAST tile of a single-threaded run:
    // nothing executes afterwards, so the corruption survives to the
    // final snapshot and only the bitwise check can see it.
    let (opts, plan) = with_faults(FaultPlan::new().with_flip(3, 0, 0));
    let opts = ExecOptions { threads: 1, ..opts };
    let outcome = exec.verify(6, &opts).unwrap();
    assert_eq!(plan.fired_count(), 1);
    assert!(
        !outcome.matches_reference,
        "a flipped bit must fail the bitwise check"
    );
    // The identical run without the fault passes, pinning the cause.
    let clean = exec
        .verify(
            6,
            &ExecOptions {
                threads: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap();
    assert!(clean.matches_reference);
}

#[test]
fn dynamic_schedule_contains_faults_too() {
    let exec = stencil();
    let (opts, _plan) = with_faults(FaultPlan::new().with_panic(3, 0));
    let opts = ExecOptions {
        schedule: Schedule::Dynamic,
        threads: 2,
        ..opts
    };
    let err = exec.run(&exec.seeded_store(7), &opts).unwrap_err();
    assert!(
        matches!(
            err,
            RuntimeError::TileFailed {
                tile: 3,
                rep: 0,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn seeded_plans_reproduce_identical_outcomes() {
    // Same seed → same fault → same structured result, run to run.
    let describe = |seed: u64| -> String {
        let exec = stencil();
        let (opts, _plan) = with_faults(FaultPlan::seeded(seed, exec.tile_count(), 1));
        let opts = ExecOptions { threads: 1, ..opts };
        match exec.verify(9, &opts) {
            Ok(o) => format!("ok matches={}", o.matches_reference),
            Err(e) => format!("err {e}"),
        }
    };
    for seed in 0..6 {
        assert_eq!(describe(seed), describe(seed), "seed {seed} not stable");
    }
}
