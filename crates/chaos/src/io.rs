//! Seeded fault injection for the I/O layer: the durable plan store's
//! write path and (via the same claim discipline) socket transports.
//!
//! An [`IoFaultPlan`] is the I/O sibling of the executor's
//! [`FaultPlan`](crate::FaultPlan): a deterministic, one-shot schedule
//! of faults keyed by a monotone *operation index* — the store numbers
//! every physical write attempt, a test proxy numbers every accepted
//! connection.  The same `(seed, span)` always yields the same
//! schedule, so a failing chaos run reproduces exactly.
//!
//! The plan plugs into production code through
//! [`IoFaultPlan::store_hook`], which adapts it to the plan store's
//! [`WriteFaultHook`]: short writes
//! and EINTR/EAGAIN are absorbed by the store's robust-writer loop,
//! hard resets abort mid-frame and leave exactly the torn tail that
//! crash recovery must repair.  [`TornFrame`](IoFaultKind::TornFrame)
//! composes the two — land half a frame, then die — the worst case a
//! `kill -9` can leave on disk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use alp_plan::store::{WriteFault, WriteFaultHook};

/// What an I/O fault does when its operation index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The kernel accepts only `keep` bytes of the buffer (they really
    /// land); a robust writer resumes with the remainder.
    ShortWrite {
        /// Bytes accepted before the write returns.
        keep: usize,
    },
    /// `EINTR` — must be retried transparently.
    Interrupted,
    /// `EAGAIN` — must be retried transparently.
    WouldBlock,
    /// A hard connection/`write` failure; aborts the operation and, on
    /// the store path, leaves a torn tail.
    Reset,
    /// Half the buffer lands, then the *next* operation hard-fails:
    /// the canonical mid-frame crash a `kill -9` leaves behind.
    TornFrame,
}

/// One scheduled, one-shot I/O fault.
#[derive(Debug)]
struct IoFault {
    op: u64,
    kind: IoFaultKind,
    fired: AtomicBool,
}

/// A deterministic schedule of one-shot I/O faults keyed by operation
/// index.
///
/// ```
/// use alp_chaos::{IoFaultKind, IoFaultPlan};
///
/// let plan = IoFaultPlan::new()
///     .with(0, IoFaultKind::ShortWrite { keep: 3 })
///     .with(2, IoFaultKind::Reset);
/// assert_eq!(plan.claim(0), Some(IoFaultKind::ShortWrite { keep: 3 }));
/// assert_eq!(plan.claim(0), None, "one-shot");
/// assert_eq!(plan.claim(1), None, "unscheduled op");
/// ```
#[derive(Debug, Default)]
pub struct IoFaultPlan {
    faults: Vec<IoFault>,
    /// Reset ops armed dynamically by a claimed [`IoFaultKind::TornFrame`].
    armed_resets: Mutex<Vec<u64>>,
}

impl IoFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        IoFaultPlan::default()
    }

    /// Schedule `kind` at operation `op`.
    pub fn with(mut self, op: u64, kind: IoFaultKind) -> Self {
        self.faults.push(IoFault {
            op,
            kind,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// A seeded plan aiming 1–3 faults inside the first `span`
    /// operations.  Same `(seed, span)`, same schedule; across seeds
    /// every fault kind appears.
    pub fn seeded(seed: u64, span: u64) -> Self {
        let span = span.max(1);
        let count = 1 + mix(seed) % 3;
        let mut plan = IoFaultPlan::new();
        for i in 0..count {
            let s = seed.wrapping_add(0x9E37 * (i + 1));
            let op = mix(s) % span;
            let kind = match mix(s.wrapping_add(1)) % 5 {
                0 => IoFaultKind::ShortWrite {
                    keep: 1 + (mix(s.wrapping_add(2)) % 16) as usize,
                },
                1 => IoFaultKind::Interrupted,
                2 => IoFaultKind::WouldBlock,
                3 => IoFaultKind::Reset,
                _ => IoFaultKind::TornFrame,
            };
            plan = plan.with(op, kind);
        }
        plan
    }

    /// The `(op, kind)` schedule, for asserting determinism.
    pub fn schedule(&self) -> Vec<(u64, IoFaultKind)> {
        self.faults.iter().map(|f| (f.op, f.kind)).collect()
    }

    /// How many scheduled faults have fired.
    pub fn fired_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Claim (at most once) the fault scheduled for `op`.  A claimed
    /// [`IoFaultKind::TornFrame`] arms a [`IoFaultKind::Reset`] at
    /// `op + 1`, so the caller sees the short write now and the hard
    /// failure on its resume attempt.
    pub fn claim(&self, op: u64) -> Option<IoFaultKind> {
        {
            let mut armed = self.armed_resets.lock().expect("armed lock");
            if let Some(i) = armed.iter().position(|&a| a == op) {
                armed.swap_remove(i);
                return Some(IoFaultKind::Reset);
            }
        }
        let kind = self
            .faults
            .iter()
            .find(|f| f.op == op && !f.fired.swap(true, Ordering::SeqCst))
            .map(|f| f.kind)?;
        if kind == IoFaultKind::TornFrame {
            self.armed_resets.lock().expect("armed lock").push(op + 1);
        }
        Some(kind)
    }

    /// Adapt this plan to the plan store's write-fault hook.  The store
    /// consults the hook with `(op, remaining_len)` before each
    /// physical write; `TornFrame` turns into "half of what remains
    /// lands, the resume is reset".
    pub fn store_hook(self: &Arc<Self>) -> WriteFaultHook {
        let plan = Arc::clone(self);
        Arc::new(move |op, len| {
            plan.claim(op).map(|kind| match kind {
                IoFaultKind::ShortWrite { keep } => WriteFault::Short(keep.min(len)),
                IoFaultKind::Interrupted => WriteFault::Err(std::io::ErrorKind::Interrupted),
                IoFaultKind::WouldBlock => WriteFault::Err(std::io::ErrorKind::WouldBlock),
                IoFaultKind::Reset => WriteFault::Err(std::io::ErrorKind::ConnectionReset),
                IoFaultKind::TornFrame => WriteFault::Short((len / 2).max(1)),
            })
        })
    }
}

/// SplitMix64 (shared with the executor fault plan).
fn mix(seed: u64) -> u64 {
    super::mix(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic_and_covers_every_kind() {
        for seed in 0..8u64 {
            assert_eq!(
                IoFaultPlan::seeded(seed, 32).schedule(),
                IoFaultPlan::seeded(seed, 32).schedule(),
                "seed {seed}"
            );
        }
        let kinds: std::collections::HashSet<u8> = (0..64u64)
            .flat_map(|s| {
                IoFaultPlan::seeded(s, 32)
                    .schedule()
                    .into_iter()
                    .map(|(_, k)| match k {
                        IoFaultKind::ShortWrite { .. } => 0,
                        IoFaultKind::Interrupted => 1,
                        IoFaultKind::WouldBlock => 2,
                        IoFaultKind::Reset => 3,
                        IoFaultKind::TornFrame => 4,
                    })
            })
            .collect();
        assert_eq!(kinds.len(), 5, "all five fault kinds appear across seeds");
    }

    #[test]
    fn torn_frame_arms_a_reset_on_the_resume_op() {
        let plan = IoFaultPlan::new().with(3, IoFaultKind::TornFrame);
        assert_eq!(plan.claim(3), Some(IoFaultKind::TornFrame));
        assert_eq!(plan.claim(4), Some(IoFaultKind::Reset), "resume dies");
        assert_eq!(plan.claim(4), None, "armed reset is one-shot too");
    }

    #[test]
    fn store_hook_translates_kinds() {
        let plan = Arc::new(
            IoFaultPlan::new()
                .with(0, IoFaultKind::ShortWrite { keep: 100 })
                .with(1, IoFaultKind::Interrupted)
                .with(2, IoFaultKind::Reset),
        );
        let hook = plan.store_hook();
        assert_eq!(hook(0, 8), Some(WriteFault::Short(8)), "clamped to len");
        assert_eq!(
            hook(1, 8),
            Some(WriteFault::Err(std::io::ErrorKind::Interrupted))
        );
        assert_eq!(
            hook(2, 8),
            Some(WriteFault::Err(std::io::ErrorKind::ConnectionReset))
        );
        assert_eq!(hook(3, 8), None);
    }
}
