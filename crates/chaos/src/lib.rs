//! Deterministic fault injection for the hardened `alp-runtime`
//! executor.
//!
//! A [`FaultPlan`] is a seeded, reproducible list of faults — panic in
//! tile *k*, delay in tile *k*, flip an output element after tile *k* —
//! that the executor triggers at exactly the scheduled (tile,
//! repetition) points via the `FaultInjector` hooks (enabled by the
//! `chaos` cargo feature on both crates).  Each fault fires **at most
//! once**, so a bounded-retry run recovers deterministically: the retry
//! re-executes the tile with the fault already spent.
//!
//! The plan itself is inert data and builds without the feature; only
//! the `FaultInjector` implementation (and the containment test suite
//! under `tests/`) are feature-gated.  Faults inject *through the
//! production failure path*: an injected panic is caught by the same
//! `catch_unwind` that contains a real kernel bug, so the differential
//! tests prove the documented error codes and clean thread joins for
//! real faults, not for a simulation of them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub mod io;

pub use io::{IoFaultKind, IoFaultPlan};

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the tile (before any iteration runs), exercising
    /// `catch_unwind` containment and `RuntimeError::TileFailed`.
    Panic,
    /// Sleep before the tile's iterations, exercising deadline and
    /// cancellation polling.
    Delay(Duration),
    /// After the tile completes, flip the lowest mantissa bit of one
    /// store element — a silent data fault that only differential
    /// validation (`Executor::verify`) can catch.
    FlipOutput {
        /// Flat element id in the run's `ArrayStore`.
        element: usize,
    },
}

/// When, relative to a tile's execution, a fault kind fires.
///
/// Only the feature-gated `FaultInjector` impl (and the unit tests)
/// consume phases, hence the `dead_code` allowance on the plain build.
#[cfg_attr(not(any(test, feature = "chaos")), allow(dead_code))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Before,
    After,
}

impl FaultKind {
    #[cfg_attr(not(any(test, feature = "chaos")), allow(dead_code))]
    fn phase(&self) -> Phase {
        match self {
            FaultKind::Panic | FaultKind::Delay(_) => Phase::Before,
            FaultKind::FlipOutput { .. } => Phase::After,
        }
    }
}

/// One scheduled, one-shot fault.
#[derive(Debug)]
struct Fault {
    tile: usize,
    rep: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// A deterministic schedule of one-shot faults, injected through the
/// executor's `chaos` hooks.
///
/// ```
/// use alp_chaos::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .with_panic(2, 0)
///     .with_delay(0, 1, Duration::from_millis(50));
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.fired_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a panic in tile `tile` of repetition `rep`.
    pub fn with_panic(mut self, tile: usize, rep: u64) -> Self {
        self.push(tile, rep, FaultKind::Panic);
        self
    }

    /// Schedule a delay before tile `tile` of repetition `rep`.
    pub fn with_delay(mut self, tile: usize, rep: u64, delay: Duration) -> Self {
        self.push(tile, rep, FaultKind::Delay(delay));
        self
    }

    /// Schedule a flip of store element `element` after tile `tile` of
    /// repetition `rep` completes.
    pub fn with_flip(mut self, tile: usize, rep: u64, element: usize) -> Self {
        self.push(tile, rep, FaultKind::FlipOutput { element });
        self
    }

    /// A single seeded fault aimed somewhere inside a `tiles`-tile,
    /// `reps`-repetition run: the same `(seed, tiles, reps)` always
    /// yields the same fault, so failing chaos runs reproduce exactly.
    pub fn seeded(seed: u64, tiles: usize, reps: u64) -> Self {
        let tiles = tiles.max(1) as u64;
        let reps = reps.max(1);
        let tile = (mix(seed) % tiles) as usize;
        let rep = mix(seed.wrapping_add(1)) % reps;
        let kind = match mix(seed.wrapping_add(2)) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Delay(Duration::from_millis(1 + mix(seed.wrapping_add(3)) % 20)),
            _ => FaultKind::FlipOutput {
                element: (mix(seed.wrapping_add(4)) % 64) as usize,
            },
        };
        let mut plan = FaultPlan::new();
        plan.push(tile, rep, kind);
        plan
    }

    /// Like [`seeded`](FaultPlan::seeded) but always a **panic** — the
    /// fault class the serve-path containment tests need (a panic
    /// exercises abandon/recovery in the coalescing cache and the
    /// executor's `ALP0008` containment, where a delay or flip would
    /// not).  Same determinism contract: one `(seed, tiles, reps)`
    /// always aims at the same `(tile, rep)`.
    pub fn seeded_panic(seed: u64, tiles: usize, reps: u64) -> Self {
        let tiles = tiles.max(1) as u64;
        let reps = reps.max(1);
        let tile = (mix(seed) % tiles) as usize;
        let rep = mix(seed.wrapping_add(1)) % reps;
        FaultPlan::new().with_panic(tile, rep)
    }

    fn push(&mut self, tile: usize, rep: u64, kind: FaultKind) {
        self.faults.push(Fault {
            tile,
            rep,
            kind,
            fired: AtomicBool::new(false),
        });
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The `(tile, rep, kind)` schedule, for asserting determinism.
    pub fn schedule(&self) -> Vec<(usize, u64, FaultKind)> {
        self.faults
            .iter()
            .map(|f| (f.tile, f.rep, f.kind.clone()))
            .collect()
    }

    /// How many faults have fired so far.
    pub fn fired_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Claim (at most once) the next unfired fault scheduled for
    /// `(tile, rep)` in `phase`.  The swap makes the one-shot guarantee
    /// hold even when a retried tile re-enters the hook.
    #[cfg_attr(not(any(test, feature = "chaos")), allow(dead_code))]
    fn claim(&self, tile: usize, rep: u64, phase: Phase) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.tile == tile
                    && f.rep == rep
                    && f.kind.phase() == phase
                    && !f.fired.swap(true, Ordering::SeqCst)
            })
            .map(|f| f.kind.clone())
    }
}

/// Which way to corrupt the `certificate` block of an encoded
/// `PartitionPlan` artifact.
///
/// Each kind models a distinct attack surface on the certified fast
/// path, and each must die at a different layer of the defense:
///
/// * [`FlipDisjoint`](CertTamper::FlipDisjoint) is *semantic* tampering
///   — the JSON stays perfectly well-formed, so decode succeeds and
///   only the re-checker's recomputation catches the lie.
/// * [`StaleFingerprint`](CertTamper::StaleFingerprint) grafts a
///   certificate onto a plan it was never issued for; the decoder's
///   fingerprint cross-check rejects it before any verdict is trusted.
/// * [`Truncate`](CertTamper::Truncate) drops a required verdict field;
///   the decoder rejects the structurally damaged block outright.
///
/// All three must surface as the stable `ALP0011` diagnostic — never a
/// panic, never a silently accepted fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertTamper {
    /// Flip the `write_disjoint` verdict bit in place.
    FlipDisjoint,
    /// Rewrite the certificate's issuing fingerprint to a bogus value.
    StaleFingerprint,
    /// Delete the `in_bounds` field from the certificate block.
    Truncate,
}

impl CertTamper {
    /// Every tamper kind, for exhaustive chaos sweeps.
    pub const ALL: [CertTamper; 3] = [
        CertTamper::FlipDisjoint,
        CertTamper::StaleFingerprint,
        CertTamper::Truncate,
    ];
}

/// Apply `kind` to the encoded plan `json`, returning the corrupted
/// document — or `None` when the input carries no certificate block to
/// corrupt (an uncertified plan has nothing to tamper with).
///
/// The transformation is purely textual so it can forge exactly the
/// artifacts a hostile (or merely buggy) plan-producing tool could
/// write; it never goes through the honest encoder.
pub fn tamper_certificate(json: &str, kind: CertTamper) -> Option<String> {
    let cert_at = json.find("\"certificate\": {")?;
    let (head, cert) = json.split_at(cert_at);
    match kind {
        CertTamper::FlipDisjoint => {
            let (from, to) = if cert.contains("\"write_disjoint\": true") {
                ("\"write_disjoint\": true", "\"write_disjoint\": false")
            } else {
                ("\"write_disjoint\": false", "\"write_disjoint\": true")
            };
            if !cert.contains(from) {
                return None;
            }
            Some(format!("{head}{}", cert.replacen(from, to, 1)))
        }
        CertTamper::StaleFingerprint => {
            let key = "\"fingerprint\": \"";
            let start = cert.find(key)? + key.len();
            let end = start + cert[start..].find('"')?;
            Some(format!(
                "{head}{}ffffffffffffffff{}",
                &cert[..start],
                &cert[end..]
            ))
        }
        CertTamper::Truncate => {
            let field_at = cert.find("\"in_bounds\":")?;
            let line_end = field_at + cert[field_at..].find('\n')? + 1;
            Some(format!("{head}{}{}", &cert[..field_at], &cert[line_end..]))
        }
    }
}

/// SplitMix64 — the same generator the runtime uses for store seeding.
pub(crate) fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "chaos")]
impl alp_runtime::FaultInjector for FaultPlan {
    fn before_tile(&self, tile: usize, rep: u64) {
        match self.claim(tile, rep, Phase::Before) {
            Some(FaultKind::Panic) => {
                panic!("injected panic in tile {tile} (rep {rep})")
            }
            Some(FaultKind::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
    }

    fn after_tile(&self, tile: usize, rep: u64, store: &alp_runtime::ArrayStore) {
        if let Some(FaultKind::FlipOutput { element }) = self.claim(tile, rep, Phase::After) {
            if element < store.len() {
                // Flip the lowest mantissa bit: the smallest possible
                // silent corruption, invisible to everything except a
                // bitwise differential check.
                let v = store.get(element);
                store.set(element, f64::from_bits(v.to_bits() ^ 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_schedule() {
        let plan = FaultPlan::new()
            .with_panic(2, 0)
            .with_delay(1, 3, Duration::from_millis(5))
            .with_flip(0, 0, 17);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.schedule(),
            vec![
                (2, 0, FaultKind::Panic),
                (1, 3, FaultKind::Delay(Duration::from_millis(5))),
                (0, 0, FaultKind::FlipOutput { element: 17 }),
            ]
        );
        assert_eq!(plan.fired_count(), 0);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = FaultPlan::seeded(7, 8, 4);
        let b = FaultPlan::seeded(7, 8, 4);
        assert_eq!(a.schedule(), b.schedule());
        let (tile, rep, _) = a.schedule()[0].clone();
        assert!(tile < 8);
        assert!(rep < 4);
        // Different seeds spread over targets/kinds (not all identical).
        let kinds: std::collections::HashSet<_> = (0..32)
            .map(|s| match FaultPlan::seeded(s, 8, 4).schedule()[0].2 {
                FaultKind::Panic => 0,
                FaultKind::Delay(_) => 1,
                FaultKind::FlipOutput { .. } => 2,
            })
            .collect();
        assert_eq!(kinds.len(), 3, "all three fault kinds appear");
    }

    #[test]
    fn tamper_requires_a_certificate_block() {
        let bare = "{\n  \"alp-plan\": 2,\n  \"fingerprint\": \"abc\"\n}\n";
        for kind in CertTamper::ALL {
            assert_eq!(tamper_certificate(bare, kind), None, "{kind:?}");
        }
    }

    #[test]
    fn tamper_kinds_produce_distinct_corruptions() {
        let certified = concat!(
            "{\n  \"alp-plan\": 3,\n  \"fingerprint\": \"0123456789abcdef\",\n",
            "  \"certificate\": {\n    \"fingerprint\": \"0123456789abcdef\",\n",
            "    \"coverage\": true,\n    \"write_disjoint\": true,\n",
            "    \"in_bounds\": true,\n    \"idempotent\": true\n  },\n",
            "  \"source\": \"\"\n}\n"
        );
        let flipped = tamper_certificate(certified, CertTamper::FlipDisjoint).unwrap();
        assert!(flipped.contains("\"write_disjoint\": false"), "{flipped}");
        // Only the certificate block is touched, never the plan header.
        assert!(flipped.starts_with("{\n  \"alp-plan\": 3"), "{flipped}");

        let stale = tamper_certificate(certified, CertTamper::StaleFingerprint).unwrap();
        assert!(stale.contains("\"ffffffffffffffff\""), "{stale}");
        assert!(
            stale.contains("\"fingerprint\": \"0123456789abcdef\""),
            "plan-level fingerprint must survive: {stale}"
        );

        let cut = tamper_certificate(certified, CertTamper::Truncate).unwrap();
        assert!(!cut.contains("in_bounds"), "{cut}");
        assert!(cut.contains("\"idempotent\": true"), "{cut}");
    }

    #[test]
    fn seeded_panic_is_deterministic_and_always_a_panic() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded_panic(seed, 16, 4);
            let b = FaultPlan::seeded_panic(seed, 16, 4);
            assert_eq!(a.schedule(), b.schedule(), "seed {seed}");
            assert_eq!(a.len(), 1);
            let (tile, rep, kind) = a.schedule().pop().unwrap();
            assert!(tile < 16 && rep < 4);
            assert_eq!(kind, FaultKind::Panic, "seed {seed} must panic");
        }
    }

    #[test]
    fn claim_is_one_shot_per_fault() {
        let plan = FaultPlan::new().with_panic(2, 0).with_panic(2, 0);
        assert!(plan.claim(2, 0, Phase::Before).is_some());
        assert!(plan.claim(2, 0, Phase::Before).is_some(), "second fault");
        assert!(plan.claim(2, 0, Phase::Before).is_none(), "both spent");
        assert_eq!(plan.fired_count(), 2);
        // Wrong tile/rep/phase never claims.
        let plan = FaultPlan::new().with_flip(1, 0, 3);
        assert!(plan.claim(1, 0, Phase::Before).is_none());
        assert!(plan.claim(0, 0, Phase::After).is_none());
        assert!(plan.claim(1, 1, Phase::After).is_none());
        assert!(plan.claim(1, 0, Phase::After).is_some());
    }
}
