//! Exact dependence testing between affine references.
//!
//! Two references `A[ī·G₁ + ā₁]` and `A[ī·G₂ + ā₂]` of a depth-`l` doall
//! nest conflict iff the Diophantine system
//!
//! ```text
//!   ī₁·G₁ + ā₁ = ī₂·G₂ + ā₂,   ī₁ ≠ ī₂,   both in the loop bounds
//! ```
//!
//! has a solution.  Stacking gives `x·M = b` with `M = [G₁; −G₂]`
//! (`2l×d`), `b = ā₂ − ā₁` and `x = (ī₁ | ī₂)`: a lattice-membership
//! question answered by the same Smith/Hermite machinery the partitioner
//! uses (Def. 4).  The full solution set is `x₀ + c·N` for the integer
//! nullspace basis `N`; intersecting that lattice with the bounds box and
//! the disequality `ī₁ ≠ ī₂` is delegated to [`crate::search`], yielding
//! a concrete **witness pair** of iterations rather than a bare yes/no.
//!
//! The disequality is handled exactly by branching on the first loop
//! level `m` where the iterations differ and the sign of the difference:
//! each branch (`δ_j = 0` for `j < m`, `±δ_m ≥ 1`) is a pure conjunctive
//! system.  For a reference tested against itself the two signs are
//! symmetric and only one is searched.

use crate::search::find_integer_point;
use alp_lattice::Lattice;
use alp_linalg::fm::System;
use alp_linalg::{integer_nullspace, solve_integer, IMat, IVec, Rat};
use alp_loopir::{ArrayRef, LoopNest};

/// A concrete pair of distinct in-bounds iterations touching the same
/// array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Iteration executing the first reference.
    pub iter1: IVec,
    /// Iteration executing the second reference.
    pub iter2: IVec,
    /// The shared array element.
    pub element: IVec,
}

/// Exact conflict test between two references **to the same array**:
/// returns a witness pair of *distinct* doall iterations `(ī₁, ī₂)` with
/// `r1(ī₁) == r2(ī₂)`, both within the nest's doall bounds, or `None`
/// when no such pair exists.
pub fn pair_conflict(nest: &LoopNest, r1: &ArrayRef, r2: &ArrayRef) -> Option<Witness> {
    let l = nest.depth();
    if l == 0 || nest.loops.iter().any(|lp| lp.trip_count() == 0) {
        return None;
    }
    debug_assert_eq!(r1.array, r2.array, "conflict test across different arrays");
    let d = r1.dim();
    if d != r2.dim() {
        return None; // malformed nests are reported by other lints
    }

    // Stacked system x·M = b over x = (ī₁ | ī₂).
    let g1 = r1.g_matrix();
    let g2 = r2.g_matrix();
    let mut m = IMat::zeros(2 * l, d);
    for r in 0..l {
        for c in 0..d {
            m[(r, c)] = g1[(r, c)];
            m[(l + r, c)] = -g2[(r, c)];
        }
    }
    let b = r2.offset().sub(&r1.offset()).expect("dims match");

    // Particular solution: no lattice point at all ⇒ the references can
    // never touch the same element, bounds aside.
    let x0 = solve_integer(&m, &b)?;
    // Solution lattice: reduced basis keeps DFS coefficients small.
    let null = integer_nullspace(&m);
    let basis = if null.is_empty() {
        Vec::new()
    } else {
        Lattice::new(IMat::from_row_vecs(&null))
            .reduced_basis()
            .row_vecs()
    };

    // The two signs of the first differing level are symmetric when the
    // references are interchangeable (structural equality ignores spans).
    let signs: &[i128] = if r1 == r2 { &[1] } else { &[1, -1] };
    for mlevel in 0..l {
        for &s in signs {
            if let Some(x) = solve_branch(nest, &x0, &basis, mlevel, s) {
                let iter1 = IVec(x[..l].to_vec());
                let iter2 = IVec(x[l..].to_vec());
                let element = r1.eval(&iter1);
                debug_assert_eq!(element, r2.eval(&iter2), "witness mismatch");
                return Some(Witness {
                    iter1,
                    iter2,
                    element,
                });
            }
        }
    }
    None
}

/// Search the branch "iterations agree below level `m`, differ at `m`
/// with sign `s`": a conjunctive system over the nullspace coefficients.
fn solve_branch(
    nest: &LoopNest,
    x0: &IVec,
    basis: &[IVec],
    m: usize,
    s: i128,
) -> Option<Vec<i128>> {
    let l = nest.depth();
    let t = basis.len();
    let mut sys = System::new(t);
    // Box: lo_k ≤ x0[k] + Σ_r c_r·N_r[k] ≤ hi_k for all 2l coordinates.
    for k in 0..2 * l {
        let lp = &nest.loops[k % l];
        let coeffs: Vec<Rat> = basis.iter().map(|n| Rat::int(n[k])).collect();
        sys.le(coeffs.clone(), Rat::int(lp.upper - x0[k]));
        sys.ge(coeffs, Rat::int(lp.lower - x0[k]));
    }
    // δ_j = x_j − x_{l+j}: zero below m, `s`-signed ≥ 1 at m.
    for j in 0..=m {
        let coeffs: Vec<Rat> = basis.iter().map(|n| Rat::int(n[j] - n[l + j])).collect();
        let base = x0[j] - x0[l + j];
        if j < m {
            sys.le(coeffs.clone(), Rat::int(-base));
            sys.ge(coeffs, Rat::int(-base));
        } else {
            let signed: Vec<Rat> = coeffs.into_iter().map(|c| c * Rat::int(s)).collect();
            sys.ge(signed, Rat::int(1 - s * base));
        }
    }
    let c = find_integer_point(&sys)?;
    // Materialize x = x0 + Σ c_r·N_r.
    let mut x: Vec<i128> = x0.0.clone();
    for (r, n) in basis.iter().enumerate() {
        for (k, xv) in x.iter_mut().enumerate() {
            *xv += c[r] * n[k];
        }
    }
    Some(x)
}

/// Brute-force conflict oracle for differential testing: enumerate every
/// ordered pair of distinct iterations and compare touched elements.
/// Exponential in the iteration count — small nests only.
pub fn brute_force_conflict(nest: &LoopNest, r1: &ArrayRef, r2: &ArrayRef) -> Option<Witness> {
    let pts = nest.iteration_points();
    for i1 in &pts {
        let e1 = r1.eval(i1);
        for i2 in &pts {
            if i1 == i2 {
                continue;
            }
            if e1 == r2.eval(i2) {
                return Some(Witness {
                    iter1: i1.clone(),
                    iter2: i2.clone(),
                    element: e1,
                });
            }
        }
    }
    None
}

/// Check a witness against the nest bounds and both references — used by
/// tests to validate exact-tester output without requiring it to match
/// the brute-force witness pair exactly (any valid pair proves the race).
pub fn witness_is_valid(nest: &LoopNest, r1: &ArrayRef, r2: &ArrayRef, w: &Witness) -> bool {
    let in_bounds = |i: &IVec| {
        i.len() == nest.depth()
            && nest
                .loops
                .iter()
                .enumerate()
                .all(|(k, lp)| lp.lower <= i[k] && i[k] <= lp.upper)
    };
    in_bounds(&w.iter1)
        && in_bounds(&w.iter2)
        && w.iter1 != w.iter2
        && r1.eval(&w.iter1) == w.element
        && r2.eval(&w.iter2) == w.element
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    fn refs(nest: &LoopNest) -> Vec<&ArrayRef> {
        nest.all_refs()
    }

    #[test]
    fn stencil_write_read_conflict() {
        // A[i] = A[i+1]: iteration i reads what iteration i+1 writes.
        let n = parse("doall (i, 0, 9) { A[i] = A[i+1]; }").unwrap();
        let rs = refs(&n);
        let w = pair_conflict(&n, rs[0], rs[1]).expect("stencil races");
        assert!(witness_is_valid(&n, rs[0], rs[1], &w));
    }

    #[test]
    fn identity_write_is_clean() {
        // A[i] = B[i]: each iteration owns its element.
        let n = parse("doall (i, 0, 9) { A[i] = B[i]; }").unwrap();
        let rs = refs(&n);
        assert!(pair_conflict(&n, rs[0], rs[0]).is_none());
    }

    #[test]
    fn parity_blocked_pair() {
        // A[2i] vs A[2i+1]: rationally intersecting, integrally disjoint.
        let n = parse("doall (i, 0, 9) { A[2*i] = A[2*i+1]; }").unwrap();
        let rs = refs(&n);
        assert!(pair_conflict(&n, rs[0], rs[1]).is_none());
    }

    #[test]
    fn bounds_exclude_conflict() {
        // A[i] = A[i+20] with only 10 iterations: offset exceeds range.
        let n = parse("doall (i, 0, 9) { A[i] = A[i+20]; }").unwrap();
        let rs = refs(&n);
        assert!(pair_conflict(&n, rs[0], rs[1]).is_none());
    }

    #[test]
    fn constant_subscript_self_race() {
        // A[5] = B[i]: every iteration writes the same element.
        let n = parse("doall (i, 0, 9) { A[5] = B[i]; }").unwrap();
        let rs = refs(&n);
        let w = pair_conflict(&n, rs[0], rs[0]).expect("constant write races");
        assert!(witness_is_valid(&n, rs[0], rs[0], &w));
    }

    #[test]
    fn transpose_conflict_2d() {
        // A[i,j] = A[j,i]: (i,j) and (j,i) touch the same element.
        let n = parse("doall (i, 0, 4) { doall (j, 0, 4) { A[i,j] = A[j,i]; } }").unwrap();
        let rs = refs(&n);
        let w = pair_conflict(&n, rs[0], rs[1]).expect("transpose races");
        assert!(witness_is_valid(&n, rs[0], rs[1], &w));
    }

    #[test]
    fn witness_matches_brute_force_verdict() {
        let cases = [
            "doall (i, 0, 5) { A[i] = A[i+2]; }",
            "doall (i, 0, 5) { A[i] = A[5-i]; }",
            "doall (i, 0, 5) { doall (j, 0, 5) { A[i+j] = B[i]; } }",
            "doall (i, 0, 5) { doall (j, 0, 5) { A[2*i, j] = A[i, j]; } }",
            "doall (i, 1, 4) { doall (j, 1, 4) { A[i, j] = A[i-1, j+1]; } }",
        ];
        for src in cases {
            let n = parse(src).unwrap();
            let rs = n.all_refs();
            for r1 in &rs {
                for r2 in &rs {
                    if r1.array != r2.array {
                        continue;
                    }
                    let exact = pair_conflict(&n, r1, r2);
                    let brute = brute_force_conflict(&n, r1, r2);
                    assert_eq!(exact.is_some(), brute.is_some(), "{src}: {r1:?} vs {r2:?}");
                    if let Some(w) = exact {
                        assert!(witness_is_valid(&n, r1, r2, &w), "{src}");
                    }
                }
            }
        }
    }
}
