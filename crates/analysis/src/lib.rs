//! Exact doall legality and race detection for `alp` loop nests.
//!
//! The partitioner (and the paper) *assume* the input nest is a legal
//! `Doall`: no two distinct iterations may conflict on an array element
//! unless the conflict flows through fine-grain synchronized accumulates
//! (Appendix A).  This crate checks that assumption instead of trusting
//! it:
//!
//! * [`pair_conflict`] solves the affine Diophantine system
//!   `ī₁·G₁ + ā₁ = ī₂·G₂ + ā₂` exactly (Smith/Hermite machinery from
//!   `alp-linalg`, solution lattice via `alp-lattice`), intersects the
//!   solution set with the loop bounds, and produces a concrete
//!   **witness pair** of racing iterations;
//! * [`analyze`] runs that test over every write/write and write/read
//!   pair of a nest plus a small lint suite ([`lint`]) and returns a
//!   structured [`Report`];
//! * [`Report::render`] draws rustc-style caret diagnostics against the
//!   DSL source the nest was parsed from.
//!
//! `alp::Compiler` refuses nests whose report contains errors; the CLI
//! exposes the same analysis as `--check`.

pub mod dep;
pub mod diag;
pub mod lint;
pub mod search;

pub use dep::{brute_force_conflict, pair_conflict, witness_is_valid, Witness};
pub use diag::{Diagnostic, Note, Report, Rule, Severity};

use alp_linalg::IVec;
use alp_loopir::{AccessKind, ArrayRef, LoopNest};

/// Analyse a nest: exact race detection over every conflicting reference
/// pair, then the structural lints.  The returned report's
/// [`has_errors`](Report::has_errors) decides doall legality.
pub fn analyze(nest: &LoopNest) -> Report {
    let mut report = Report::default();
    report.diagnostics.extend(races(nest));
    report.diagnostics.extend(lint::reduction_candidates(nest));
    report.diagnostics.extend(lint::run(nest));
    report
}

/// Analyse every nest of a multi-phase program, concatenating findings.
pub fn analyze_program(nests: &[LoopNest]) -> Report {
    let mut report = Report::default();
    for n in nests {
        report.merge(analyze(n));
    }
    report
}

/// How a reference kind reads in a diagnostic.
fn verb(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "reads",
        AccessKind::Write => "writes",
        AccessKind::Accumulate => "accumulates into",
    }
}

/// `(i=1, j=2)` — iteration vectors rendered with their index names.
fn fmt_iter(names: &[String], i: &IVec) -> String {
    let parts: Vec<String> = names
        .iter()
        .zip(i.0.iter())
        .map(|(n, v)| format!("{n}={v}"))
        .collect();
    format!("({})", parts.join(", "))
}

/// `A[2, 1]` — an array element.
fn fmt_element(array: &str, e: &IVec) -> String {
    let parts: Vec<String> = e.0.iter().map(|v| v.to_string()).collect();
    format!("{array}[{}]", parts.join(", "))
}

/// Exact race detection: every pair of same-array references where at
/// least one side is write-like and not both sides are accumulates
/// (accumulate/accumulate conflicts are ordered by fine-grain
/// synchronization, Appendix A).
fn races(nest: &LoopNest) -> Vec<Diagnostic> {
    // Malformed nests (inconsistent depths/dims) are reported by
    // `LoopNest::validate` and the lints; the Diophantine machinery
    // needs consistent shapes.
    let depth = nest.depth();
    if nest
        .all_refs()
        .iter()
        .any(|r| r.subscripts.iter().any(|s| s.depth() != depth))
    {
        return Vec::new();
    }
    let names = nest.index_names();
    let refs = nest.all_refs();
    let mut out = Vec::new();
    for i in 0..refs.len() {
        for j in i..refs.len() {
            let (r1, r2) = (refs[i], refs[j]);
            if r1.array != r2.array || r1.dim() != r2.dim() {
                continue;
            }
            if !r1.kind.is_write_like() && !r2.kind.is_write_like() {
                continue; // read/read never conflicts
            }
            if r1.kind == AccessKind::Accumulate && r2.kind == AccessKind::Accumulate {
                continue; // legal: ordered by fine-grain synchronization
            }
            if i == j && !r1.kind.is_write_like() {
                continue;
            }
            if let Some(w) = pair_conflict(nest, r1, r2) {
                out.push(race_diagnostic(&names, r1, r2, &w, i == j));
            }
        }
    }
    out
}

fn race_diagnostic(
    names: &[String],
    r1: &ArrayRef,
    r2: &ArrayRef,
    w: &Witness,
    self_pair: bool,
) -> Diagnostic {
    let elem = fmt_element(&r1.array, &w.element);
    let mut d = Diagnostic::new(
        Rule::DoallRace,
        format!("doall iterations race on array `{}`", r1.array),
        r1.span,
    );
    if self_pair {
        d = d.with_note(Note::text(format!(
            "iterations {} and {} both touch {} through `{}`",
            fmt_iter(names, &w.iter1),
            fmt_iter(names, &w.iter2),
            elem,
            r1.display(names),
        )));
    } else {
        d = d.with_note(Note::spanned(
            format!("conflicting reference `{}`", r2.display(names)),
            r2.span,
        ));
        d = d.with_note(Note::text(format!(
            "iteration {} {} {} via `{}`; iteration {} {} it via `{}`",
            fmt_iter(names, &w.iter1),
            verb(r1.kind),
            elem,
            r1.display(names),
            fmt_iter(names, &w.iter2),
            verb(r2.kind),
            r2.display(names),
        )));
    }
    if r1.kind == AccessKind::Accumulate || r2.kind == AccessKind::Accumulate {
        d = d.with_note(Note::text(
            "fine-grain synchronization orders accumulates only against other \
             accumulates (Appendix A)",
        ));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::parse;

    #[test]
    fn stencil_is_illegal() {
        let n = parse("doall (i, 0, 9) { A[i] = A[i+1]; }").unwrap();
        let rep = analyze(&n);
        assert!(rep.has_errors());
        assert!(rep.diagnostics.iter().any(|d| d.rule == Rule::DoallRace));
    }

    #[test]
    fn identity_nest_is_clean() {
        let n =
            parse("doall (i, 0, 9) { doall (j, 0, 9) { A[i,j] = B[i,j] + B[i+1,j]; } }").unwrap();
        let rep = analyze(&n);
        assert!(!rep.has_errors());
        assert!(!rep.has_warnings());
    }

    #[test]
    fn accumulate_matmul_is_legal() {
        // Fig. 11: the k-races on C flow only through accumulates.
        let n = parse(
            "doall (i, 1, 8) { doall (j, 1, 8) { doall (k, 1, 8) {
               l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        let rep = analyze(&n);
        assert!(!rep.has_errors(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn unsynchronized_reduction_is_illegal_but_suggested() {
        // Fixed i, varying k: every k-iteration rewrites the same C[i].
        let n = parse("doall (i, 0, 3) { doall (k, 0, 3) { C[i] = C[i] + A[i,k]; } }").unwrap();
        let rep = analyze(&n);
        assert!(rep.has_errors());
        assert!(
            rep.diagnostics
                .iter()
                .any(|d| d.rule == Rule::DoallReduction),
            "{:?}",
            rep.diagnostics
        );
    }

    #[test]
    fn accumulate_against_plain_read_still_races() {
        // l$A[0] accumulates; B[j] = A[i] reads A unsynchronized.
        let n = parse(
            "doall (i, 0, 3) {
               l$A[0] = l$A[0] + C[i];
               B[i] = A[i];
             }",
        )
        .unwrap();
        let rep = analyze(&n);
        assert!(rep.has_errors(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn render_names_witness_iterations() {
        let src = "doall (i, 0, 9) { A[i] = A[i+1]; }";
        let n = parse(src).unwrap();
        let text = analyze(&n).render(src);
        assert!(text.contains("error[doall-race]"), "{text}");
        assert!(text.contains("i="), "{text}");
        assert!(text.contains("^"), "{text}");
    }

    #[test]
    fn program_analysis_concatenates() {
        let a = parse("doall (i, 0, 3) { A[i] = A[i+1]; }").unwrap();
        let b = parse("doall (i, 0, 3) { B[i] = B[i]; }").unwrap();
        let rep = analyze_program(&[a, b]);
        assert_eq!(rep.count(Severity::Error), 1);
    }
}
