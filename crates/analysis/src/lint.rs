//! Structural lints over a loop nest.
//!
//! These fire on legal-but-suspicious shapes (dead parallel dimensions,
//! zero-trip loops, rank-deficient references) and on malformed nests
//! that bypassed [`LoopNest`] validation (shadowed indices).  Race
//! detection itself lives in [`crate::analyze`]; the one overlap is
//! [`reduction_candidates`], which inspects racy statements for the
//! reduction shape `C[ḡ] = C[ḡ] + …` and suggests the legal `+=` form.

use crate::dep::pair_conflict;
use crate::diag::{Diagnostic, Note, Rule};
use alp_loopir::{AccessKind, LoopNest};

/// Run every structural lint.
pub fn run(nest: &LoopNest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(shadowed_indices(nest));
    out.extend(zero_trip_loops(nest));
    out.extend(dead_doall_dims(nest));
    out.extend(rank_deficient_refs(nest));
    out
}

/// `shadowed-index`: two loops of the nest declare the same index name.
/// [`LoopNest::with_seq`] rejects this, but the fields are public, so an
/// unvalidated nest can still reach the analysis.
pub fn shadowed_indices(nest: &LoopNest) -> Vec<Diagnostic> {
    let mut seen: Vec<&str> = Vec::new();
    let mut out = Vec::new();
    for l in nest.seq_loops.iter().chain(&nest.loops) {
        if seen.contains(&l.name.as_str()) {
            out.push(Diagnostic::new(
                Rule::ShadowedIndex,
                format!("index `{}` is declared by more than one loop", l.name),
                l.span,
            ));
        } else {
            seen.push(&l.name);
        }
    }
    out
}

/// `zero-trip-loop`: a loop with `lower > upper` never runs, so the nest
/// does no work at all.
pub fn zero_trip_loops(nest: &LoopNest) -> Vec<Diagnostic> {
    nest.seq_loops
        .iter()
        .chain(&nest.loops)
        .filter(|l| l.trip_count() == 0)
        .map(|l| {
            Diagnostic::new(
                Rule::ZeroTripLoop,
                format!("loop `{}` never runs ({} > {})", l.name, l.lower, l.upper),
                l.span,
            )
        })
        .collect()
}

/// `dead-doall-dim`: a doall index with zero coefficient in every
/// subscript of every reference — all iterations along that dimension
/// touch identical data, so the parallel dimension only replicates work.
pub fn dead_doall_dims(nest: &LoopNest) -> Vec<Diagnostic> {
    let refs = nest.all_refs();
    if refs.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (k, l) in nest.loops.iter().enumerate() {
        let used = refs
            .iter()
            .flat_map(|r| r.subscripts.iter())
            .any(|s| s.coeffs.get(k).is_some_and(|&c| c != 0));
        if !used {
            out.push(Diagnostic::new(
                Rule::DeadDoallDim,
                format!("doall index `{}` appears in no subscript", l.name),
                l.span,
            ));
        }
    }
    out
}

/// `rank-deficient-ref`: a reference whose nonzero `G` columns are
/// linearly dependent (§3.4.1).  The footprint machinery falls back to a
/// maximal independent column subset, over-approximating the footprint.
pub fn rank_deficient_refs(nest: &LoopNest) -> Vec<Diagnostic> {
    let names = nest.index_names();
    let mut out = Vec::new();
    let mut reported: Vec<&alp_loopir::ArrayRef> = Vec::new();
    for r in nest.all_refs() {
        if r.subscripts.iter().any(|s| s.depth() != nest.depth()) {
            continue; // malformed; depth lints are not this rule's job
        }
        let g = r.g_matrix();
        let nonzero = g.nonzero_columns().len();
        if g.rank() < nonzero && !reported.iter().any(|p| **p == *r) {
            reported.push(r);
            out.push(
                Diagnostic::new(
                    Rule::RankDeficientRef,
                    format!(
                        "reference `{}` has linearly dependent subscripts",
                        r.display(&names)
                    ),
                    r.span,
                )
                .with_note(Note::text(
                    "footprint analysis drops to an independent subscript subset (§3.4.1)",
                )),
            );
        }
    }
    out
}

/// `doall-reduction`: a racy statement of the shape `C[ḡ] = C[ḡ] + …`
/// (plain write, same-subscript read of the same array on the rhs).
/// Rewriting it as `C[ḡ] += …` turns both references into fine-grain
/// synchronized accumulates, which Appendix A admits as a legal doall.
pub fn reduction_candidates(nest: &LoopNest) -> Vec<Diagnostic> {
    let names = nest.index_names();
    let mut out = Vec::new();
    for st in &nest.body {
        if st.lhs.kind != AccessKind::Write {
            continue;
        }
        let is_reduction = st
            .rhs
            .iter()
            .any(|r| r.array == st.lhs.array && r.subscripts == st.lhs.subscripts);
        if is_reduction && pair_conflict(nest, &st.lhs, &st.lhs).is_some() {
            out.push(
                Diagnostic::new(
                    Rule::DoallReduction,
                    format!(
                        "`{}` looks like a reduction: distinct iterations accumulate into \
                         the same element",
                        st.lhs.display(&names)
                    ),
                    st.span,
                )
                .with_note(Note::text(format!(
                    "write it as `{} += …` to use fine-grain synchronization \
                     (legal per Appendix A)",
                    st.lhs.display(&names)
                ))),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_loopir::{parse, AffineExpr, ArrayRef, LoopIndex, Statement};

    #[test]
    fn dead_dim_fires() {
        let n = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[i] = B[i]; } }").unwrap();
        let ds = dead_doall_dims(&n);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("`j`"), "{}", ds[0].message);
        assert_eq!(ds[0].rule, Rule::DeadDoallDim);
    }

    #[test]
    fn dead_dim_quiet_when_used() {
        let n = parse("doall (i, 0, 3) { doall (j, 0, 3) { A[i, j] = B[i]; } }").unwrap();
        assert!(dead_doall_dims(&n).is_empty());
    }

    #[test]
    fn zero_trip_fires_on_unvalidated_nest() {
        let nest = LoopNest {
            seq_loops: vec![],
            loops: vec![LoopIndex::new("i", 5, 2)],
            body: vec![],
        };
        let ds = zero_trip_loops(&nest);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("5 > 2"), "{}", ds[0].message);
    }

    #[test]
    fn shadowed_index_fires_on_unvalidated_nest() {
        let nest = LoopNest {
            seq_loops: vec![LoopIndex::new("i", 0, 3)],
            loops: vec![LoopIndex::new("i", 0, 3)],
            body: vec![],
        };
        let ds = shadowed_indices(&nest);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::ShadowedIndex);
    }

    #[test]
    fn rank_deficient_fires_on_example7_shape() {
        // A[i, 2i, i+j] in a 2-deep nest: G = [[1,2,1],[0,0,1]], rank 2,
        // three nonzero columns.
        let n = parse("doall (i, 0, 3) { doall (j, 0, 3) { B[i,j] = A[i, 2*i, i+j]; } }").unwrap();
        let ds = rank_deficient_refs(&n);
        assert_eq!(ds.len(), 1);
        assert!(
            ds[0].message.contains("A[i, 2*i, i+j]"),
            "{}",
            ds[0].message
        );
    }

    #[test]
    fn rank_deficient_ignores_constant_subscripts() {
        // A[i, 5]: the constant column is zero, the rest full-rank.
        let n = parse("doall (i, 0, 3) { B[i] = A[i, 5]; }").unwrap();
        assert!(rank_deficient_refs(&n).is_empty());
    }

    #[test]
    fn reduction_candidate_detected() {
        let n = parse(
            "doall (i, 0, 3) { doall (j, 0, 3) { doall (k, 0, 3) {
               C[i,j] = C[i,j] + A[i,k] + B[k,j];
             } } }",
        )
        .unwrap();
        let ds = reduction_candidates(&n);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].notes[0].message.contains("+="), "{:?}", ds[0].notes);
    }

    #[test]
    fn accumulate_statement_is_not_flagged() {
        let n = parse("doall (i, 0, 3) { doall (k, 0, 3) { C[i] += A[i,k]; } }").unwrap();
        assert!(reduction_candidates(&n).is_empty());
    }

    #[test]
    fn non_racy_self_update_is_not_flagged() {
        // A[i] = A[i] + B[i]: reduction shape but each iteration owns its
        // element — no race, no suggestion.
        let n = parse("doall (i, 0, 3) { A[i] = A[i] + B[i]; }").unwrap();
        assert!(reduction_candidates(&n).is_empty());
    }

    #[test]
    fn hand_built_malformed_depth_is_tolerated() {
        let bad = ArrayRef::new("A", vec![AffineExpr::index(3, 0)], AccessKind::Write);
        let nest = LoopNest {
            seq_loops: vec![],
            loops: vec![LoopIndex::new("i", 0, 3)],
            body: vec![Statement::new(bad, vec![])],
        };
        // Must not panic.
        let _ = rank_deficient_refs(&nest);
    }
}
