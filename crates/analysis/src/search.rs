//! Integer feasibility of a conjunctive rational inequality system.
//!
//! The dependence tester reduces "do two distinct in-bounds iterations
//! touch the same element" to: does an integer point satisfy a small
//! system `C·x ≤ b` over the lattice coefficients?  This module answers
//! that exactly: a Fourier–Motzkin elimination chain gives exact rational
//! bounds for each variable given the ones already fixed, and a DFS
//! enumerates the integers inside those bounds, backtracking when a
//! prefix admits a rational completion but no integer one.
//!
//! The systems here are tiny (≤ 2·l variables, a few dozen constraints),
//! but FM doubles pessimistically per elimination, so each projection is
//! normalized and deduplicated to keep only the tightest bound per
//! half-space direction.

use alp_linalg::fm::{eliminate, Constraint, System};
use alp_linalg::Rat;

/// Hard cap on the integers tried for one variable at one DFS node, and
/// on total DFS nodes.  The dependence systems are bounded (independent
/// lattice rows intersected with a finite box), so these are safety
/// valves, not tuning knobs.
const MAX_RANGE: i128 = 1_000_000;
const MAX_NODES: usize = 4_000_000;

/// Scale a constraint so its coefficient vector is a primitive integer
/// vector (gcd 1), which makes syntactically different multiples of the
/// same half-space comparable.
fn normalize(c: &Constraint) -> Option<Constraint> {
    // Common denominator.
    let mut den = 1i128;
    for q in c.coeffs.iter().chain(std::iter::once(&c.bound)) {
        den = lcm(den, q.den());
    }
    let mut ints: Vec<i128> = c.coeffs.iter().map(|q| q.num() * (den / q.den())).collect();
    let mut bound = c.bound.num() * (den / c.bound.den());
    // Divide by the gcd of the coefficients only (not the bound): the
    // bound then floors to the tightest integer form later; here we keep
    // it rational to stay exact.
    let g = ints.iter().fold(0i128, |a, &v| gcd(a, v.abs()));
    if g > 1 {
        for v in &mut ints {
            *v /= g;
        }
        return Some(Constraint::new(
            ints.into_iter().map(Rat::int).collect(),
            Rat::new(bound, g),
        ));
    }
    if g == 0 {
        // Trivial constraint 0 ≤ bound: keep only if it proves
        // infeasibility; the caller checks `trivially_infeasible`.
        if bound >= 0 {
            return None;
        }
        bound = -1; // canonical "false"
    }
    Some(Constraint::new(
        ints.into_iter().map(Rat::int).collect(),
        Rat::int(bound),
    ))
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    a / gcd(a, b) * b
}

/// Normalize every constraint and keep only the tightest bound per
/// direction.
fn dedup(sys: &System) -> System {
    let mut out = System::new(sys.vars);
    let mut best: Vec<(Vec<Rat>, Rat)> = Vec::new();
    for c in &sys.constraints {
        let Some(n) = normalize(c) else { continue };
        match best.iter_mut().find(|(dir, _)| *dir == n.coeffs) {
            Some((_, b)) => {
                if n.bound < *b {
                    *b = n.bound;
                }
            }
            None => best.push((n.coeffs, n.bound)),
        }
    }
    for (coeffs, bound) in best {
        out.constraints.push(Constraint::new(coeffs, bound));
    }
    out
}

/// Find any integer point satisfying every constraint of `sys`, or
/// `None` when no integer solution exists.  Exact: never reports a point
/// that violates a constraint, never misses one when the feasible region
/// is bounded (the dependence systems always are; unbounded directions
/// are truncated at a large safety cap).
pub fn find_integer_point(sys: &System) -> Option<Vec<i128>> {
    let t = sys.vars;
    if t == 0 {
        return if sys.constraints.iter().all(|c| c.bound >= Rat::ZERO) {
            Some(Vec::new())
        } else {
            None
        };
    }
    // chain[r] mentions only variables 0..=r.
    let mut chain: Vec<System> = Vec::with_capacity(t);
    chain.resize(t, System::new(t));
    chain[t - 1] = dedup(sys);
    for r in (0..t - 1).rev() {
        let projected = eliminate(&chain[r + 1], r + 1);
        chain[r] = dedup(&projected);
        if chain[r].trivially_infeasible() {
            return None;
        }
    }
    let mut assign = vec![0i128; t];
    let mut nodes = 0usize;
    if dfs(&chain, sys, 0, &mut assign, &mut nodes) {
        Some(assign)
    } else {
        None
    }
}

/// Enumerate integer values of variable `r` within the exact rational
/// interval implied by `chain[r]` under the partial assignment, recursing
/// on the next variable.
fn dfs(
    chain: &[System],
    original: &System,
    r: usize,
    assign: &mut [i128],
    nodes: &mut usize,
) -> bool {
    *nodes += 1;
    if *nodes > MAX_NODES {
        return false;
    }
    let t = chain.len();
    let sys = &chain[r];
    // Residual interval for x_r given x_0..x_{r-1}.
    let mut lo: Option<Rat> = None;
    let mut hi: Option<Rat> = None;
    for c in &sys.constraints {
        let mut residual = c.bound;
        for (&coeff, &v) in c.coeffs.iter().zip(&assign[..r]) {
            residual = residual - coeff * Rat::int(v);
        }
        let a = c.coeffs[r];
        if a.is_zero() {
            // Constraint is fully determined by the prefix.
            if residual < Rat::ZERO {
                return false;
            }
            continue;
        }
        let b = residual / a;
        if a > Rat::ZERO {
            hi = Some(match hi {
                Some(h) if h <= b => h,
                _ => b,
            });
        } else {
            lo = Some(match lo {
                Some(l) if l >= b => l,
                _ => b,
            });
        }
    }
    // The dependence systems are bounded; cap unbounded directions.
    let lo_i = lo.map_or(-MAX_RANGE, |q| q.ceil());
    let hi_i = hi.map_or(MAX_RANGE, |q| q.floor());
    if lo_i > hi_i {
        return false;
    }
    if (hi_i - lo_i) >= MAX_RANGE {
        return false;
    }
    for v in lo_i..=hi_i {
        assign[r] = v;
        if r + 1 == t {
            if satisfies(original, assign) {
                return true;
            }
        } else if dfs(chain, original, r + 1, assign, nodes) {
            return true;
        }
    }
    false
}

/// Check a full assignment against the original system.
pub fn satisfies(sys: &System, x: &[i128]) -> bool {
    sys.constraints.iter().all(|c| {
        let mut acc = Rat::ZERO;
        for (j, &v) in x.iter().enumerate() {
            acc = acc + c.coeffs[j] * Rat::int(v);
        }
        acc <= c.bound
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn finds_point_in_box() {
        let mut s = System::new(2);
        s.ge(vec![r(1), r(0)], r(2));
        s.le(vec![r(1), r(0)], r(5));
        s.ge(vec![r(0), r(1)], r(-1));
        s.le(vec![r(0), r(1)], r(1));
        let p = find_integer_point(&s).unwrap();
        assert!(satisfies(&s, &p));
    }

    #[test]
    fn rejects_empty_box() {
        let mut s = System::new(1);
        s.ge(vec![r(1)], r(3));
        s.le(vec![r(1)], r(2));
        assert!(find_integer_point(&s).is_none());
    }

    #[test]
    fn rational_gap_without_integer() {
        // 1/2 ≤ x ≤ 2/3: rationally feasible, integrally empty.
        let mut s = System::new(1);
        s.ge(vec![r(1)], Rat::new(1, 2));
        s.le(vec![r(1)], Rat::new(2, 3));
        assert!(find_integer_point(&s).is_none());
    }

    #[test]
    fn backtracks_on_integrality() {
        // x + 2y = 1 (as two inequalities), 0 ≤ x ≤ 4, 0 ≤ y ≤ 4:
        // needs x odd; x=0 fails, x=1,y=0 works.
        let mut s = System::new(2);
        s.le(vec![r(1), r(2)], r(1));
        s.ge(vec![r(1), r(2)], r(1));
        s.ge(vec![r(1), r(0)], r(0));
        s.le(vec![r(1), r(0)], r(4));
        s.ge(vec![r(0), r(1)], r(0));
        s.le(vec![r(0), r(1)], r(4));
        let p = find_integer_point(&s).unwrap();
        assert_eq!(p[0] + 2 * p[1], 1);
    }

    #[test]
    fn diagonal_slab() {
        // 3 ≤ x - y ≤ 3 with box bounds: forced difference.
        let mut s = System::new(2);
        s.le(vec![r(1), r(-1)], r(3));
        s.ge(vec![r(1), r(-1)], r(3));
        s.ge(vec![r(1), r(0)], r(0));
        s.le(vec![r(1), r(0)], r(10));
        s.ge(vec![r(0), r(1)], r(0));
        s.le(vec![r(0), r(1)], r(10));
        let p = find_integer_point(&s).unwrap();
        assert_eq!(p[0] - p[1], 3);
        assert!((0..=10).contains(&p[0]) && (0..=10).contains(&p[1]));
    }

    #[test]
    fn zero_vars() {
        let s = System::new(0);
        assert_eq!(find_integer_point(&s), Some(vec![]));
        let mut bad = System::new(0);
        bad.le(vec![], r(-1));
        assert!(find_integer_point(&bad).is_none());
    }

    #[test]
    fn dedup_keeps_tightest() {
        let mut s = System::new(1);
        s.le(vec![r(2)], r(10)); // x ≤ 5
        s.le(vec![r(1)], r(3)); // x ≤ 3 (tighter)
        let d = dedup(&s);
        assert_eq!(d.constraints.len(), 1);
        assert_eq!(d.constraints[0].bound, r(3));
    }
}
