//! Structured diagnostics with rustc-style rendering.
//!
//! Every finding of the legality analysis is a [`Diagnostic`]: a severity,
//! a stable [`Rule`] identifier (so callers can filter or allow-list), a
//! message, an optional source [`Span`], and attached [`Note`]s.  When the
//! nest was parsed from DSL text, [`Report::render`] draws the classic
//! caret snippet pointing at the offending reference or loop header.

use alp_loopir::{line_col, line_text, Span};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects legality.
    Note,
    /// Suspicious but legal; `--check` exits 3 when only warnings remain.
    Warning,
    /// The nest is not a legal doall; the compiler refuses it.
    Error,
}

impl Severity {
    /// The rustc-style label (`error`, `warning`, `note`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable identifiers for every rule the analysis can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Two distinct doall iterations touch the same array element and at
    /// least one access is a non-synchronized write (Def. 4 applied to
    /// the stacked system; Appendix A exempts accumulate/accumulate).
    DoallRace,
    /// A race that disappears if the statement is written as a
    /// fine-grain-synchronized reduction (`+=` / `l$`).
    DoallReduction,
    /// A doall index appears in no subscript of any reference: every
    /// iteration along that dimension touches identical data.
    DeadDoallDim,
    /// A loop with `lower > upper` never runs.
    ZeroTripLoop,
    /// A reference matrix `G` has linearly dependent nonzero columns
    /// (§3.4.1): the footprint analysis falls back to an independent
    /// column subset.
    RankDeficientRef,
    /// Two loops of the nest declare the same index name.
    ShadowedIndex,
}

impl Rule {
    /// The stable string id, e.g. `doall-race`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DoallRace => "doall-race",
            Rule::DoallReduction => "doall-reduction",
            Rule::DeadDoallDim => "dead-doall-dim",
            Rule::ZeroTripLoop => "zero-trip-loop",
            Rule::RankDeficientRef => "rank-deficient-ref",
            Rule::ShadowedIndex => "shadowed-index",
        }
    }

    /// The severity the rule fires at.
    pub fn severity(self) -> Severity {
        match self {
            Rule::DoallRace | Rule::ShadowedIndex => Severity::Error,
            Rule::DoallReduction
            | Rule::DeadDoallDim
            | Rule::ZeroTripLoop
            | Rule::RankDeficientRef => Severity::Warning,
        }
    }

    /// Every rule, for documentation listings.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::DoallRace,
            Rule::DoallReduction,
            Rule::DeadDoallDim,
            Rule::ZeroTripLoop,
            Rule::RankDeficientRef,
            Rule::ShadowedIndex,
        ]
    }
}

/// A secondary remark attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// The remark.
    pub message: String,
    /// Optional source location the remark points at.
    pub span: Option<Span>,
}

impl Note {
    /// A note without a location.
    pub fn text(message: impl Into<String>) -> Self {
        Note {
            message: message.into(),
            span: None,
        }
    }

    /// A note pointing at a span.
    pub fn spanned(message: impl Into<String>, span: Option<Span>) -> Self {
        Note {
            message: message.into(),
            span,
        }
    }
}

/// One finding of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity (defaults to the rule's).
    pub severity: Severity,
    /// Which rule fired.
    pub rule: Rule,
    /// Primary message.
    pub message: String,
    /// Primary source location, when the IR was parsed from text.
    pub span: Option<Span>,
    /// Attached remarks (witness iterations, suggestions, …).
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// A diagnostic at the rule's default severity.
    pub fn new(rule: Rule, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            severity: rule.severity(),
            rule,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attach a note.
    pub fn with_note(mut self, note: Note) -> Self {
        self.notes.push(note);
        self
    }
}

/// The full outcome of analysing a nest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in emission order (races first).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when any finding is an error: the nest must not run as a
    /// doall.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True when any finding is a warning.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
    }

    /// Number of findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Append another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Render all diagnostics as rustc-style text against the DSL source
    /// the nest was parsed from.  Pass `""` when the IR was hand-built
    /// (spans are `None` and only the messages print).
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&render_one(d, src));
            out.push('\n');
        }
        let (e, w) = (self.count(Severity::Error), self.count(Severity::Warning));
        if e > 0 {
            out.push_str(&format!(
                "error: nest is not a legal doall ({e} error{}, {w} warning{})\n",
                plural(e),
                plural(w)
            ));
        } else if w > 0 {
            out.push_str(&format!("warning: {w} lint{} fired\n", plural(w)));
        }
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Render `severity[rule]: message`, the caret snippet for the primary
/// span, then each note (with its own snippet when it has a span).
fn render_one(d: &Diagnostic, src: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity.label(), d.rule.id(), d.message);
    if let Some(snippet) = snippet(src, d.span, "") {
        out.push_str(&snippet);
    }
    for n in &d.notes {
        match snippet(src, n.span, &n.message) {
            Some(s) => out.push_str(&s),
            None => out.push_str(&format!("  = note: {}\n", n.message)),
        }
    }
    out
}

/// The `--> line:col` header plus caret-underlined source line, or `None`
/// when there is no span or no source to point into.
fn snippet(src: &str, span: Option<Span>, label: &str) -> Option<String> {
    let span = span?;
    if src.is_empty() || span.start >= src.len() {
        return None;
    }
    let (line, col) = line_col(src, span.start);
    let (text, line_start) = line_text(src, span.start);
    let gutter = line.to_string();
    let pad = " ".repeat(gutter.len());
    // Carets cover the span, clipped to the line it starts on.
    let caret_start = span.start - line_start;
    let caret_len = span
        .len()
        .min(text.len().saturating_sub(caret_start))
        .max(1);
    let mut out = format!("  {pad}--> {line}:{col}\n");
    out.push_str(&format!("  {pad} |\n"));
    out.push_str(&format!("  {gutter} | {text}\n"));
    out.push_str(&format!(
        "  {pad} | {}{}{}{}\n",
        " ".repeat(caret_start),
        "^".repeat(caret_len),
        if label.is_empty() { "" } else { " " },
        label
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable() {
        let ids: Vec<&str> = Rule::all().iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec![
                "doall-race",
                "doall-reduction",
                "dead-doall-dim",
                "zero-trip-loop",
                "rank-deficient-ref",
                "shadowed-index"
            ]
        );
    }

    #[test]
    fn report_counts() {
        let mut r = Report::default();
        assert!(!r.has_errors());
        r.diagnostics
            .push(Diagnostic::new(Rule::DeadDoallDim, "dead", None));
        assert!(!r.has_errors());
        assert!(r.has_warnings());
        r.diagnostics
            .push(Diagnostic::new(Rule::DoallRace, "race", None));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn renders_caret_snippet() {
        let src = "doall (i, 0, 3) {\n  A[1] = B[i];\n}";
        let span = Span::new(src.find("A[1]").unwrap(), src.find("A[1]").unwrap() + 4);
        let d = Diagnostic::new(Rule::DoallRace, "doall iterations race on `A`", Some(span))
            .with_note(Note::text(
                "iteration (0) and iteration (1) both write A[1]",
            ));
        let mut rep = Report::default();
        rep.diagnostics.push(d);
        let text = rep.render(src);
        assert!(
            text.contains("error[doall-race]: doall iterations race on `A`"),
            "{text}"
        );
        assert!(text.contains("--> 2:3"), "{text}");
        assert!(text.contains("  A[1] = B[i];"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("= note: iteration (0)"), "{text}");
        assert!(text.contains("1 error"), "{text}");
    }

    #[test]
    fn renders_without_source() {
        let d = Diagnostic::new(Rule::ZeroTripLoop, "loop `i` never runs", None);
        let mut rep = Report::default();
        rep.diagnostics.push(d);
        let text = rep.render("");
        assert!(text.contains("warning[zero-trip-loop]"), "{text}");
        assert!(!text.contains("-->"), "{text}");
    }
}
