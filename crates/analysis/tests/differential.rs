//! Differential validation of the exact dependence tester against a
//! brute-force oracle that enumerates every iteration pair.
//!
//! Trip counts stay small (≤ 6) so the oracle is exhaustive; the exact
//! tester must agree on the verdict for every pair, and every witness it
//! produces must be a genuine in-bounds distinct-iteration conflict.

use alp_analysis::{brute_force_conflict, pair_conflict, witness_is_valid};
use alp_loopir::{AccessKind, AffineExpr, ArrayRef, LoopIndex, LoopNest, Statement};

/// Deterministic xorshift-free LCG (no external RNG crates available in
/// the verification environment).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform-ish integer in `lo..=hi`.
    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        lo + (self.next() as i128) % (hi - lo + 1)
    }
}

fn check_all_pairs(nest: &LoopNest, ctx: &str) {
    let refs = nest.all_refs();
    for r1 in &refs {
        for r2 in &refs {
            if r1.array != r2.array {
                continue;
            }
            let exact = pair_conflict(nest, r1, r2);
            let brute = brute_force_conflict(nest, r1, r2);
            assert_eq!(
                exact.is_some(),
                brute.is_some(),
                "verdict mismatch ({ctx}):\n{}\nr1={r1:?}\nr2={r2:?}\nexact={exact:?}\nbrute={brute:?}",
                nest.display()
            );
            if let Some(w) = exact {
                assert!(
                    witness_is_valid(nest, r1, r2, &w),
                    "invalid witness ({ctx}):\n{}\n{w:?}",
                    nest.display()
                );
            }
        }
    }
}

/// Exhaustive sweep over depth-1 pairs `A[c1·i+o1]` vs `A[c2·i+o2]` with
/// small coefficients: covers zero coefficients, parity obstructions,
/// reflections and out-of-range offsets.
#[test]
fn exhaustive_depth1_pairs() {
    for c1 in -2i128..=2 {
        for o1 in -2i128..=2 {
            for c2 in -2i128..=2 {
                for o2 in -2i128..=2 {
                    let r1 =
                        ArrayRef::new("A", vec![AffineExpr::new(vec![c1], o1)], AccessKind::Write);
                    let r2 =
                        ArrayRef::new("A", vec![AffineExpr::new(vec![c2], o2)], AccessKind::Read);
                    let nest = LoopNest::new(
                        vec![LoopIndex::new("i", 0, 5)],
                        vec![Statement::new(r1, vec![r2])],
                    )
                    .unwrap();
                    check_all_pairs(&nest, &format!("c1={c1} o1={o1} c2={c2} o2={o2}"));
                }
            }
        }
    }
}

/// Exhaustive sweep over depth-2 diagonal pairs `A[i+b·j]` vs
/// `A[c·i+d·j+e]` — the 2-D shapes (skewed, transposed, shifted) the
/// paper's examples revolve around.
#[test]
fn exhaustive_depth2_diagonals() {
    for b in -1i128..=1 {
        for c in -1i128..=1 {
            for d in -1i128..=1 {
                for e in -2i128..=2 {
                    let r1 =
                        ArrayRef::new("A", vec![AffineExpr::new(vec![1, b], 0)], AccessKind::Write);
                    let r2 =
                        ArrayRef::new("A", vec![AffineExpr::new(vec![c, d], e)], AccessKind::Read);
                    let nest = LoopNest::new(
                        vec![LoopIndex::new("i", 0, 3), LoopIndex::new("j", 0, 3)],
                        vec![Statement::new(r1, vec![r2])],
                    )
                    .unwrap();
                    check_all_pairs(&nest, &format!("b={b} c={c} d={d} e={e}"));
                }
            }
        }
    }
}

/// Randomized nests: depth 1–3, trip counts ≤ 6, 1–2 statements, array
/// dims 1–2, coefficients in [-2, 2], offsets in [-3, 3].
#[test]
fn random_nests_agree_with_oracle() {
    let mut rng = Lcg(0x5eed_cafe_f00d_0001);
    for case in 0..300 {
        let depth = rng.range(1, 3) as usize;
        let loops: Vec<LoopIndex> = (0..depth)
            .map(|k| {
                let lo = rng.range(-2, 2);
                let trips = rng.range(1, if depth == 1 { 6 } else { 3 });
                LoopIndex::new(format!("i{k}"), lo, lo + trips - 1)
            })
            .collect();
        // Fixed per-array dimensionality, as validation requires.
        let dim_a = rng.range(1, 2) as usize;
        let dim_b = rng.range(1, 2) as usize;
        let mk_ref = |rng: &mut Lcg, kind: AccessKind| {
            let (name, dim) = if rng.range(0, 1) == 0 {
                ("A", dim_a)
            } else {
                ("B", dim_b)
            };
            let subs: Vec<AffineExpr> = (0..dim)
                .map(|_| {
                    AffineExpr::new(
                        (0..depth).map(|_| rng.range(-2, 2)).collect(),
                        rng.range(-3, 3),
                    )
                })
                .collect();
            ArrayRef::new(name, subs, kind)
        };
        let body: Vec<Statement> = (0..rng.range(1, 2))
            .map(|_| {
                let lhs = mk_ref(&mut rng, AccessKind::Write);
                let nreads = rng.range(1, 2);
                let rhs = (0..nreads)
                    .map(|_| mk_ref(&mut rng, AccessKind::Read))
                    .collect();
                Statement::new(lhs, rhs)
            })
            .collect();
        let nest = LoopNest::new(loops, body).expect("bounds are non-empty by construction");
        check_all_pairs(&nest, &format!("random case {case}"));
    }
}
