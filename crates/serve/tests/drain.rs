//! Shutdown-race and graceful-drain tests over the real socket.
//!
//! The drain contract: a `shutdown` request (or `begin_drain`) flips
//! the server to refusing new plan/run work with `ALP0015` while
//! `stats`/`ping` still answer and everything already admitted keeps
//! executing; `finish` bounds the drain with a deadline and answers
//! whatever is still queued past it with `ALP0015` *unexecuted*.  None
//! of it may deadlock, no matter how shutdown races in-flight traffic.

use alp_serve::{Request, RequestOp, Response, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "alp-drain-{}-{tag}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One request over a fresh connection; panics on transport failure
/// (these tests assert liveness — a hung call is the bug).
fn call(path: &PathBuf, req: &Request) -> Response {
    let mut stream = UnixStream::connect(path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut line = req.encode();
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("write");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("read");
    Response::decode(&resp).expect("decode")
}

const SRC: &str = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";

#[test]
fn draining_refuses_new_work_but_still_answers_stats_and_ping() {
    let path = sock_path("refuse");
    let handle = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .serve(&path)
    .expect("serve");

    // Warm one plan, then ask for the drain over the wire.
    let ok = call(&path, &Request::plan(1, SRC));
    assert!(ok.ok, "{ok:?}");
    let ack = call(&path, &Request::control(2, RequestOp::Shutdown));
    assert!(ack.ok, "shutdown is acknowledged");
    assert!(handle.is_draining());

    // Control plane stays up; the work plane refuses with ALP0015 —
    // even for the plan that is sitting in the cache.
    assert!(call(&path, &Request::control(3, RequestOp::Ping)).ok);
    let stats = call(&path, &Request::control(4, RequestOp::Stats));
    assert!(stats.ok && stats.stats.is_some(), "{stats:?}");
    let refused = call(&path, &Request::plan(5, SRC));
    assert!(!refused.ok);
    assert_eq!(refused.code.as_deref(), Some("ALP0015"), "{refused:?}");
    let refused_run = call(&path, &Request::run(6, SRC));
    assert_eq!(refused_run.code.as_deref(), Some("ALP0015"));

    let out = handle.finish(Duration::from_secs(5));
    assert!(out.drained, "nothing was queued");
    assert_eq!(out.abandoned, 0);
    assert!(out.stats.refused >= 2, "refusals counted: {:?}", out.stats);
    assert!(!path.exists(), "socket file removed");
}

#[test]
fn double_shutdown_is_idempotent() {
    let path = sock_path("double");
    let handle = Server::new(ServeConfig::default())
        .serve(&path)
        .expect("serve");
    assert!(call(&path, &Request::control(1, RequestOp::Shutdown)).ok);
    assert!(call(&path, &Request::control(2, RequestOp::Shutdown)).ok);
    handle.begin_drain();
    handle.begin_drain();
    let out = handle.finish(Duration::from_secs(5));
    assert!(out.drained);
    assert_eq!(out.abandoned, 0);
}

#[test]
fn concurrent_shutdown_and_inflight_traffic_never_deadlocks() {
    let path = sock_path("race");
    let handle = Server::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .serve(&path)
    .expect("serve");

    // Clients hammer plan/run while the drain begins underneath them.
    // Every request must get *some* answer: ok, ALP0012 (shed),
    // ALP0015 (draining) — never a hang.
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut answered = 0;
                for i in 0..24 {
                    let src = format!(
                        "doall (i, 0, {}) {{ A[i] = A[i]; }}",
                        15 + (c * 24 + i) % 40
                    );
                    let req = if i % 3 == 0 {
                        Request::run(i as i128, &src)
                    } else {
                        Request::plan(i as i128, &src)
                    };
                    let resp = call(&path, &req);
                    assert!(
                        resp.ok
                            || matches!(resp.code.as_deref(), Some("ALP0012") | Some("ALP0015")),
                        "unexpected failure: {resp:?}"
                    );
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    // Let traffic get in flight, then drain.
    std::thread::sleep(Duration::from_millis(10));
    handle.begin_drain();
    let mut total = 0;
    for c in clients {
        total += c.join().expect("client thread");
    }
    assert_eq!(total, 8 * 24, "every request answered");
    let out = handle.finish(Duration::from_secs(10));
    assert!(out.drained, "admitted work finished inside the deadline");
}

#[test]
fn drain_deadline_abandons_queued_work_with_alp0015() {
    let path = sock_path("deadline");
    // One worker and a corpus of genuinely slow `run` requests (1M-2M
    // iterations each): the queue cannot drain inside a ~zero deadline.
    let handle = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .serve(&path)
    .expect("serve");

    let clients: Vec<_> = (0..6)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let src = format!(
                    "doall (i, 0, {}) {{ doall (j, 0, 1023) {{ A[i,j] = A[i,j] + B[i,j]; }} }}",
                    1023 + c
                );
                call(&path, &Request::run(c as i128, &src))
            })
        })
        .collect();
    // Give the requests time to be admitted, then drain with a
    // deadline far shorter than the queued work.
    std::thread::sleep(Duration::from_millis(50));
    let out = handle.finish(Duration::from_millis(1));
    let mut codes = Vec::new();
    for c in clients {
        let resp = c.join().expect("client thread");
        codes.push(resp.code.clone());
        assert!(
            resp.ok || matches!(resp.code.as_deref(), Some("ALP0012") | Some("ALP0015")),
            "every client answered, never hung: {resp:?}"
        );
    }
    if out.abandoned > 0 {
        assert!(!out.drained);
        assert!(
            codes.iter().flatten().any(|c| c == "ALP0015"),
            "abandoned jobs were answered with ALP0015: {codes:?} ({out:?})"
        );
    }
}
