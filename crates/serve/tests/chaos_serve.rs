//! Fault containment through the server path (requires the `chaos`
//! feature): a chaos-injected tile panic or a missed deadline in one
//! request must fail only that request — the shard it hashed to stays
//! serviceable, coalesced waiters of *other* keys are unaffected, and
//! the same fingerprint succeeds on the very next request.
#![cfg(feature = "chaos")]

use alp_serve::{Request, RequestOp, Response, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SRC: &str = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";

fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "alp-serve-chaos-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(path: &std::path::Path) -> Client {
        let stream = UnixStream::connect(path).expect("connect");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn round_trip(&mut self, req: &Request) -> Response {
        let mut line = req.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        Response::decode(&resp).expect("decode")
    }
}

/// The tile aimed at by `FaultPlan::seeded_panic(seed, tiles, reps)`,
/// recomputed through the chaos crate so the request fields and the
/// injector agree on the target.
fn seeded_target(seed: u64, tiles: usize) -> (usize, u64) {
    let (tile, rep, _) = alp_chaos::FaultPlan::seeded_panic(seed, tiles, 1)
        .schedule()
        .pop()
        .expect("one fault");
    (tile, rep)
}

#[test]
fn injected_tile_panic_fails_only_its_own_request() {
    let path = sock_path("panic");
    let handle = Server::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .serve(&path)
    .unwrap();

    // The faulty request and the healthy ones share a fingerprint:
    // containment must hold even inside one shard slot.
    let (tile, rep) = seeded_target(7, 16);
    let faulty = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut req = Request::run(100, SRC);
            req.run.threads = 2;
            req.run.fault_panic = Some((tile, rep));
            Client::connect(&path).round_trip(&req)
        })
    };
    let healthy: Vec<_> = (0..6)
        .map(|i| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut req = Request::run(i as i128, SRC);
                req.run.threads = 2;
                Client::connect(&path).round_trip(&req)
            })
        })
        .collect();

    let bad = faulty.join().expect("client thread");
    assert!(!bad.ok, "injected panic must fail the request");
    assert_eq!(bad.code.as_deref(), Some("ALP0008"), "contained tile fault");
    for h in healthy {
        let resp = h.join().expect("client thread");
        assert!(resp.ok, "healthy request failed: {:?}", resp.error);
        assert_eq!(resp.matches_reference, Some(true));
    }

    // The shard is not poisoned: the same fingerprint still serves.
    let mut c = Client::connect(&path);
    let after = c.round_trip(&Request::run(200, SRC));
    assert!(
        after.ok,
        "shard poisoned by contained fault: {:?}",
        after.error
    );
    assert_eq!(after.cache.as_deref(), Some("hit"), "plan still cached");

    let stats = handle.shutdown();
    assert_eq!(stats.misses, 1, "one compile despite the faulted run");
    assert_eq!(stats.failures, 1, "exactly the faulty request failed");
    assert_eq!(stats.runs_ok, 7);
}

#[test]
fn deadline_in_one_request_does_not_drop_others() {
    let path = sock_path("deadline");
    let handle = Server::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .serve(&path)
    .unwrap();

    // An impossible deadline: ALP0007 for this request only.
    let doomed = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut req = Request::run(1, SRC);
            req.run.timeout_ms = Some(0);
            Client::connect(&path).round_trip(&req)
        })
    };
    let fine = {
        let path = path.clone();
        std::thread::spawn(move || Client::connect(&path).round_trip(&Request::run(2, SRC)))
    };
    let bad = doomed.join().unwrap();
    assert!(!bad.ok);
    assert_eq!(bad.code.as_deref(), Some("ALP0007"), "deadline code");
    let good = fine.join().unwrap();
    assert!(good.ok, "unrelated request dropped: {:?}", good.error);

    // Server still fully alive.
    let mut c = Client::connect(&path);
    assert!(c.round_trip(&Request::control(3, RequestOp::Ping)).ok);
    assert!(c.round_trip(&Request::run(4, SRC)).ok);
    handle.shutdown();
}

#[test]
fn chaos_fields_round_trip_the_wire() {
    let mut req = Request::run(5, SRC);
    req.run.fault_panic = Some((3, 2));
    let decoded = Request::decode(&req.encode()).unwrap();
    assert_eq!(decoded.run.fault_panic, Some((3, 2)));
}
