//! Resilient-client tests against a deliberately flaky transport.
//!
//! A proxy socket sits between the client and a real server and
//! misbehaves on a deterministic schedule — dropping connections
//! before relaying, or reading the request and dying without a reply
//! (the ambiguous "did it execute?" case).  The contract under test:
//!
//! * retries converge **bitwise** to the fault-free answer;
//! * the retry budget honors idempotence — an uncertified `run` is
//!   never resent once bytes may have reached the server, while
//!   `RetryPolicy::Certified` retries through the ambiguity;
//! * exhaustion and deadline produce typed errors, not hangs.

use alp_serve::client::RetryPolicy;
use alp_serve::{Client, ClientConfig, ClientError, Request, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "alp-client-{}-{tag}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// How the proxy treats one accepted connection.
#[derive(Clone, Copy)]
enum ProxyMode {
    /// Close immediately: the client's write (or read) fails fast.
    Drop,
    /// Read the full request — bytes provably reached "the server" —
    /// then die without replying.
    ReadThenDrop,
    /// Relay the request to the real server and the response back.
    Forward,
}

/// A single-threaded proxy: connection `n` behaves per `schedule[n]`
/// (sticking to `Forward` past the end).  Returns the proxy path.
fn flaky_proxy(upstream: PathBuf, schedule: Vec<ProxyMode>, tag: &str) -> PathBuf {
    let path = sock_path(tag);
    let listener = UnixListener::bind(&path).expect("bind proxy");
    std::thread::spawn(move || {
        let served = AtomicUsize::new(0);
        for stream in listener.incoming() {
            let Ok(client) = stream else { break };
            let n = served.fetch_add(1, Ordering::SeqCst);
            let mode = schedule.get(n).copied().unwrap_or(ProxyMode::Forward);
            match mode {
                ProxyMode::Drop => drop(client),
                ProxyMode::ReadThenDrop => {
                    let mut line = String::new();
                    let mut r = BufReader::new(client);
                    let _ = r.read_line(&mut line);
                    // Connection dropped with the request consumed and
                    // no response: the ambiguous failure.
                }
                ProxyMode::Forward => {
                    let Ok(server) = UnixStream::connect(&upstream) else {
                        continue;
                    };
                    let mut line = String::new();
                    let mut cr = BufReader::new(client.try_clone().expect("clone"));
                    if cr.read_line(&mut line).is_err() || line.is_empty() {
                        continue;
                    }
                    let mut sw = server.try_clone().expect("clone");
                    if sw.write_all(line.as_bytes()).is_err() {
                        continue;
                    }
                    let mut resp = String::new();
                    if BufReader::new(server).read_line(&mut resp).is_ok() {
                        let mut cw = client;
                        let _ = cw.write_all(resp.as_bytes());
                    }
                }
            }
        }
    });
    path
}

fn fast_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        max_attempts: 5,
        base_backoff_ms: 1,
        backoff_cap_ms: 5,
        seed,
        ..ClientConfig::default()
    }
}

const SRC: &str = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";

#[test]
fn retries_converge_bitwise_to_the_fault_free_answer() {
    let real = sock_path("upstream-bitwise");
    let handle = Server::new(ServeConfig::default())
        .serve(&real)
        .expect("serve");
    let proxy = flaky_proxy(
        real.clone(),
        vec![ProxyMode::Drop, ProxyMode::ReadThenDrop],
        "bitwise",
    );

    let mut want_plan = Request::plan(7, SRC);
    want_plan.want_plan = true;

    // Fault-free answer straight from the server.
    let mut direct = Client::new(&real, fast_cfg(1));
    let clean = direct
        .call(&want_plan, RetryPolicy::Idempotent)
        .expect("direct call");
    assert!(clean.ok, "{clean:?}");

    // Two bad connections, then success: the answer is byte-identical.
    let mut client = Client::new(&proxy, fast_cfg(2));
    let resp = client
        .call(&want_plan, RetryPolicy::Idempotent)
        .expect("retries converge");
    assert!(resp.ok);
    assert_eq!(client.sleeps().len(), 2, "two backoffs before success");
    assert_eq!(resp.fingerprint, clean.fingerprint);
    assert_eq!(
        resp.plan, clean.plan,
        "retried plan artifact is bitwise equal to the fault-free one"
    );
    handle.shutdown();
}

#[test]
fn exhaustion_surfaces_a_typed_error_not_a_hang() {
    let real = sock_path("upstream-exhaust");
    let handle = Server::new(ServeConfig::default())
        .serve(&real)
        .expect("serve");
    let proxy = flaky_proxy(real.clone(), vec![ProxyMode::Drop; 32], "exhaust");
    let mut client = Client::new(&proxy, fast_cfg(3));
    let err = client
        .call(&Request::plan(1, SRC), RetryPolicy::Idempotent)
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Exhausted { attempts: 5, .. }),
        "{err:?}"
    );
    handle.shutdown();
}

#[test]
fn uncertified_run_aborts_on_ambiguous_failure_certified_retries_through() {
    let real = sock_path("upstream-gate");
    let handle = Server::new(ServeConfig::default())
        .serve(&real)
        .expect("serve");

    // The request is consumed, then the connection dies: the client
    // cannot know whether the run executed.
    let ambiguous = Arc::new(flaky_proxy(
        real.clone(),
        vec![ProxyMode::ReadThenDrop],
        "gate-none",
    ));
    let run = Request::run(1, SRC);
    let mut strict = Client::new(&ambiguous, fast_cfg(4));
    let err = strict.call(&run, RetryPolicy::None).unwrap_err();
    assert!(
        matches!(err, ClientError::NotRetryable { .. }),
        "an uncertified run must not be resent after bytes left: {err:?}"
    );
    assert!(strict.sleeps().is_empty(), "no retry, no backoff");

    // Same failure, but the plan's certificate proves idempotent
    // execution — the full retry budget applies and converges.
    let proxy2 = flaky_proxy(real.clone(), vec![ProxyMode::ReadThenDrop], "gate-cert");
    let mut certified = Client::new(&proxy2, fast_cfg(5));
    let resp = certified
        .call(&run, RetryPolicy::Certified)
        .expect("certified retry converges");
    assert!(resp.ok, "{resp:?}");
    assert_eq!(resp.matches_reference, Some(true));
    assert_eq!(certified.sleeps().len(), 1, "one backoff, then success");
    handle.shutdown();
}

#[test]
fn transient_server_refusals_are_retried() {
    // ALP0015 (draining) is transient: a client pointed at a draining
    // instance keeps retrying (in production it would flip to a
    // replacement; here the budget simply exhausts).
    let real = sock_path("upstream-draining");
    let handle = Server::new(ServeConfig::default())
        .serve(&real)
        .expect("serve");
    handle.begin_drain();
    let mut client = Client::new(&real, fast_cfg(6));
    let err = client
        .call(&Request::plan(1, SRC), RetryPolicy::Idempotent)
        .unwrap_err();
    match err {
        ClientError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 5);
            assert!(last.contains("ALP0015"), "{last}");
        }
        other => panic!("expected exhaustion on ALP0015, got {other:?}"),
    }
    handle.finish(std::time::Duration::from_secs(5));
}
