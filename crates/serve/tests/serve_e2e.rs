//! End-to-end tests of the plan service over its real Unix socket:
//! protocol round trips, coalescing under concurrency, admission
//! control and class-based shedding, inline serving of cached plans
//! under total overload, and graceful shutdown.

use alp_serve::pipeline::PlanSpec;
use alp_serve::{LoadGenConfig, Request, RequestOp, Response, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SRC: &str = "doall (i, 0, 63) { A[i] = A[i] + B[i]; }";

fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "alp-serve-test-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

/// A tiny synchronous protocol client.
struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(path: &std::path::Path) -> Client {
        let stream = UnixStream::connect(path).expect("connect");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, req: &Request) {
        let mut line = req.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Response::decode(&line).expect("decode")
    }

    fn round_trip(&mut self, req: &Request) -> Response {
        self.send(req);
        self.recv()
    }
}

#[test]
fn plan_run_stats_ping_over_the_socket() {
    let path = sock_path("basic");
    let handle = Server::new(ServeConfig::default()).serve(&path).unwrap();
    let mut c = Client::connect(&path);

    let pong = c.round_trip(&Request::control(1, RequestOp::Ping));
    assert!(pong.ok && pong.id == 1);

    let mut plan_req = Request::plan(2, SRC);
    plan_req.want_plan = true;
    let planned = c.round_trip(&plan_req);
    assert!(planned.ok, "plan failed: {:?}", planned.error);
    assert_eq!(planned.cache.as_deref(), Some("computed"));
    assert_eq!(planned.tiles, Some(16));
    let plan_json = planned.plan.expect("want_plan returns the artifact");
    let decoded = alp_plan::PartitionPlan::from_json_str(&plan_json).expect("valid plan JSON");
    assert_eq!(Some(decoded.fingerprint), planned.fingerprint);

    // Same nest again: inline cache hit.
    let again = c.round_trip(&Request::plan(3, SRC));
    assert!(again.ok);
    assert_eq!(again.cache.as_deref(), Some("hit"));

    let mut run_req = Request::run(4, SRC);
    run_req.run.threads = 2;
    let ran = c.round_trip(&run_req);
    assert!(ran.ok, "run failed: {:?}", ran.error);
    assert_eq!(ran.matches_reference, Some(true));
    assert_eq!(ran.iterations, Some(64));
    assert_eq!(ran.cache.as_deref(), Some("hit"), "run reused the plan");

    let stats = c.round_trip(&Request::control(5, RequestOp::Stats));
    let s = stats.stats.expect("stats payload");
    assert_eq!(s.misses, 1, "one compile total");
    assert!(s.hits >= 2);
    assert_eq!(s.runs_ok, 1);
    assert_eq!(s.inline_hits, 1, "plan #3 was served on the reader thread");

    assert!(c.round_trip(&Request::control(6, RequestOp::Shutdown)).ok);
    handle.wait();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn errors_map_to_stable_codes() {
    let path = sock_path("errors");
    let handle = Server::new(ServeConfig::default()).serve(&path).unwrap();
    let mut c = Client::connect(&path);

    let bad = c.round_trip(&Request::plan(1, "doall (i, 0"));
    assert!(!bad.ok);
    assert_eq!(bad.code.as_deref(), Some("ALP0001"), "parse error");

    let racy = c.round_trip(&Request::plan(2, "doall (i, 0, 31) { A[0] = A[i]; }"));
    assert!(!racy.ok);
    assert_eq!(racy.code.as_deref(), Some("ALP0003"), "illegal doall");

    // The same racy nest compiles with no_check.
    let mut unchecked = Request::plan(3, "doall (i, 0, 31) { A[0] = A[i]; }");
    unchecked.plan.check = false;
    let ok = c.round_trip(&unchecked);
    assert!(ok.ok, "unchecked plan: {:?}", ok.error);

    // Memory budget: ALP0009 through the server path.
    let mut tiny = Request::run(4, SRC);
    tiny.run.max_store_bytes = Some(16);
    let refused = c.round_trip(&tiny);
    assert!(!refused.ok);
    assert_eq!(refused.code.as_deref(), Some("ALP0009"));

    handle.shutdown();
}

impl Client {
    /// Send a raw line (protocol-violation testing).
    fn round_trip_raw(&mut self, line: &str) -> Response {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.recv()
    }
}

#[test]
fn malformed_frames_are_answered_not_fatal() {
    let path = sock_path("frames");
    let handle = Server::new(ServeConfig::default()).serve(&path).unwrap();
    let mut c = Client::connect(&path);
    let r = c.round_trip_raw("this is not json");
    assert!(!r.ok);
    assert_eq!(r.code.as_deref(), Some("ALP0006"));
    let r = c.round_trip_raw("{\"alp-serve\": 1, \"op\": \"nonsense\"}");
    assert!(!r.ok);
    // The connection survives protocol violations.
    assert!(c.round_trip(&Request::control(9, RequestOp::Ping)).ok);
    handle.shutdown();
}

#[test]
fn concurrent_same_key_requests_coalesce_to_one_compile() {
    const CLIENTS: usize = 12;
    let path = sock_path("coalesce");
    let handle = Server::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .serve(&path)
    .unwrap();

    // A nest heavy enough that its compile window is wide.
    let src = "doall (i, 1, 40) { doall (j, 1, 40) { doall (k, 1, 40) {
        A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]; } } }";
    let joins: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let path = path.clone();
            let src = src.to_string();
            std::thread::spawn(move || {
                Client::connect(&path).round_trip(&Request::plan(i as i128, &src))
            })
        })
        .collect();
    let mut computed = 0;
    for j in joins {
        let resp = j.join().expect("client thread");
        assert!(resp.ok, "plan failed: {:?}", resp.error);
        if resp.cache.as_deref() == Some("computed") {
            computed += 1;
        }
    }
    assert_eq!(computed, 1, "exactly one compile leader");
    let stats = handle.shutdown();
    assert_eq!(stats.misses, 1, "server-side: one compile for the key");
    assert_eq!(
        stats.hits + stats.coalesced + stats.misses,
        CLIENTS as u64,
        "every request accounted for"
    );
}

#[test]
fn overload_sheds_runs_before_plans_and_serves_cached_inline() {
    let path = sock_path("overload");
    // queue_cap 0: every queue-bound request sheds.  The prewarmed
    // plan must still be served inline.
    let handle = Server::new(ServeConfig {
        queue_cap: 0,
        workers: 1,
        prewarm: vec![PlanSpec {
            source: SRC.to_string(),
            processors: 16,
            check: true,
            certify: false,
        }],
        ..ServeConfig::default()
    })
    .serve(&path)
    .unwrap();
    let mut c = Client::connect(&path);

    // Tier 1: cached plan answers even though the queue admits nothing.
    let cached = c.round_trip(&Request::plan(1, SRC));
    assert!(cached.ok, "cached plan served under total overload");
    assert_eq!(cached.cache.as_deref(), Some("hit"));

    // An uncached plan and any run shed with ALP0012.
    let cold = c.round_trip(&Request::plan(2, "doall (i, 0, 7) { C[i] = C[i]; }"));
    assert!(!cold.ok);
    assert_eq!(cold.code.as_deref(), Some("ALP0012"));
    let run = c.round_trip(&Request::run(3, SRC));
    assert!(!run.ok);
    assert_eq!(run.code.as_deref(), Some("ALP0012"), "runs shed too");

    let stats = handle.shutdown();
    assert_eq!(stats.shed_plan, 1);
    assert_eq!(stats.shed_run, 1);
    assert_eq!(stats.inline_hits, 1);
}

#[test]
fn run_high_water_sheds_runs_only() {
    let path = sock_path("highwater");
    // run_high_water 0 with a roomy queue: runs always shed, plans
    // always admit.
    let handle = Server::new(ServeConfig {
        queue_cap: 64,
        run_high_water: Some(0),
        ..ServeConfig::default()
    })
    .serve(&path)
    .unwrap();
    let mut c = Client::connect(&path);
    let run = c.round_trip(&Request::run(1, SRC));
    assert_eq!(run.code.as_deref(), Some("ALP0012"));
    let plan = c.round_trip(&Request::plan(2, SRC));
    assert!(plan.ok, "plans still admitted: {:?}", plan.error);
    let stats = handle.shutdown();
    assert_eq!(stats.shed_run, 1);
    assert_eq!(stats.shed_plan, 0);
}

#[test]
fn loadgen_smoke_accounts_for_every_request() {
    let path = sock_path("loadgen");
    let cfg = LoadGenConfig {
        clients: 4,
        window: 16,
        requests: 200,
        corpus: 24,
        hot: 4,
        run_percent: 10,
        ..LoadGenConfig::default()
    };
    let report = alp_serve::run_loadgen(
        &cfg,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        &path,
    )
    .expect("loadgen runs");
    assert_eq!(report.sent, 200);
    assert_eq!(report.ok + report.errors + report.shed, 200);
    assert_eq!(report.hits + report.coalesced + report.computed, report.ok);
    assert!(
        report.computed <= 24,
        "at most one compile per corpus entry"
    );
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);
    assert!(report.cores >= 1);
    assert_eq!(report.max_concurrent, 64);
    // Server-side and client-side views agree on sheds.
    assert_eq!(report.server.shed(), report.shed);
    // Batch draining never invents or loses work: batch tails are a
    // subset of the queue-bound jobs (everything sent minus sheds and
    // inline answers), and at most WORKER_BATCH-1 = 7 of every 8.
    let queued = report.sent as u64 - report.shed as u64 - report.server.inline_hits;
    assert!(
        report.server.batched <= queued.saturating_sub(queued.div_ceil(8)),
        "batch tails ({}) exceed what {queued} queued jobs can produce",
        report.server.batched
    );
    assert!(!path.exists(), "loadgen cleans up its socket");
}
