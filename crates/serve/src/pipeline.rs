//! The thin compile/execute pipeline behind the server, restated from
//! the root facade on purpose: `alp-serve` must not depend on the root
//! `alp` crate (whose binary links this crate back), so the two layers
//! share the leaf crates and the `ALP000x` code contract instead of a
//! type.  Every failure is folded into the `Clone`-able
//! [`ServeError`], which is what lets one failed compile be handed to
//! every coalesced waiter.

use crate::ServeError;
use alp_plan::{LegalityVerdict, PartitionPlan, PlanError, PlanKey};
use alp_runtime::{ExecOptions, Executor, RuntimeError};
use std::sync::Arc;
use std::time::Duration;

/// Parameters of one plan request, normalized.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// DSL source of the nest.
    pub source: String,
    /// Processors to partition for.
    pub processors: i128,
    /// Run the doall legality analysis (default on).
    pub check: bool,
    /// Embed a freshly proven certificate in the plan (`ALP0011` when
    /// the plan cannot be interpreted by the certifier).  Certified
    /// plans widen the client's retry policy and survive restarts with
    /// their proofs attached.
    pub certify: bool,
}

impl PlanSpec {
    /// The cache key for this spec: structural fingerprint plus every
    /// parameter that can change the plan.  Parse errors surface here
    /// (before admission) so malformed sources never occupy a queue
    /// slot.
    pub fn key(&self) -> Result<PlanKey, ServeError> {
        let nest = alp_loopir::parse(&self.source)
            .map_err(|e| ServeError::new("ALP0001", e.to_string()))?;
        Ok(PlanKey {
            fingerprint: alp_plan::fingerprint(&nest),
            processors: self.processors,
            mesh: None,
            checked: self.check,
            calibrated: false,
            skewed: false,
            certified: self.certify,
        })
    }
}

/// Analysis + partitioning for one spec — the expensive phase the
/// sharded cache memoizes.  Error codes match the root facade:
/// `ALP0001` parse, `ALP0003` illegal doall, `ALP0004` infeasible,
/// `ALP0006` other plan failures.
pub fn build_plan(spec: &PlanSpec) -> Result<PartitionPlan, ServeError> {
    let nest =
        alp_loopir::parse(&spec.source).map_err(|e| ServeError::new("ALP0001", e.to_string()))?;
    let verdict = if spec.check {
        let report = alp_analysis::analyze(&nest);
        if report.has_errors() {
            return Err(ServeError::new("ALP0003", report.render("").trim_end()));
        }
        LegalityVerdict::Checked {
            warnings: report.count(alp_analysis::Severity::Warning),
        }
    } else {
        LegalityVerdict::Unchecked
    };
    let plan =
        PartitionPlan::build(&nest, spec.processors, None, verdict).map_err(|e| match e {
            PlanError::Infeasible(m) => ServeError::new("ALP0004", format!("infeasible: {m}")),
            other => ServeError::new("ALP0006", other.to_string()),
        })?;
    if spec.certify {
        let report = alp_certify::certify(&plan)
            .map_err(|e| ServeError::new("ALP0011", format!("certification failed: {e}")))?;
        return Ok(plan.with_certificate(report.certificate));
    }
    Ok(plan)
}

/// Execution knobs of one run request.
#[derive(Debug, Clone, Default)]
pub struct RunSpec {
    /// OS threads (0 = one per tile).
    pub threads: usize,
    /// Store seed for the verified run.
    pub seed: u64,
    /// Per-request wall-clock deadline (`ALP0007` when exceeded).
    pub timeout_ms: Option<u64>,
    /// Per-request store-byte budget (`ALP0009` when exceeded).
    pub max_store_bytes: Option<u64>,
    /// Chaos: panic injection at `(tile, rep)` — honored only when the
    /// crate is built with the `chaos` feature, ignored otherwise.
    pub fault_panic: Option<(usize, u64)>,
}

/// Outcome of a native verified run through the server.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Whether the parallel result matched the sequential reference
    /// bit for bit.
    pub matches_reference: bool,
    /// Total iterations executed.
    pub iterations: u64,
    /// OS threads the executor actually used.
    pub threads: usize,
}

/// Map an executor failure to its stable code: `ALP0007`
/// deadline/cancel, `ALP0008` contained tile fault, `ALP0009` memory
/// budget, `ALP0006` bad plan, `ALP0005` other lowering/run failures.
fn runtime_error(e: RuntimeError) -> ServeError {
    let code = match &e {
        RuntimeError::DeadlineExceeded { .. } | RuntimeError::Cancelled => "ALP0007",
        RuntimeError::TileFailed { .. } => "ALP0008",
        RuntimeError::ResourceExceeded { .. } => "ALP0009",
        RuntimeError::BadPlan(_) => "ALP0006",
        _ => "ALP0005",
    };
    ServeError::new(code, e.to_string())
}

/// Natively execute a plan and check it against the sequential
/// reference, under the request's deadline and memory budget.
pub fn run_plan(plan: &Arc<PartitionPlan>, spec: &RunSpec) -> Result<RunSummary, ServeError> {
    let exec = Executor::from_plan(plan).map_err(runtime_error)?;
    #[allow(unused_mut)]
    let mut opts = ExecOptions {
        threads: spec.threads,
        deadline: spec.timeout_ms.map(Duration::from_millis),
        memory_budget: spec.max_store_bytes,
        ..ExecOptions::default()
    };
    #[cfg(feature = "chaos")]
    if let Some((tile, rep)) = spec.fault_panic {
        opts.fault_injector = Some(std::sync::Arc::new(
            alp_chaos::FaultPlan::new().with_panic(tile, rep),
        ));
    }
    #[cfg(not(feature = "chaos"))]
    let _ = spec.fault_panic;
    let outcome = exec.verify(spec.seed, &opts).map_err(runtime_error)?;
    Ok(RunSummary {
        matches_reference: outcome.matches_reference,
        iterations: outcome.report.total_iterations,
        threads: outcome.report.threads,
    })
}
