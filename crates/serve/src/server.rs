//! The plan service: admission control, worker pool, and the Unix
//! socket front end.
//!
//! ## Overload-shedding policy
//!
//! Three tiers, cheapest first:
//!
//! 1. **Inline cache hits** — a `plan` request whose key is already
//!    cached is answered directly on the connection's reader thread,
//!    bypassing the admission queue entirely.  Under total overload
//!    the server still answers every request whose plan it has.
//! 2. **Bounded queue** — work that needs a worker (compiles, all
//!    executions) passes admission: the queue never exceeds
//!    [`ServeConfig::queue_cap`].
//! 3. **Graceful degradation** — `run` requests cost strictly more
//!    than `plan` requests (compile *plus* native execution), so they
//!    shed earlier: at [`ServeConfig::run_high_water`] (default half
//!    the queue) rather than at full capacity.  Shed requests fail
//!    fast with the stable `ALP0012` code and were never partially
//!    executed — retrying is always safe.
//!
//! Within an admitted request, the hardened executor's own guards
//! apply: per-request deadline (`ALP0007`) and memory budget
//! (`ALP0009`).  A tile panic (chaos-injected or real) is contained by
//! the executor (`ALP0008`) and, because compiles run outside the
//! shard locks and publish through the leader-abandon protocol, a
//! panicking request can never poison a shard or wedge coalesced
//! waiters of other requests.
//!
//! ## Durability and graceful drain
//!
//! With [`ServeConfig::store_dir`] set, every *computed* plan is also
//! appended to a crash-safe [`PlanStore`] journal, and startup replays
//! the journal into the sharded cache before the first request —
//! a restarted daemon keeps its hot set instead of paying a recompile
//! storm (`replayed` counter; corrupt tail frames are quarantined with
//! `ALP0014`, never fatal).
//!
//! Shutdown is a two-phase drain rather than a cliff: a protocol
//! `shutdown` (or the daemon's SIGTERM) flips the server to
//! **draining** — new `plan`/`run` requests are refused with
//! `ALP0015` (`stats`/`ping` still answer) while workers finish
//! everything already admitted.  [`ServerHandle::finish`] bounds the
//! drain with a deadline; past it, still-queued jobs are answered with
//! `ALP0015` *unexecuted* and the journal is fsynced before the
//! process exits.

use crate::pipeline::{build_plan, run_plan};
use crate::protocol::{Request, RequestOp, Response};
use crate::ServeError;
use alp_plan::json::parse;
use alp_plan::{Fetched, Json, PlanStore, RecoveryReport, ShardedPlanCache};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shards in the plan cache.
    pub shards: usize,
    /// Total cached plans across shards.
    pub cache_capacity: usize,
    /// Admission-queue bound; 0 sheds every queue-bound request
    /// (inline cache hits still serve).
    pub queue_cap: usize,
    /// Queue depth at which `run` requests start shedding; `None`
    /// means half of `queue_cap`.
    pub run_high_water: Option<usize>,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Specs to compile before accepting traffic (deterministic warm
    /// cache for tests and benchmarks).
    pub prewarm: Vec<crate::pipeline::PlanSpec>,
    /// Directory of the durable plan journal; `None` disables
    /// persistence.  Computed plans are appended, startup replays.
    pub store_dir: Option<PathBuf>,
    /// Default bound on the graceful drain, in milliseconds; past it,
    /// still-queued jobs are refused unexecuted.
    pub drain_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServeConfig {
            shards: ShardedPlanCache::<ServeError>::DEFAULT_SHARDS,
            cache_capacity: 128,
            queue_cap: 64,
            run_high_water: None,
            workers: cores.clamp(1, 8),
            prewarm: Vec::new(),
            store_dir: None,
            drain_deadline_ms: 5_000,
        }
    }
}

impl ServeConfig {
    fn run_limit(&self) -> usize {
        self.run_high_water
            .unwrap_or(self.queue_cap / 2)
            .min(self.queue_cap)
    }
}

/// Cumulative server counters, exposed through the `stats` op and the
/// load generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Cache hits (inline fast path plus worker-path hits).
    pub hits: u64,
    /// Compile leaders (each built one plan).
    pub misses: u64,
    /// Requests that waited on another request's in-flight compile.
    pub coalesced: u64,
    /// LRU evictions across shards.
    pub evictions: u64,
    /// Subset of `hits` answered on reader threads without queueing.
    pub inline_hits: u64,
    /// `plan` requests shed with `ALP0012`.
    pub shed_plan: u64,
    /// `run` requests shed with `ALP0012`.
    pub shed_run: u64,
    /// Successful runs.
    pub runs_ok: u64,
    /// Requests that failed in the pipeline (any code but `ALP0012`).
    pub failures: u64,
    /// Queue depth at snapshot time.
    pub depth: u64,
    /// Jobs drained as the *tail* of a worker-wakeup batch: a waking
    /// worker takes every queued job with a distinct plan key (up to a
    /// small cap) instead of one job per wakeup, and this counts the
    /// extras beyond the first.
    pub batched: u64,
    /// Malformed or oversized request frames (undecodable JSON, bad
    /// version, frames past the size limit) — answered with `ALP0006`
    /// but counted here so an operator can see protocol abuse.
    pub malformed: u64,
    /// Queued jobs shed unexecuted because the client's propagated
    /// deadline passed before a worker reached them (`ALP0007`).
    pub expired: u64,
    /// Requests refused with `ALP0015` while draining (including jobs
    /// abandoned past the drain deadline).
    pub refused: u64,
    /// Plans re-warmed from the durable journal at startup.
    pub replayed: u64,
}

impl ServerStats {
    /// Encode as a single-line JSON object.
    pub fn encode(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
             \"inline_hits\": {}, \"shed_plan\": {}, \"shed_run\": {}, \"runs_ok\": {}, \
             \"failures\": {}, \"depth\": {}, \"batched\": {}, \"malformed\": {}, \
             \"expired\": {}, \"refused\": {}, \"replayed\": {}}}",
            self.hits,
            self.misses,
            self.coalesced,
            self.evictions,
            self.inline_hits,
            self.shed_plan,
            self.shed_run,
            self.runs_ok,
            self.failures,
            self.depth,
            self.batched,
            self.malformed,
            self.expired,
            self.refused,
            self.replayed
        )
    }

    /// Decode from the JSON value embedded in a `stats` response;
    /// absent fields read as zero.
    pub fn decode(v: &Json) -> ServerStats {
        let f = |key: &str| v.get(key).and_then(Json::as_int).unwrap_or(0).max(0) as u64;
        ServerStats {
            hits: f("hits"),
            misses: f("misses"),
            coalesced: f("coalesced"),
            evictions: f("evictions"),
            inline_hits: f("inline_hits"),
            shed_plan: f("shed_plan"),
            shed_run: f("shed_run"),
            runs_ok: f("runs_ok"),
            failures: f("failures"),
            depth: f("depth"),
            batched: f("batched"),
            malformed: f("malformed"),
            expired: f("expired"),
            refused: f("refused"),
            replayed: f("replayed"),
        }
    }

    /// Decode from an encoded stats line.
    pub fn decode_str(s: &str) -> Result<ServerStats, ServeError> {
        let v = parse(s).map_err(|e| ServeError::new("ALP0006", e.to_string()))?;
        Ok(ServerStats::decode(&v))
    }

    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.shed_plan + self.shed_run
    }
}

struct Job {
    req: Request,
    /// Plan key computed on the reader thread at admission time (None
    /// when the spec is undecodable); lets the worker's batch drain
    /// check fingerprint distinctness without re-parsing under the
    /// queue lock.
    key: Option<alp_plan::PlanKey>,
    /// Absolute expiry derived from the client's `deadline_ms` at
    /// admission; a worker sheds the job unexecuted once past it.
    expires: Option<Instant>,
    out: Arc<Mutex<UnixStream>>,
}

impl Job {
    fn expired(&self) -> bool {
        self.expires.is_some_and(|t| Instant::now() > t)
    }
}

/// Request frames longer than this are counted as malformed and
/// refused without parsing — a corrupt or hostile peer cannot make the
/// reader buffer unbounded JSON.
const MAX_REQUEST_BYTES: usize = 1 << 20;

struct Inner {
    cfg: ServeConfig,
    cache: ShardedPlanCache<ServeError>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    depth: AtomicUsize,
    shutdown: AtomicBool,
    /// Drain phase: refuse new plan/run work (`ALP0015`) while workers
    /// finish what was already admitted.
    draining: AtomicBool,
    /// Set when the drain deadline passed: workers answer remaining
    /// queued jobs with `ALP0015` instead of executing them.
    abort: AtomicBool,
    /// Workers currently executing a batch (drain completion is
    /// "queue empty AND busy == 0", not just an empty queue).
    busy: AtomicUsize,
    /// Parked `wait()` callers; notified when draining begins.
    drain_mx: Mutex<()>,
    drain_cv: Condvar,
    /// Durable journal of computed plans, when configured.
    store: Option<Mutex<PlanStore>>,
    /// Bound socket path, once serving; lets a protocol `shutdown`
    /// wake the blocking accept loop with a throwaway connection.
    sock: Mutex<Option<PathBuf>>,
    inline_hits: AtomicU64,
    shed_plan: AtomicU64,
    shed_run: AtomicU64,
    runs_ok: AtomicU64,
    failures: AtomicU64,
    batched: AtomicU64,
    malformed: AtomicU64,
    expired: AtomicU64,
    refused: AtomicU64,
    /// Journal entries re-warmed into the cache at startup (fixed at
    /// construction).
    replayed: u64,
}

/// Max jobs one worker wakeup drains.  Small enough that a batch never
/// starves the other workers of queued work, large enough to amortize
/// the lock/condvar round trip under bursts.
const WORKER_BATCH: usize = 8;

impl Inner {
    /// Process one plan/run request end to end (worker side; admission
    /// already happened or was bypassed by a direct caller).
    fn handle_now(&self, req: &Request) -> Response {
        match req.op {
            RequestOp::Ping | RequestOp::Shutdown => Response::ok(req.id),
            RequestOp::Stats => {
                Response::stats_with_shards(req.id, self.stats(), self.cache.per_shard())
            }
            RequestOp::Plan | RequestOp::Run => {
                let key = match req.plan.key() {
                    Ok(k) => k,
                    Err(e) => {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Response::err(req.id, &e);
                    }
                };
                let spec = req.plan.clone();
                let fetched = self.cache.get_or_compute(key, move || build_plan(&spec));
                let (plan, how) = match fetched {
                    Ok(x) => x,
                    Err(e) => {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Response::err(req.id, &e);
                    }
                };
                if how == Fetched::Computed {
                    self.journal(&key, &plan);
                }
                match req.op {
                    RequestOp::Plan => Response::plan_ok(
                        req.id,
                        how.label(),
                        &plan.fingerprint,
                        plan.tiles(),
                        req.want_plan.then(|| plan.to_json_string()),
                    ),
                    _ => match run_plan(&plan, &req.run) {
                        Ok(run) => {
                            self.runs_ok.fetch_add(1, Ordering::Relaxed);
                            Response::run_ok(
                                req.id,
                                how.label(),
                                &plan.fingerprint,
                                plan.tiles(),
                                &run,
                            )
                        }
                        Err(e) => {
                            self.failures.fetch_add(1, Ordering::Relaxed);
                            Response::err(req.id, &e)
                        }
                    },
                }
            }
        }
    }

    /// Append a freshly computed plan to the durable journal, if one is
    /// configured.  Journaling is best-effort: the serving path never
    /// fails because the disk did — the plan is already cached and the
    /// response already correct — but each incident is logged.
    fn journal(&self, key: &alp_plan::PlanKey, plan: &Arc<alp_plan::PartitionPlan>) {
        if let Some(store) = &self.store {
            if let Ok(mut s) = store.lock() {
                if let Err(e) = s.append(key, plan) {
                    eprintln!("alp-serve: warning: journal append failed: {e}");
                }
            }
        }
    }

    /// Flip to the draining phase: refuse new plan/run work, wake
    /// workers (so idle ones observe the flag) and any parked `wait()`.
    fn begin_drain(&self) {
        let _g = self.drain_mx.lock().expect("drain lock");
        self.draining.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        self.drain_cv.notify_all();
    }

    /// True when no admitted work remains: nothing queued and no worker
    /// mid-batch.
    fn queue_idle(&self) -> bool {
        let q = self.queue.lock().expect("queue lock");
        q.is_empty() && self.busy.load(Ordering::SeqCst) == 0
    }

    /// Admission: push the job or shed it with `ALP0012` (or refuse it
    /// with `ALP0015` once draining).  The depth check and the push are
    /// atomic under the queue lock, so the bound is exact.
    fn submit(&self, job: Job) -> Result<(), ServeError> {
        let limit = match job.req.op {
            RequestOp::Run => self.cfg.run_limit(),
            _ => self.cfg.queue_cap,
        };
        let mut q = self.queue.lock().expect("queue lock");
        if self.draining.load(Ordering::SeqCst) {
            drop(q);
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::draining());
        }
        let depth = q.len();
        if depth >= limit || self.shutdown.load(Ordering::SeqCst) {
            drop(q);
            let ctr = match job.req.op {
                RequestOp::Run => &self.shed_run,
                _ => &self.shed_plan,
            };
            ctr.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::overloaded(depth, self.cfg.queue_cap));
        }
        q.push_back(job);
        self.depth.store(q.len(), Ordering::Relaxed);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    fn stats(&self) -> ServerStats {
        let c = self.cache.stats();
        ServerStats {
            hits: c.hits,
            misses: c.misses,
            coalesced: c.coalesced,
            evictions: c.evictions,
            inline_hits: self.inline_hits.load(Ordering::Relaxed),
            shed_plan: self.shed_plan.load(Ordering::Relaxed),
            shed_run: self.shed_run.load(Ordering::Relaxed),
            runs_ok: self.runs_ok.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed) as u64,
            batched: self.batched.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            replayed: self.replayed,
        }
    }

    /// Worker loop: each wakeup drains a *batch* of queued jobs with
    /// pairwise-distinct plan keys (up to [`WORKER_BATCH`]) instead of
    /// one job per wakeup, amortizing the lock/condvar round trip under
    /// bursts.  The batch stops at the first job whose key repeats one
    /// already taken: by the time a later wakeup reaches that job its
    /// leader has published the plan, so it resolves as a cache hit
    /// instead of serializing behind an identical compile in the same
    /// batch.  On shutdown, workers finish what is queued, then exit.
    /// Each job runs under panic containment so a handler bug drops one
    /// response, never a worker.
    fn worker(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().expect("queue lock");
                loop {
                    if !q.is_empty() {
                        let mut batch: Vec<Job> = Vec::new();
                        while batch.len() < WORKER_BATCH {
                            let dup = match q.front().and_then(|j| j.key) {
                                Some(k) => batch.iter().any(|b| b.key == Some(k)),
                                None => false,
                            };
                            if dup {
                                break;
                            }
                            match q.pop_front() {
                                Some(j) => batch.push(j),
                                None => break,
                            }
                        }
                        self.depth.store(q.len(), Ordering::Relaxed);
                        self.batched
                            .fetch_add((batch.len() - 1) as u64, Ordering::Relaxed);
                        // Claimed under the queue lock, so a drain
                        // observer never sees "queue empty" between a
                        // pop and the busy increment.
                        self.busy.fetch_add(1, Ordering::SeqCst);
                        break batch;
                    }
                    if self.shutdown.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst)
                    {
                        return;
                    }
                    q = self.cv.wait(q).expect("queue lock");
                }
            };
            for job in batch {
                let resp = if self.abort.load(Ordering::SeqCst) {
                    // Drain deadline passed: answer fast, execute
                    // nothing.  The job never started, so the client's
                    // retry policy treats it like a shed.
                    self.refused.fetch_add(1, Ordering::Relaxed);
                    Response::err(job.req.id, &ServeError::draining())
                } else if job.expired() {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    Response::err(
                        job.req.id,
                        &ServeError::new(
                            "ALP0007",
                            "client deadline passed while queued; shed unexecuted",
                        ),
                    )
                } else {
                    catch_unwind(AssertUnwindSafe(|| self.handle_now(&job.req))).unwrap_or_else(
                        |_| {
                            self.failures.fetch_add(1, Ordering::Relaxed);
                            Response::err(
                                job.req.id,
                                &ServeError::new(
                                    "ALP0008",
                                    "request handler panicked; fault contained",
                                ),
                            )
                        },
                    )
                };
                write_line(&job.out, &resp);
            }
            self.busy.fetch_sub(1, Ordering::SeqCst);
            if self.draining.load(Ordering::SeqCst) {
                self.drain_cv.notify_all();
            }
        }
    }

    /// Per-connection reader: decode frames, answer control ops and
    /// inline cache hits directly, hand the rest to admission.
    fn connection(self: &Arc<Self>, stream: UnixStream) {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        let out = Arc::new(Mutex::new(stream));
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if line.len() > MAX_REQUEST_BYTES {
                self.malformed.fetch_add(1, Ordering::Relaxed);
                write_line(
                    &out,
                    &Response::err(
                        0,
                        &ServeError::new(
                            "ALP0006",
                            format!(
                                "request frame of {} bytes exceeds the {} byte limit",
                                line.len(),
                                MAX_REQUEST_BYTES
                            ),
                        ),
                    ),
                );
                continue;
            }
            let req = match Request::decode(&line) {
                Ok(r) => r,
                Err(e) => {
                    self.malformed.fetch_add(1, Ordering::Relaxed);
                    write_line(&out, &Response::err(0, &e));
                    continue;
                }
            };
            match req.op {
                RequestOp::Ping => write_line(&out, &Response::ok(req.id)),
                RequestOp::Stats => write_line(
                    &out,
                    &Response::stats_with_shards(req.id, self.stats(), self.cache.per_shard()),
                ),
                RequestOp::Shutdown => {
                    // Drain first, ack second: once the client reads
                    // the ack, refusal of new work is already in
                    // force.  The accept loop keeps running (stats/
                    // ping still answer; plan/run get `ALP0015`) while
                    // the daemon's `wait()`/`finish()` bounds the
                    // drain and performs the actual stop.
                    self.begin_drain();
                    write_line(&out, &Response::ok(req.id));
                    break;
                }
                RequestOp::Plan | RequestOp::Run => {
                    if self.draining.load(Ordering::SeqCst) || self.shutdown.load(Ordering::SeqCst)
                    {
                        self.refused.fetch_add(1, Ordering::Relaxed);
                        write_line(&out, &Response::err(req.id, &ServeError::draining()));
                        continue;
                    }
                    // The key is computed once here, on the reader
                    // thread: the inline fast path needs it, and the
                    // worker batch drain reuses it for fingerprint
                    // distinctness without re-parsing.  Parse errors
                    // (key: None) fall through to handle_now via a
                    // worker so the reader stays responsive; they are
                    // cheap to re-derive.
                    let key = req.plan.key().ok();
                    // Tier 1: answer cached plans inline — no queue,
                    // no admission, works even under total overload.
                    if req.op == RequestOp::Plan {
                        if let Some(k) = &key {
                            if let Some(plan) = self.cache.get_cached(k) {
                                self.inline_hits.fetch_add(1, Ordering::Relaxed);
                                write_line(
                                    &out,
                                    &Response::plan_ok(
                                        req.id,
                                        Fetched::Hit.label(),
                                        &plan.fingerprint,
                                        plan.tiles(),
                                        req.want_plan.then(|| plan.to_json_string()),
                                    ),
                                );
                                continue;
                            }
                        }
                    }
                    // Tiers 2–3: bounded queue with class-based limits.
                    let id = req.id;
                    let expires = req
                        .deadline_ms
                        .map(|d| Instant::now() + Duration::from_millis(d));
                    if let Err(e) = self.submit(Job {
                        req,
                        key,
                        expires,
                        out: Arc::clone(&out),
                    }) {
                        write_line(&out, &Response::err(id, &e));
                    }
                }
            }
        }
    }
}

fn write_line(out: &Arc<Mutex<UnixStream>>, resp: &Response) {
    let mut line = resp.encode();
    line.push('\n');
    if let Ok(mut s) = out.lock() {
        // The peer may have hung up mid-flight; a failed write only
        // affects this connection.
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }
}

/// The plan service.  Construct with [`Server::new`], then either call
/// [`Server::handle_now`] directly (in-process use, tests) or bind a
/// socket with [`Server::serve`].
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Build a server (prewarming the cache per the config) without
    /// binding a socket.  Panics when the configured plan store cannot
    /// be opened — use [`Server::try_new`] to handle that and to see
    /// the recovery report.
    pub fn new(cfg: ServeConfig) -> Server {
        Server::try_new(cfg).expect("plan store opens").0
    }

    /// Build a server, opening (and replaying) the durable plan store
    /// when [`ServeConfig::store_dir`] is set.  Corrupt journal frames
    /// are quarantined inside the returned [`RecoveryReport`]
    /// (`ALP0014` warnings), never an error; `Err` is reserved for real
    /// I/O failures (permissions, full disk) opening the store.
    pub fn try_new(cfg: ServeConfig) -> std::io::Result<(Server, Option<RecoveryReport>)> {
        let cache = ShardedPlanCache::new(cfg.shards, cfg.cache_capacity);
        let (store, report) = match &cfg.store_dir {
            Some(dir) => {
                let (store, report) = PlanStore::open(dir)?;
                (Some(Mutex::new(store)), Some(report))
            }
            None => (None, None),
        };
        let mut replayed = 0u64;
        if let Some(r) = &report {
            // Later journal entries supersede earlier ones per key (the
            // store already resolved that); warm every survivor.
            for e in &r.live {
                if cache.warm(e.key, Arc::clone(&e.plan)) {
                    replayed += 1;
                }
            }
        }
        let inner = Arc::new(Inner {
            cache,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            drain_mx: Mutex::new(()),
            drain_cv: Condvar::new(),
            store,
            sock: Mutex::new(None),
            inline_hits: AtomicU64::new(0),
            shed_plan: AtomicU64::new(0),
            shed_run: AtomicU64::new(0),
            runs_ok: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            replayed,
            cfg,
        });
        for spec in &inner.cfg.prewarm {
            if let Ok(key) = spec.key() {
                let spec = spec.clone();
                // Prewarmed plans are journaled like any other compute:
                // the store must cover the hot set, or a restart would
                // cold-start exactly the plans that matter most.
                if let Ok((plan, how)) = inner.cache.get_or_compute(key, move || build_plan(&spec))
                {
                    if how == Fetched::Computed {
                        inner.journal(&key, &plan);
                    }
                }
            }
        }
        Ok((Server { inner }, report))
    }

    /// Process one request synchronously, bypassing admission (the
    /// caller owns its own thread).  Control ops work too.
    pub fn handle_now(&self, req: &Request) -> Response {
        self.inner.handle_now(req)
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Would a request of this class be admitted right now?  (Exposed
    /// for tests; the socket path re-checks atomically at submit.)
    pub fn would_admit(&self, op: &RequestOp) -> bool {
        let limit = match op {
            RequestOp::Run => self.inner.cfg.run_limit(),
            _ => self.inner.cfg.queue_cap,
        };
        self.inner.depth.load(Ordering::Relaxed) < limit
    }

    /// Bind `path` and serve until a `shutdown` request arrives.
    /// Returns immediately; the returned handle joins the accept loop
    /// and worker pool.
    pub fn serve(self, path: &Path) -> std::io::Result<ServerHandle> {
        // A stale socket file from a dead server would fail the bind.
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        let inner = self.inner;
        *inner.sock.lock().expect("sock lock") = Some(path.to_path_buf());
        let workers: Vec<JoinHandle<()>> = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker())
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let inner = Arc::clone(&inner);
                    // Readers exit on EOF or shutdown; they are not
                    // joined (a daemon outlives any one connection).
                    std::thread::spawn(move || inner.connection(stream));
                }
            })
        };
        Ok(ServerHandle {
            path: path.to_path_buf(),
            inner,
            accept: Some(accept),
            workers,
        })
    }
}

/// Outcome of a bounded graceful drain ([`ServerHandle::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct DrainOutcome {
    /// Final counters at stop time.
    pub stats: ServerStats,
    /// True when every admitted job completed inside the deadline;
    /// false when the drain was cut short.
    pub drained: bool,
    /// Jobs still queued when the deadline passed — each was answered
    /// `ALP0015` without being executed.
    pub abandoned: usize,
}

/// A running server bound to a socket.
pub struct ServerHandle {
    path: PathBuf,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// True once the server stopped admitting new plan/run work — a
    /// `shutdown` request arrived, a drain began, or
    /// [`ServerHandle::shutdown`] was called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst) || self.inner.draining.load(Ordering::SeqCst)
    }

    /// True once the graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Begin the graceful drain without blocking: new plan/run work is
    /// refused with `ALP0015` while admitted jobs keep executing.
    /// Idempotent.  Call [`ServerHandle::finish`] (or
    /// [`ServerHandle::shutdown`]) to bound the drain and stop.
    pub fn begin_drain(&self) {
        self.inner.begin_drain();
    }

    /// Bounded graceful stop: begin the drain (idempotent), wait up to
    /// `deadline` for every admitted job to finish, then stop the
    /// accept loop, join workers, fsync the journal, and remove the
    /// socket file.  Past the deadline, still-queued jobs are answered
    /// `ALP0015` unexecuted and counted as `abandoned`.
    pub fn finish(mut self, deadline: Duration) -> DrainOutcome {
        let start = Instant::now();
        self.inner.begin_drain();
        let mut drained = true;
        {
            let mut g = self.inner.drain_mx.lock().expect("drain lock");
            while !self.inner.queue_idle() {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    drained = false;
                    break;
                }
                let (ng, _) = self
                    .inner
                    .drain_cv
                    .wait_timeout(g, (deadline - elapsed).min(Duration::from_millis(20)))
                    .expect("drain lock");
                g = ng;
            }
        }
        let abandoned = if drained {
            0
        } else {
            let n = self.inner.queue.lock().expect("queue lock").len();
            // Workers answer the leftovers with `ALP0015` on their way
            // out instead of executing them.
            self.inner.abort.store(true, Ordering::SeqCst);
            n
        };
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        // Wake the blocking accept with a throwaway connection.
        let _ = UnixStream::connect(&self.path);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(store) = &self.inner.store {
            if let Ok(s) = store.lock() {
                if let Err(e) = s.sync() {
                    eprintln!("alp-serve: warning: journal fsync failed: {e}");
                }
            }
        }
        let _ = std::fs::remove_file(&self.path);
        DrainOutcome {
            stats: self.inner.stats(),
            drained,
            abandoned,
        }
    }

    /// Stop accepting, drain the queue (bounded by the config's drain
    /// deadline), join every worker, and remove the socket file.
    pub fn shutdown(self) -> ServerStats {
        let deadline = Duration::from_millis(self.inner.cfg.drain_deadline_ms);
        self.finish(deadline).stats
    }

    /// Block until a drain begins (a client sent `shutdown`, a signal
    /// handler called [`ServerHandle::begin_drain`], or someone set the
    /// shutdown flag), then run the bounded drain and clean up — the
    /// daemon's main thread parks here.
    pub fn wait(self) -> ServerStats {
        {
            let mut g = self.inner.drain_mx.lock().expect("drain lock");
            while !self.inner.draining.load(Ordering::SeqCst)
                && !self.inner.shutdown.load(Ordering::SeqCst)
            {
                g = self.inner.drain_cv.wait(g).expect("drain lock");
            }
        }
        let deadline = Duration::from_millis(self.inner.cfg.drain_deadline_ms);
        self.finish(deadline).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Preload the queue with plan requests for `sources`, set the
    /// shutdown flag, and run one worker to completion: every batch the
    /// worker takes is observable through the `batched` counter, with
    /// no socket or timing in the loop.
    fn drain_once(sources: &[&str]) -> (ServerStats, Vec<UnixStream>) {
        let server = Server::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let inner = Arc::clone(&server.inner);
        let mut readers = Vec::new();
        {
            let mut q = inner.queue.lock().expect("queue lock");
            for (i, src) in sources.iter().enumerate() {
                let req = Request::plan(i as i128, src);
                let key = req.plan.key().ok();
                let (a, b) = UnixStream::pair().expect("socketpair");
                readers.push(b);
                q.push_back(Job {
                    req,
                    key,
                    expires: None,
                    out: Arc::new(Mutex::new(a)),
                });
            }
        }
        // The worker drains everything queued, then exits on the flag.
        inner.shutdown.store(true, Ordering::SeqCst);
        inner.worker();
        (inner.stats(), readers)
    }

    fn responses(readers: Vec<UnixStream>) -> usize {
        let mut answered = 0;
        for r in readers {
            // Drop the server-side writer clones first: worker already
            // ran, so the response (if any) is buffered in the socket.
            r.set_nonblocking(true).expect("nonblocking");
            let mut line = String::new();
            if BufReader::new(r).read_line(&mut line).is_ok() && !line.trim().is_empty() {
                Response::decode(&line).expect("response decodes");
                answered += 1;
            }
        }
        answered
    }

    #[test]
    fn one_wakeup_drains_all_distinct_fingerprints() {
        // Four distinct nests queued before the worker wakes: one batch
        // takes them all, so three are batch tails.
        let sources: Vec<String> = (0..4)
            .map(|k| format!("doall (i, 0, {}) {{ A[i] = A[i]; }}", 15 + k))
            .collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let (stats, readers) = drain_once(&refs);
        assert_eq!(stats.batched, 3, "one wakeup, four distinct jobs");
        assert_eq!(stats.misses, 4, "each distinct nest compiled once");
        assert_eq!(responses(readers), 4, "every job answered");
    }

    #[test]
    fn duplicate_fingerprint_splits_the_batch() {
        // Keys A B A C: the first batch stops at the repeated A (by the
        // time a later wakeup takes it, its leader has published the
        // plan), so the drain is [A B] then [A C] — one tail each.
        let a = "doall (i, 0, 15) { A[i] = A[i]; }";
        let b = "doall (i, 0, 31) { B[i] = B[i]; }";
        let c = "doall (i, 0, 63) { C[i] = C[i]; }";
        let (stats, readers) = drain_once(&[a, b, a, c]);
        assert_eq!(stats.batched, 2, "two batches of two");
        assert_eq!(stats.misses, 3, "three distinct nests compiled");
        assert_eq!(stats.hits, 1, "the repeated key hits the cache");
        assert_eq!(responses(readers), 4);
    }

    #[test]
    fn abandoned_leader_is_re_elected_during_drain() {
        // A compile leader that dies mid-flight marks its shard slot
        // Abandoned; the drain phase must not prevent a successor from
        // claiming the slot and finishing the admitted work — drain
        // refuses *new* requests at the door, it never wedges work
        // already inside.
        let server = Server::new(ServeConfig::default());
        let inner = Arc::clone(&server.inner);
        inner.begin_drain();
        let req = Request::plan(1, "doall (i, 0, 63) { A[i] = A[i]; }");
        let key = req.plan.key().expect("key");
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    inner
                        .cache
                        .get_or_compute(key, || -> Result<_, ServeError> {
                            panic!("injected leader death")
                        })
                }));
            })
            .join()
            .expect("leader thread joins");
        }
        // The successor — an admitted job a worker is draining — takes
        // over the abandoned slot and completes.
        let resp = inner.handle_now(&req);
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.cache.as_deref(), Some("computed"), "{resp:?}");
    }

    #[test]
    fn batch_cap_bounds_a_single_drain() {
        let sources: Vec<String> = (0..WORKER_BATCH + 3)
            .map(|k| format!("doall (i, 0, {}) {{ A[i] = A[i]; }}", 7 + k))
            .collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let (stats, readers) = drain_once(&refs);
        // Two wakeups: a full batch of WORKER_BATCH, then the 3 left.
        assert_eq!(stats.batched, (WORKER_BATCH - 1 + 2) as u64);
        assert_eq!(responses(readers), WORKER_BATCH + 3);
    }
}
