//! The serve wire protocol: newline-delimited JSON frames, versioned
//! like the plan codec.
//!
//! Each request is one line, a JSON object carrying the protocol
//! version under the `"alp-serve"` key:
//!
//! ```json
//! {"alp-serve": 1, "id": 7, "op": "plan", "source": "doall (i, 0, 63) { A[i] = A[i]; }", "processors": 16}
//! {"alp-serve": 1, "id": 8, "op": "run", "source": "…", "processors": 16, "threads": 2, "timeout_ms": 5000}
//! {"alp-serve": 1, "id": 9, "op": "stats"}
//! ```
//!
//! Each response is one line, echoing `id`:
//!
//! ```json
//! {"id": 7, "ok": true, "cache": "computed", "fingerprint": "…", "tiles": 16}
//! {"id": 8, "ok": false, "code": "ALP0012", "error": "server overloaded: …"}
//! ```
//!
//! The codec is hand-rolled on `alp_plan::json` (no serde, no floats,
//! byte-deterministic output) and every frame is a single line — the
//! framing IS the newline, so a reader never needs lookahead.

use crate::pipeline::{PlanSpec, RunSpec, RunSummary};
use crate::server::ServerStats;
use crate::ServeError;
use alp_plan::json::{parse, write_string};
use alp_plan::Json;

/// Version of this wire protocol; bumped on incompatible change.
pub const PROTOCOL_VERSION: i128 = 1;

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Compile (or fetch) the partition plan for a nest.
    Plan,
    /// Compile if needed, then natively execute and verify the nest.
    Run,
    /// Report the server's cumulative counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and drain the queue.
    Shutdown,
}

impl RequestOp {
    fn parse(s: &str) -> Option<RequestOp> {
        match s {
            "plan" => Some(RequestOp::Plan),
            "run" => Some(RequestOp::Run),
            "stats" => Some(RequestOp::Stats),
            "ping" => Some(RequestOp::Ping),
            "shutdown" => Some(RequestOp::Shutdown),
            _ => None,
        }
    }
}

/// One decoded request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: i128,
    /// The operation.
    pub op: RequestOp,
    /// Compile parameters (`plan` / `run` ops).
    pub plan: PlanSpec,
    /// Execution parameters (`run` op).
    pub run: RunSpec,
    /// Include the full plan JSON (as a string field) in the response.
    pub want_plan: bool,
    /// Client deadline in milliseconds from receipt.  A queued job
    /// whose deadline has already passed is shed unexecuted — the
    /// client has abandoned it, so the server should too.
    pub deadline_ms: Option<u64>,
}

/// Default processor count when a request does not specify one.
pub const DEFAULT_PROCESSORS: i128 = 16;

impl Request {
    /// A `plan` request for `source` with default parameters.
    pub fn plan(id: i128, source: &str) -> Request {
        Request {
            id,
            op: RequestOp::Plan,
            plan: PlanSpec {
                source: source.to_string(),
                processors: DEFAULT_PROCESSORS,
                check: true,
                certify: false,
            },
            run: RunSpec::default(),
            want_plan: false,
            deadline_ms: None,
        }
    }

    /// A `run` request for `source` with default parameters.
    pub fn run(id: i128, source: &str) -> Request {
        Request {
            id,
            op: RequestOp::Run,
            ..Request::plan(id, source)
        }
    }

    /// A bare control request (`stats` / `ping` / `shutdown`).
    pub fn control(id: i128, op: RequestOp) -> Request {
        Request {
            op,
            ..Request::plan(id, "")
        }
    }

    /// Decode one request line.  Violations are protocol errors
    /// (`ALP0006` — same family as other artifact-decode failures),
    /// except an unsupported version which names itself.
    pub fn decode(line: &str) -> Result<Request, ServeError> {
        let bad = |m: &str| ServeError::new("ALP0006", format!("bad request frame: {m}"));
        let v = parse(line).map_err(|e| bad(&e.to_string()))?;
        let version = v
            .get("alp-serve")
            .and_then(Json::as_int)
            .ok_or_else(|| bad("missing \"alp-serve\" version field"))?;
        if version != PROTOCOL_VERSION {
            return Err(bad(&format!(
                "protocol version {version} not supported (this server speaks \
                 {PROTOCOL_VERSION})"
            )));
        }
        let id = v.get("id").and_then(Json::as_int).unwrap_or(0);
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .and_then(RequestOp::parse)
            .ok_or_else(|| bad("missing or unknown \"op\""))?;
        let source = v.get("source").and_then(Json::as_str).unwrap_or("");
        if matches!(op, RequestOp::Plan | RequestOp::Run) && source.is_empty() {
            return Err(bad("\"source\" is required for plan/run"));
        }
        let int = |key: &str| v.get(key).and_then(Json::as_int);
        let fault_panic = match (int("fault_tile"), int("fault_rep")) {
            (Some(tile), rep) => Some((tile.max(0) as usize, rep.unwrap_or(0).max(0) as u64)),
            (None, _) => None,
        };
        Ok(Request {
            id,
            op,
            plan: PlanSpec {
                source: source.to_string(),
                processors: int("processors").unwrap_or(DEFAULT_PROCESSORS),
                check: !v.get("no_check").and_then(Json::as_bool).unwrap_or(false),
                certify: v.get("certify").and_then(Json::as_bool).unwrap_or(false),
            },
            run: RunSpec {
                threads: int("threads").unwrap_or(0).max(0) as usize,
                seed: int("seed").unwrap_or(0).max(0) as u64,
                timeout_ms: int("timeout_ms").map(|t| t.max(0) as u64),
                max_store_bytes: int("max_store_bytes").map(|b| b.max(0) as u64),
                fault_panic,
            },
            want_plan: v.get("want_plan").and_then(Json::as_bool).unwrap_or(false),
            deadline_ms: int("deadline_ms").map(|d| d.max(0) as u64),
        })
    }

    /// Encode this request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"alp-serve\": {PROTOCOL_VERSION}, \"id\": {}, \"op\": ",
            self.id
        ));
        let op = match self.op {
            RequestOp::Plan => "plan",
            RequestOp::Run => "run",
            RequestOp::Stats => "stats",
            RequestOp::Ping => "ping",
            RequestOp::Shutdown => "shutdown",
        };
        write_string(&mut out, op);
        if matches!(self.op, RequestOp::Plan | RequestOp::Run) {
            out.push_str(", \"source\": ");
            write_string(&mut out, &self.plan.source);
            out.push_str(&format!(", \"processors\": {}", self.plan.processors));
            if !self.plan.check {
                out.push_str(", \"no_check\": true");
            }
            if self.plan.certify {
                out.push_str(", \"certify\": true");
            }
            if self.want_plan {
                out.push_str(", \"want_plan\": true");
            }
            if let Some(d) = self.deadline_ms {
                out.push_str(&format!(", \"deadline_ms\": {d}"));
            }
        }
        if self.op == RequestOp::Run {
            if self.run.threads != 0 {
                out.push_str(&format!(", \"threads\": {}", self.run.threads));
            }
            if self.run.seed != 0 {
                out.push_str(&format!(", \"seed\": {}", self.run.seed));
            }
            if let Some(t) = self.run.timeout_ms {
                out.push_str(&format!(", \"timeout_ms\": {t}"));
            }
            if let Some(b) = self.run.max_store_bytes {
                out.push_str(&format!(", \"max_store_bytes\": {b}"));
            }
            if let Some((tile, rep)) = self.run.fault_panic {
                out.push_str(&format!(", \"fault_tile\": {tile}, \"fault_rep\": {rep}"));
            }
        }
        out.push('}');
        out
    }
}

/// One decoded response frame.
#[derive(Debug, Clone)]
pub struct Response {
    /// Correlation id echoed from the request.
    pub id: i128,
    /// Success flag; `false` pairs with `code`/`error`.
    pub ok: bool,
    /// How the cache satisfied the request (`hit` / `coalesced` /
    /// `computed`), when applicable.
    pub cache: Option<String>,
    /// Plan fingerprint (plan/run successes).
    pub fingerprint: Option<String>,
    /// Tile count of the plan (plan/run successes).
    pub tiles: Option<i128>,
    /// Full plan JSON (when the request set `want_plan`).
    pub plan: Option<String>,
    /// Run outcome: bitwise match against the sequential reference.
    pub matches_reference: Option<bool>,
    /// Run outcome: iterations executed.
    pub iterations: Option<u64>,
    /// Server counters (`stats` op).
    pub stats: Option<ServerStats>,
    /// Per-shard cache occupancy and hit counters (`stats` op) — the
    /// observable behind `--cache-capacity` tuning.
    pub shards: Option<Vec<alp_plan::ShardOccupancy>>,
    /// Stable error code on failure.
    pub code: Option<String>,
    /// Error message on failure.
    pub error: Option<String>,
}

fn encode_shard(out: &mut String, s: &alp_plan::ShardOccupancy) {
    out.push_str(&format!(
        "{{\"len\": {}, \"capacity\": {}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}}}",
        s.len, s.capacity, s.hits, s.misses, s.coalesced
    ));
}

fn decode_shard(v: &Json) -> alp_plan::ShardOccupancy {
    let int = |key: &str| v.get(key).and_then(Json::as_int).unwrap_or(0);
    alp_plan::ShardOccupancy {
        len: int("len").max(0) as usize,
        capacity: int("capacity").max(0) as usize,
        hits: int("hits").max(0) as u64,
        misses: int("misses").max(0) as u64,
        coalesced: int("coalesced").max(0) as u64,
    }
}

impl Response {
    fn base(id: i128, ok: bool) -> Response {
        Response {
            id,
            ok,
            cache: None,
            fingerprint: None,
            tiles: None,
            plan: None,
            matches_reference: None,
            iterations: None,
            stats: None,
            shards: None,
            code: None,
            error: None,
        }
    }

    /// A bare success (ping/shutdown acks).
    pub fn ok(id: i128) -> Response {
        Response::base(id, true)
    }

    /// A failure carrying the error's stable code.
    pub fn err(id: i128, e: &ServeError) -> Response {
        Response {
            code: Some(e.code.clone()),
            error: Some(e.message.clone()),
            ..Response::base(id, false)
        }
    }

    /// A plan success.
    pub fn plan_ok(
        id: i128,
        cache: &str,
        fingerprint: &str,
        tiles: i128,
        plan_json: Option<String>,
    ) -> Response {
        Response {
            cache: Some(cache.to_string()),
            fingerprint: Some(fingerprint.to_string()),
            tiles: Some(tiles),
            plan: plan_json,
            ..Response::base(id, true)
        }
    }

    /// A run success (plan provenance plus execution outcome).
    pub fn run_ok(
        id: i128,
        cache: &str,
        fingerprint: &str,
        tiles: i128,
        run: &RunSummary,
    ) -> Response {
        Response {
            matches_reference: Some(run.matches_reference),
            iterations: Some(run.iterations),
            ..Response::plan_ok(id, cache, fingerprint, tiles, None)
        }
    }

    /// A stats snapshot.
    pub fn stats(id: i128, stats: ServerStats) -> Response {
        Response {
            stats: Some(stats),
            ..Response::base(id, true)
        }
    }

    /// A stats snapshot carrying the per-shard breakdown.
    pub fn stats_with_shards(
        id: i128,
        stats: ServerStats,
        shards: Vec<alp_plan::ShardOccupancy>,
    ) -> Response {
        Response {
            shards: Some(shards),
            ..Response::stats(id, stats)
        }
    }

    /// Encode this response as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = format!("{{\"id\": {}, \"ok\": {}", self.id, self.ok);
        if let Some(c) = &self.cache {
            out.push_str(", \"cache\": ");
            write_string(&mut out, c);
        }
        if let Some(fp) = &self.fingerprint {
            out.push_str(", \"fingerprint\": ");
            write_string(&mut out, fp);
        }
        if let Some(t) = self.tiles {
            out.push_str(&format!(", \"tiles\": {t}"));
        }
        if let Some(m) = self.matches_reference {
            out.push_str(&format!(", \"matches_reference\": {m}"));
        }
        if let Some(i) = self.iterations {
            out.push_str(&format!(", \"iterations\": {i}"));
        }
        if let Some(s) = &self.stats {
            out.push_str(&format!(", \"stats\": {}", s.encode()));
        }
        if let Some(shards) = &self.shards {
            out.push_str(", \"shards\": [");
            for (i, s) in shards.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                encode_shard(&mut out, s);
            }
            out.push(']');
        }
        if let Some(p) = &self.plan {
            out.push_str(", \"plan\": ");
            write_string(&mut out, p);
        }
        if let Some(c) = &self.code {
            out.push_str(", \"code\": ");
            write_string(&mut out, c);
        }
        if let Some(e) = &self.error {
            out.push_str(", \"error\": ");
            write_string(&mut out, e);
        }
        out.push('}');
        out
    }

    /// Decode one response line.
    pub fn decode(line: &str) -> Result<Response, ServeError> {
        let bad = |m: &str| ServeError::new("ALP0006", format!("bad response frame: {m}"));
        let v = parse(line).map_err(|e| bad(&e.to_string()))?;
        let str_field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        Ok(Response {
            id: v.get("id").and_then(Json::as_int).unwrap_or(0),
            ok: v
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing \"ok\""))?,
            cache: str_field("cache"),
            fingerprint: str_field("fingerprint"),
            tiles: v.get("tiles").and_then(Json::as_int),
            plan: str_field("plan"),
            matches_reference: v.get("matches_reference").and_then(Json::as_bool),
            iterations: v
                .get("iterations")
                .and_then(Json::as_int)
                .map(|i| i.max(0) as u64),
            stats: v.get("stats").map(ServerStats::decode),
            shards: v
                .get("shards")
                .and_then(Json::as_arr)
                .map(|arr| arr.iter().map(decode_shard).collect()),
            code: str_field("code"),
            error: str_field("error"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "doall (i, 0, 63) { A[i] = A[i]; }";

    #[test]
    fn request_round_trips() {
        let mut r = Request::run(42, SRC);
        r.plan.processors = 8;
        r.plan.check = false;
        r.run.threads = 2;
        r.run.seed = 7;
        r.run.timeout_ms = Some(5000);
        r.run.max_store_bytes = Some(1 << 20);
        r.run.fault_panic = Some((3, 1));
        r.want_plan = true;
        let d = Request::decode(&r.encode()).expect("round trip");
        assert_eq!(d.id, 42);
        assert_eq!(d.op, RequestOp::Run);
        assert_eq!(d.plan.source, SRC);
        assert_eq!(d.plan.processors, 8);
        assert!(!d.plan.check);
        assert_eq!(d.run.threads, 2);
        assert_eq!(d.run.seed, 7);
        assert_eq!(d.run.timeout_ms, Some(5000));
        assert_eq!(d.run.max_store_bytes, Some(1 << 20));
        assert_eq!(d.run.fault_panic, Some((3, 1)));
        assert!(d.want_plan);
    }

    #[test]
    fn response_round_trips() {
        let e = ServeError::overloaded(64, 64);
        let d = Response::decode(&Response::err(9, &e).encode()).unwrap();
        assert_eq!(d.id, 9);
        assert!(!d.ok);
        assert_eq!(d.code.as_deref(), Some("ALP0012"));
        let ok = Response::plan_ok(3, "hit", "deadbeef", 16, Some("{\"v\": 1}".into()));
        let d = Response::decode(&ok.encode()).unwrap();
        assert!(d.ok);
        assert_eq!(d.cache.as_deref(), Some("hit"));
        assert_eq!(d.tiles, Some(16));
        assert_eq!(d.plan.as_deref(), Some("{\"v\": 1}"));
    }

    #[test]
    fn certify_and_deadline_round_trip() {
        let mut r = Request::plan(7, SRC);
        r.plan.certify = true;
        r.deadline_ms = Some(2500);
        let d = Request::decode(&r.encode()).expect("round trip");
        assert!(d.plan.certify);
        assert_eq!(d.deadline_ms, Some(2500));
        // Absent fields decode to their defaults, not to stale values.
        let d = Request::decode(&Request::plan(8, SRC).encode()).unwrap();
        assert!(!d.plan.certify);
        assert_eq!(d.deadline_ms, None);
    }

    #[test]
    fn shard_occupancy_round_trips() {
        let shards = vec![
            alp_plan::ShardOccupancy {
                len: 3,
                capacity: 64,
                hits: 10,
                misses: 2,
                coalesced: 1,
            },
            alp_plan::ShardOccupancy {
                len: 0,
                capacity: 64,
                hits: 0,
                misses: 0,
                coalesced: 0,
            },
        ];
        let resp = Response::stats_with_shards(4, ServerStats::default(), shards);
        let d = Response::decode(&resp.encode()).unwrap();
        let got = d.shards.expect("shards present");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len, 3);
        assert_eq!(got[0].capacity, 64);
        assert_eq!(got[0].hits, 10);
        assert_eq!(got[0].misses, 2);
        assert_eq!(got[0].coalesced, 1);
        // Plain stats responses carry no shard block.
        let plain = Response::decode(&Response::stats(1, ServerStats::default()).encode()).unwrap();
        assert!(plain.shards.is_none());
    }

    #[test]
    fn version_is_enforced() {
        let err = Request::decode("{\"alp-serve\": 99, \"op\": \"ping\"}").unwrap_err();
        assert_eq!(err.code, "ALP0006");
        assert!(err.message.contains("version 99"));
        let err = Request::decode("{\"op\": \"ping\"}").unwrap_err();
        assert!(err.message.contains("version"));
    }

    #[test]
    fn frames_are_single_lines() {
        let mut r = Request::plan(1, "doall (i, 0, 7) {\n  A[i] = A[i];\n}");
        r.want_plan = true;
        let line = r.encode();
        assert!(!line.contains('\n'), "newlines must be escaped: {line}");
        let d = Request::decode(&line).unwrap();
        assert!(d.plan.source.contains('\n'), "escaping round-trips");
    }
}
