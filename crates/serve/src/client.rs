//! A resilient socket client for the plan service.
//!
//! The failure modes a serve client actually sees are transient: the
//! daemon sheds under load (`ALP0012`), refuses while draining
//! (`ALP0015`), restarts (connection refused / reset), or stalls past
//! an attempt timeout.  [`Client`] turns one logical request into a
//! bounded retry loop over those failures — capped exponential backoff
//! with *decorrelated jitter* (seeded, so the schedule is deterministic
//! under test), per-attempt socket timeouts, and an overall deadline
//! that is also **propagated to the server** in the request frame so a
//! dead-on-arrival job is shed from the queue instead of executed for
//! nobody.
//!
//! ## Retry budget and idempotence
//!
//! Retrying is only free when the request is.  The policy lattice:
//!
//! * [`RetryPolicy::Idempotent`] — `plan` / `stats` / `ping`: always
//!   safe to resend, whether or not the lost attempt executed.
//! * [`RetryPolicy::Certified`] — a `run` whose plan carries a
//!   certificate proving idempotent execution
//!   (`Certificate::idempotent`): re-execution converges to the same
//!   store, so the full retry budget applies.
//! * [`RetryPolicy::None`] — an uncertified `run`: retried **only**
//!   when the failure proves the server never saw the frame (connect
//!   refused, nothing written).  A failure after bytes went out aborts
//!   with [`ClientError::NotRetryable`] rather than risk a double
//!   execution.
//!
//! A server *response* is never retried blindly: any answer other than
//! the shed/drain codes is the answer, errors included.

use crate::protocol::{Request, RequestOp, Response};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How freely one logical request may be resent.  See the module docs
/// for the idempotence reasoning behind each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Resend on any transient failure (reads, pure compiles).
    Idempotent,
    /// Resend on any transient failure because the plan's certificate
    /// proves re-execution is harmless.
    Certified,
    /// Resend only when the frame provably never reached the server.
    None,
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total tries for one logical request (first attempt included).
    pub max_attempts: u32,
    /// Floor of every backoff sleep, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling of every backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-attempt socket read/write timeout; `None` blocks.
    pub attempt_timeout_ms: Option<u64>,
    /// Overall wall-clock budget for the logical request, also
    /// propagated to the server as `deadline_ms` (shrinking with each
    /// attempt) so queued work the client has abandoned is shed.
    pub deadline_ms: Option<u64>,
    /// Seed of the jitter stream — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 4,
            base_backoff_ms: 10,
            backoff_cap_ms: 2_000,
            attempt_timeout_ms: Some(10_000),
            deadline_ms: None,
            seed: 0,
        }
    }
}

/// Why a logical request gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt in the budget failed transiently; `last` renders
    /// the final failure.
    Exhausted {
        /// Attempts actually made.
        attempts: u32,
        /// The last transient failure, rendered.
        last: String,
    },
    /// The failure happened after the frame may have executed and the
    /// policy forbids re-sending (uncertified `run`).
    NotRetryable {
        /// What failed, rendered.
        reason: String,
    },
    /// The overall deadline expired before an answer arrived.
    DeadlineExceeded,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ClientError::NotRetryable { reason } => {
                write!(
                    f,
                    "not retried (request may have executed; plan uncertified): {reason}"
                )
            }
            ClientError::DeadlineExceeded => write!(f, "client deadline exceeded"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Where in the attempt a transport failure happened — the fact the
/// retry policy turns on.
enum Transport {
    /// The server provably never saw the frame.
    BeforeSend(String),
    /// Bytes went out; the request may have executed.
    AfterSend(String),
}

impl Transport {
    fn render(&self) -> &str {
        match self {
            Transport::BeforeSend(s) | Transport::AfterSend(s) => s,
        }
    }
}

/// The splitmix64 stream behind the jitter (same generator as the load
/// generator's, restated to keep this crate's layering: the client must
/// not depend on loadgen).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pure backoff schedule: `n` decorrelated-jitter sleeps for a
/// seed.  Exposed so tests can assert the client's recorded sleeps
/// against the closed form (determinism is part of the contract).
pub fn backoff_schedule(seed: u64, base_ms: u64, cap_ms: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    let mut prev = base_ms.max(1);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Decorrelated jitter: sleep in [base, prev*3], capped.  The
        // *previous* sleep (not the attempt index) scales the window,
        // which decorrelates clients that started in sync.
        let span = prev.saturating_mul(3).max(base_ms.max(1));
        let sleep = (base_ms + splitmix64(&mut state) % span).min(cap_ms.max(base_ms));
        out.push(sleep);
        prev = sleep.max(1);
    }
    out
}

/// A reconnecting, retrying client for one serve socket.  One instance
/// is a single logical caller: calls are sequential, each opening a
/// fresh connection per attempt (a daemon restart invalidates old
/// connections anyway, and a fresh connect is what detects it).
pub struct Client {
    path: PathBuf,
    cfg: ClientConfig,
    rng: u64,
    prev_sleep: u64,
    sleeps: Vec<u64>,
}

impl Client {
    /// A client for the daemon at `path`.
    pub fn new(path: &Path, cfg: ClientConfig) -> Client {
        let rng = cfg.seed;
        let prev_sleep = cfg.base_backoff_ms.max(1);
        Client {
            path: path.to_path_buf(),
            cfg,
            rng,
            prev_sleep,
            sleeps: Vec::new(),
        }
    }

    /// Every backoff sleep performed so far, in milliseconds — the
    /// observable half of the determinism contract.
    pub fn sleeps(&self) -> &[u64] {
        &self.sleeps
    }

    /// The policy a request deserves with no extra knowledge: reads and
    /// compiles are idempotent, runs are not.
    pub fn default_policy(req: &Request) -> RetryPolicy {
        match req.op {
            RequestOp::Run => RetryPolicy::None,
            _ => RetryPolicy::Idempotent,
        }
    }

    /// Issue one logical request under `policy`.  Returns the server's
    /// answer (including non-transient server errors — those are
    /// answers, not failures) or why the budget ran out.
    pub fn call(&mut self, req: &Request, policy: RetryPolicy) -> Result<Response, ClientError> {
        let start = Instant::now();
        let overall = self.cfg.deadline_ms.map(Duration::from_millis);
        let mut last = String::new();
        let mut attempts = 0u32;
        while attempts < self.cfg.max_attempts.max(1) {
            let remaining = match overall {
                Some(d) => match d.checked_sub(start.elapsed()) {
                    Some(r) if !r.is_zero() => Some(r),
                    _ => return Err(ClientError::DeadlineExceeded),
                },
                None => None,
            };
            attempts += 1;
            match self.attempt(req, remaining) {
                Ok(resp) => {
                    let transient = resp
                        .code
                        .as_deref()
                        .is_some_and(|c| c == "ALP0012" || c == "ALP0015");
                    if !transient {
                        return Ok(resp);
                    }
                    last = format!(
                        "{}: {}",
                        resp.code.as_deref().unwrap_or(""),
                        resp.error.as_deref().unwrap_or("shed")
                    );
                }
                Err(t) => {
                    let resendable = match policy {
                        RetryPolicy::Idempotent | RetryPolicy::Certified => true,
                        RetryPolicy::None => matches!(t, Transport::BeforeSend(_)),
                    };
                    if !resendable {
                        return Err(ClientError::NotRetryable {
                            reason: t.render().to_string(),
                        });
                    }
                    last = t.render().to_string();
                }
            }
            if attempts < self.cfg.max_attempts.max(1) {
                self.backoff(start, overall)?;
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// One wire attempt: fresh connection, shrunken deadline stamped
    /// into the frame, one response line back.
    fn attempt(&self, req: &Request, remaining: Option<Duration>) -> Result<Response, Transport> {
        let stream = UnixStream::connect(&self.path)
            .map_err(|e| Transport::BeforeSend(format!("connect {}: {e}", self.path.display())))?;
        let timeout = match (self.cfg.attempt_timeout_ms, remaining) {
            (Some(a), Some(r)) => Some(Duration::from_millis(a).min(r)),
            (Some(a), None) => Some(Duration::from_millis(a)),
            (None, r) => r,
        };
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(|e| Transport::BeforeSend(format!("set timeout: {e}")))?;
        let mut wire = req.clone();
        // Propagate what is left of the client budget, not the original
        // figure: the server sheds queued work whose client has already
        // given up.
        if let Some(r) = remaining {
            wire.deadline_ms = Some(r.as_millis().min(u128::from(u64::MAX)) as u64);
        }
        let mut line = wire.encode();
        line.push('\n');
        let mut w = stream
            .try_clone()
            .map_err(|e| Transport::BeforeSend(format!("clone stream: {e}")))?;
        w.write_all(line.as_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| Transport::AfterSend(format!("write request: {e}")))?;
        let mut resp_line = String::new();
        BufReader::new(stream)
            .read_line(&mut resp_line)
            .map_err(|e| Transport::AfterSend(format!("read response: {e}")))?;
        if resp_line.trim().is_empty() {
            return Err(Transport::AfterSend("connection closed mid-call".into()));
        }
        Response::decode(&resp_line).map_err(|e| Transport::AfterSend(format!("decode: {e}")))
    }

    /// Sleep the next decorrelated-jitter step, recorded, clipped to
    /// the overall deadline.
    fn backoff(&mut self, start: Instant, overall: Option<Duration>) -> Result<(), ClientError> {
        let base = self.cfg.base_backoff_ms;
        let cap = self.cfg.backoff_cap_ms.max(base);
        let span = self.prev_sleep.saturating_mul(3).max(base.max(1));
        let sleep_ms = (base + splitmix64(&mut self.rng) % span).min(cap);
        self.prev_sleep = sleep_ms.max(1);
        self.sleeps.push(sleep_ms);
        let mut sleep = Duration::from_millis(sleep_ms);
        if let Some(d) = overall {
            let left = d
                .checked_sub(start.elapsed())
                .ok_or(ClientError::DeadlineExceeded)?;
            if left <= sleep {
                return Err(ClientError::DeadlineExceeded);
            }
            sleep = sleep.min(left);
        }
        std::thread::sleep(sleep);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_capped() {
        let a = backoff_schedule(42, 10, 200, 8);
        let b = backoff_schedule(42, 10, 200, 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().all(|&s| (10..=200).contains(&s)), "{a:?}");
        let c = backoff_schedule(43, 10, 200, 8);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn client_sleeps_match_the_closed_form() {
        // No server at this path: every attempt fails before send, so a
        // plan request burns the whole budget and sleeps between tries.
        let dir = std::env::temp_dir().join(format!("alp-client-gone-{}", std::process::id()));
        let mut client = Client::new(
            &dir.join("missing.sock"),
            ClientConfig {
                max_attempts: 4,
                base_backoff_ms: 1,
                backoff_cap_ms: 4,
                seed: 7,
                ..ClientConfig::default()
            },
        );
        let req = Request::plan(1, "doall (i, 0, 15) { A[i] = A[i]; }");
        let err = client.call(&req, RetryPolicy::Idempotent).unwrap_err();
        assert!(
            matches!(err, ClientError::Exhausted { attempts: 4, .. }),
            "{err:?}"
        );
        assert_eq!(client.sleeps(), backoff_schedule(7, 1, 4, 3).as_slice());
    }

    #[test]
    fn uncertified_run_does_not_resend_after_bytes_left() {
        // BeforeSend (connect refused) is retried even for policy None.
        let dir = std::env::temp_dir().join(format!("alp-client-none-{}", std::process::id()));
        let mut client = Client::new(
            &dir.join("missing.sock"),
            ClientConfig {
                max_attempts: 3,
                base_backoff_ms: 1,
                backoff_cap_ms: 2,
                ..ClientConfig::default()
            },
        );
        let req = Request::run(1, "doall (i, 0, 15) { A[i] = A[i]; }");
        let err = client.call(&req, RetryPolicy::None).unwrap_err();
        assert!(
            matches!(err, ClientError::Exhausted { attempts: 3, .. }),
            "connect refusal never reached the server, so even an \
             uncertified run retries: {err:?}"
        );
    }
}
