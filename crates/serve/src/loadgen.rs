//! Synthetic heavy-traffic load generator for the plan service.
//!
//! Drives an in-process server over its real Unix socket with many
//! concurrent pipelined clients.  The fingerprint mix is Zipf-like:
//! rank r of the corpus is requested with weight 1/(r+1), so a few
//! plans are hot (mostly cache hits, many coalesced while cold), a
//! band is warm, and a long tail stays cold — the distribution a
//! shared compile service actually sees.  The first
//! [`LoadGenConfig::hot`] specs are prewarmed so "hot" means hot from
//! the first request.
//!
//! Concurrency is real: each client keeps up to
//! [`LoadGenConfig::window`] requests in flight on its connection
//! (writer thread + reader loop with a permit semaphore — a client
//! blocked writing can never deadlock against a server blocked
//! writing responses).  `clients × window` bounds the instantaneous
//! in-flight total; the default configuration sustains ≥10k.
//!
//! All randomness is `splitmix64` from [`LoadGenConfig::seed`] — runs
//! are reproducible, with no `rand` dependency.

use crate::pipeline::PlanSpec;
use crate::protocol::{Request, Response};
use crate::server::{ServeConfig, Server, ServerStats};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Max in-flight requests per client (pipelined); total
    /// instantaneous concurrency is `clients × window`.
    pub window: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Distinct nest fingerprints in the corpus.
    pub corpus: usize,
    /// Corpus prefix prewarmed into the cache before traffic starts.
    pub hot: usize,
    /// Percent of requests that are `run` ops (the rest are `plan`).
    pub run_percent: u32,
    /// Deterministic seed for the Zipf sampling and op mix.
    pub seed: u64,
    /// Processor count every request targets.
    pub processors: i128,
    /// Cooperative stop flag (e.g. wired to SIGINT by the CLI): once
    /// set, clients stop sending, drain what is in flight, and the
    /// report carries `interrupted: true` with the counters collected
    /// so far.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 64,
            window: 160,
            requests: 20_000,
            corpus: 512,
            hot: 8,
            run_percent: 20,
            seed: 0xa1b2_c3d4,
            processors: 16,
            stop: None,
        }
    }
}

/// What one load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Failed responses other than sheds.
    pub errors: u64,
    /// Responses shed with `ALP0012`.
    pub shed: u64,
    /// Successes served from cache.
    pub hits: u64,
    /// Successes that waited on another request's compile.
    pub coalesced: u64,
    /// Successes that compiled (were the leader).
    pub computed: u64,
    /// Latency percentiles over all completed requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst-case latency, microseconds.
    pub max_us: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Successful responses per second (plans served, counting hits).
    pub plans_per_sec: u64,
    /// Instantaneous concurrency bound (`clients × window`).
    pub max_concurrent: usize,
    /// Detected hardware threads.
    pub cores: usize,
    /// True when generator + server threads exceed the hardware —
    /// latency numbers then measure scheduling, not the server.
    pub oversubscribed: bool,
    /// True when the run was cut short by [`LoadGenConfig::stop`]; the
    /// counters cover everything sent and answered before the cut.
    pub interrupted: bool,
    /// The server's own cumulative counters at the end of the run.
    pub server: ServerStats,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The corpus: structurally distinct 2-D nests (distinct trip counts
/// give distinct fingerprints), all cheap to execute but real to plan.
/// Public so the CLI's recovery probe can replay the same hot set
/// against a restarted server.
pub fn corpus_source(rank: usize) -> String {
    let outer = 15 + rank;
    let inner = 15 + (rank * 7) % 17;
    format!("doall (i, 0, {outer}) {{ doall (j, 0, {inner}) {{ A[i,j] = B[i,j] + A[i,j]; }} }}")
}

/// Zipf(1) cumulative table over `n` ranks, scaled to u64 for integer
/// sampling.
fn zipf_cdf(n: usize) -> Vec<u64> {
    let mut acc = 0.0f64;
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            (acc * u64::MAX as f64) as u64
        })
        .collect()
}

fn sample_rank(cdf: &[u64], r: u64) -> usize {
    cdf.partition_point(|&c| c < r).min(cdf.len() - 1)
}

struct ClientTally {
    ok: u64,
    errors: u64,
    shed: u64,
    hits: u64,
    coalesced: u64,
    computed: u64,
    latencies_us: Vec<u64>,
}

/// One pipelined client: a writer thread pushes requests under a
/// window-permit semaphore; the calling thread reads responses and
/// releases permits.
fn client(
    sock: &Path,
    cfg: &LoadGenConfig,
    cdf: Arc<Vec<u64>>,
    client_idx: usize,
    n: usize,
) -> std::io::Result<ClientTally> {
    let stream = UnixStream::connect(sock)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let permits = Arc::new((Mutex::new(cfg.window.max(1)), Condvar::new()));
    let sends: Arc<Mutex<HashMap<i128, Instant>>> = Arc::new(Mutex::new(HashMap::new()));

    let writer_thread = {
        let permits = Arc::clone(&permits);
        let sends = Arc::clone(&sends);
        let cfg = cfg.clone();
        let cdf = Arc::clone(&cdf);
        std::thread::spawn(move || -> std::io::Result<()> {
            let mut rng = cfg.seed ^ ((client_idx as u64 + 1).wrapping_mul(0x9e37_79b9));
            let mut buf = String::new();
            let mut cut_short = false;
            for i in 0..n {
                if cfg.stop.as_ref().is_some_and(|s| s.load(Ordering::Relaxed)) {
                    cut_short = true;
                    break;
                }
                {
                    let (m, cv) = &*permits;
                    let mut p = m.lock().expect("permits");
                    while *p == 0 {
                        p = cv.wait(p).expect("permits");
                    }
                    *p -= 1;
                }
                let rank = sample_rank(&cdf, splitmix64(&mut rng));
                let id = (client_idx as i128) * 1_000_000_000 + i as i128;
                let source = corpus_source(rank);
                let mut req = if splitmix64(&mut rng) % 100 < cfg.run_percent as u64 {
                    let mut r = Request::run(id, &source);
                    r.run.threads = 1;
                    r.run.timeout_ms = Some(30_000);
                    r
                } else {
                    Request::plan(id, &source)
                };
                req.plan.processors = cfg.processors;
                sends.lock().expect("sends").insert(id, Instant::now());
                buf.clear();
                buf.push_str(&req.encode());
                buf.push('\n');
                writer.write_all(buf.as_bytes())?;
            }
            writer.flush()?;
            if cut_short {
                // Half-close so the server sees EOF after answering the
                // in-flight prefix; the reader then terminates on EOF
                // instead of waiting for the `n` responses that will
                // never be sent.
                let _ = writer.shutdown(std::net::Shutdown::Write);
            }
            Ok(())
        })
    };

    let mut tally = ClientTally {
        ok: 0,
        errors: 0,
        shed: 0,
        hits: 0,
        coalesced: 0,
        computed: 0,
        latencies_us: Vec::with_capacity(n),
    };
    let mut received = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(resp) = Response::decode(&line) else {
            tally.errors += 1;
            received += 1;
            continue;
        };
        if let Some(t0) = sends.lock().expect("sends").remove(&resp.id) {
            tally
                .latencies_us
                .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        {
            let (m, cv) = &*permits;
            *m.lock().expect("permits") += 1;
            cv.notify_one();
        }
        if resp.ok {
            tally.ok += 1;
            match resp.cache.as_deref() {
                Some("hit") => tally.hits += 1,
                Some("coalesced") => tally.coalesced += 1,
                Some("computed") => tally.computed += 1,
                _ => {}
            }
        } else if resp.code.as_deref() == Some("ALP0012") {
            tally.shed += 1;
        } else {
            tally.errors += 1;
        }
        received += 1;
        if received == n {
            break;
        }
    }
    writer_thread
        .join()
        .map_err(|_| std::io::Error::other("client writer panicked"))??;
    Ok(tally)
}

fn percentile(sorted_us: &[u64], pct: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least pct% of the
    // sample at or below it.
    let idx = (pct / 100.0 * sorted_us.len() as f64).ceil() as usize;
    sorted_us[idx.clamp(1, sorted_us.len()) - 1]
}

/// Run the full benchmark: start an in-process server on `sock`,
/// drive the configured traffic through it, shut it down, and report.
pub fn run_loadgen(
    cfg: &LoadGenConfig,
    mut serve_cfg: ServeConfig,
    sock: &Path,
) -> std::io::Result<LoadGenReport> {
    // Prewarm the hot prefix so "hot" is hot from the first request.
    for rank in 0..cfg.hot.min(cfg.corpus) {
        serve_cfg.prewarm.push(PlanSpec {
            source: corpus_source(rank),
            processors: cfg.processors,
            check: true,
            certify: false,
        });
    }
    let workers = serve_cfg.workers;
    let handle = Server::new(serve_cfg).serve(sock)?;

    let cdf = Arc::new(zipf_cdf(cfg.corpus.max(1)));
    let per_client = cfg.requests / cfg.clients.max(1);
    let remainder = cfg.requests - per_client * cfg.clients.max(1);

    let t0 = Instant::now();
    let joins: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let sock = sock.to_path_buf();
            let cfg = cfg.clone();
            let cdf = Arc::clone(&cdf);
            let n = per_client + usize::from(c < remainder);
            std::thread::spawn(move || client(&sock, &cfg, cdf, c, n))
        })
        .collect();

    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut report = LoadGenReport {
        sent: 0,
        ok: 0,
        errors: 0,
        shed: 0,
        hits: 0,
        coalesced: 0,
        computed: 0,
        p50_us: 0,
        p99_us: 0,
        max_us: 0,
        elapsed_ms: 0,
        plans_per_sec: 0,
        max_concurrent: cfg.clients.max(1) * cfg.window.max(1),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        oversubscribed: false,
        interrupted: false,
        server: ServerStats::default(),
    };
    for j in joins {
        let tally = j
            .join()
            .map_err(|_| std::io::Error::other("client panicked"))??;
        report.sent += tally.latencies_us.len() as u64;
        report.ok += tally.ok;
        report.errors += tally.errors;
        report.shed += tally.shed;
        report.hits += tally.hits;
        report.coalesced += tally.coalesced;
        report.computed += tally.computed;
        latencies.extend(tally.latencies_us);
    }
    let elapsed = t0.elapsed();
    report.interrupted = cfg.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst));
    report.server = handle.shutdown();

    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.elapsed_ms = elapsed.as_millis().min(u64::MAX as u128) as u64;
    report.plans_per_sec = if elapsed.as_secs_f64() > 0.0 {
        (report.ok as f64 / elapsed.as_secs_f64()) as u64
    } else {
        report.ok
    };
    // Generator threads (a writer + a reader per client) plus the
    // server's workers compete for the same cores; past that point the
    // percentiles measure the scheduler.
    report.oversubscribed = cfg.clients.max(1) * 2 + workers > report.cores;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sources_are_distinct_and_parse() {
        let mut fps = std::collections::HashSet::new();
        for rank in 0..64 {
            let nest = alp_loopir::parse(&corpus_source(rank)).expect("parses");
            assert!(
                fps.insert(alp_plan::fingerprint(&nest)),
                "rank {rank} aliases"
            );
        }
    }

    #[test]
    fn zipf_is_skewed_and_complete() {
        let cdf = zipf_cdf(100);
        assert_eq!(cdf.len(), 100);
        // Rank 0 carries far more mass than rank 99.
        let first = cdf[0];
        let last_gap = cdf[99] - cdf[98];
        assert!(first > last_gap * 10);
        // Any draw maps to a valid rank.
        let mut rng = 7u64;
        for _ in 0..1000 {
            assert!(sample_rank(&cdf, splitmix64(&mut rng)) < 100);
        }
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&[], 99.0), 0);
    }
}
